//! The federated gateway mesh: anti-entropy gossip between INDISS
//! gateways, remote-hit serving, and store-and-forward advert relay.
//!
//! The paper's gateway bridges SDPs on *one* network segment. This
//! module is the gateway-to-gateway plane that federates many of them:
//! each gateway holds a peer set and periodically runs a gossip round
//! against every peer.
//!
//! ```text
//!   gateway A                                gateway B
//!      │  DIGEST {round, per-shard versions}    │
//!      ├───────────────────────────────────────▶│  diff vs. what B
//!      │                                        │  last pulled from A
//!      │  PULL {shards: [1, 3]}     (or ACK)    │
//!      │◀───────────────────────────────────────┤
//!      │  RECORDS {shard 1, version, records}   │
//!      ├───────────────────────────────────────▶│  land with
//!      │  RECORDS {shard 3, version, records}   │  RecordOrigin::
//!      ├───────────────────────────────────────▶│  Remote(peer A)
//! ```
//!
//! The digest is a per-shard **content-version vector** read straight
//! off the registry's counters ([`ServiceRegistry::shard_versions`]) —
//! O(shards), never a record-store walk. The receiver pulls only shards
//! whose version advanced past what it already pulled from that peer,
//! and applies records through [`ServiceRegistry::record_remote`],
//! whose equivalence check refuses to re-apply content it already
//! holds: once two gateways agree, rounds settle into a single
//! DIGEST/ACK exchange and version vectors stop moving. Applied records
//! carry [`RecordOrigin::Remote`] and warm the response cache
//! ([`ServiceRegistry::warm_remote`]), so a request for a remotely
//! learned service is answered from the local cache — a **remote hit**,
//! counted separately in [`MeshStats`] and
//! [`crate::BridgeStats::remote_cache_hits`] — instead of re-fanning
//! out to the local units.
//!
//! # Liveness and partitions
//!
//! Only *response* frames (PULL, RECORDS, ACK, RELAY) prove a peer
//! alive: an ingress-partitioned peer still multicasts digests, so a
//! digest proves nothing about the reverse path. Each unanswered digest
//! counts a miss; [`MeshConfig::down_after`] misses mark the peer down.
//! While a peer is down, every locally published advert is held in that
//! peer's bounded [`custody`] queue; the first response frame after the
//! partition heals marks it up and replays custody as RELAY frames.
//! Down peers keep receiving digests — the probe that detects healing.
//!
//! # Concurrency and lock order
//!
//! All mutable mesh state sits behind one `Mutex`. The lock order is
//! **mesh, then shard**: handlers may call into the registry while
//! holding the mesh lock (the registry never calls back into the mesh).
//! The mesh lock is **never** held across a transport send — on the
//! deterministic [`SimTransport`](indiss_net::SimTransport) bus a send
//! can deliver a reply into this gateway's own sink on the same call
//! stack, so handlers stage outgoing frames and send after unlocking.
//!
//! # Determinism
//!
//! The mesh has no clock and no randomness of its own: time arrives as
//! [`SimTime`] through [`MeshNode::tick`]/[`MeshNode::run_round`], peers
//! are iterated in configuration order, and the transport seam supplies
//! the network — a 10-gateway mesh on `SimTransport` (with
//! [`FaultPlan`](indiss_net::FaultPlan) partitions, if desired) replays
//! identically from a seed, while `UdpTransport`/`BatchedTransport`
//! carry the same frames on real sockets.

mod custody;
pub(crate) mod wire;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, Weak};
use std::time::Duration;

use indiss_net::{Datagram, PeerChannel, SimTime, Transport};

use crate::error::{CoreError, CoreResult};
use crate::event::{Event, EventStream, SdpProtocol};
use crate::obs::{Phase, Tracer};
use crate::protocol::ProtocolId;
use crate::registry::{PeerId, RemoteDisposition, ServiceRecord, ServiceRegistry};
use custody::CustodyQueue;
use wire::{Frame, WireOrigin, WireRecord};

/// Knobs for one gateway's mesh plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshConfig {
    /// This gateway's own peer port — its mesh-wide identity and the
    /// port its peer channel binds (pre-offset; the transport maps it).
    pub port: u16,
    /// Peer ports to gossip with. Entries equal to `port` are ignored.
    pub peers: Vec<u16>,
    /// Virtual time between gossip rounds.
    pub gossip_interval: Duration,
    /// Most adverts held in custody per down peer; beyond this the
    /// oldest is dropped and counted.
    pub custody_capacity: usize,
    /// How long a custody entry survives before lapsing unsent.
    pub custody_ttl: Duration,
    /// Consecutive unanswered digests before a peer is marked down.
    pub down_after: u32,
    /// Shared mesh secret keying the frame signatures. All gateways of
    /// one mesh must agree; frames keyed differently are rejected.
    pub key: u64,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            port: 7100,
            peers: Vec::new(),
            gossip_interval: Duration::from_millis(500),
            custody_capacity: 32,
            custody_ttl: Duration::from_secs(60),
            down_after: 2,
            key: 0x1D15_5000_0000_4EED,
        }
    }
}

/// Counters the mesh maintains; every field is deterministic under
/// `SimTransport`, so tests pin exact values and same-seed replays
/// compare whole snapshots for equality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeshStats {
    /// Gossip rounds run.
    pub rounds_run: u64,
    /// Digest frames sent (one per peer per round).
    pub digests_sent: u64,
    /// Digest frames received.
    pub digests_received: u64,
    /// Digests whose shard count differed from the peer's earlier
    /// digests (the peer restarted with a different registry layout);
    /// pull state was reset and the peer re-synced from scratch.
    pub digest_resyncs: u64,
    /// "Nothing to pull" replies sent.
    pub acks_sent: u64,
    /// "Nothing to pull" replies received.
    pub acks_received: u64,
    /// Pull requests sent after a digest showed news.
    pub pulls_sent: u64,
    /// Pull requests received and answered.
    pub pulls_received: u64,
    /// Records shipped to peers (pull answers and relays).
    pub records_sent: u64,
    /// Records received from peers.
    pub records_received: u64,
    /// Received records that changed the local registry.
    pub records_applied: u64,
    /// Received records already covered locally (the anti-entropy
    /// fixpoint), unresolvable, or unkeyed.
    pub records_stale: u64,
    /// Datagrams that failed frame decoding or signature verification,
    /// plus frames from unknown peers.
    pub frames_rejected: u64,
    /// Adverts placed into custody for down peers.
    pub custody_enqueued: u64,
    /// Custody entries dropped by the capacity bound (oldest first).
    pub custody_dropped: u64,
    /// Custody entries that lapsed before their peer returned.
    pub custody_expired: u64,
    /// Custody entries replayed as RELAY frames on reconnect.
    pub custody_replayed: u64,
    /// Transitions of a peer to down.
    pub peers_down: u64,
    /// Transitions of a peer back to up.
    pub peers_reconnected: u64,
}

/// Per-peer gossip state.
#[derive(Debug)]
struct PeerState {
    /// The peer's well-known port (its identity).
    port: u16,
    /// Per-shard versions already pulled from this peer, in the peer's
    /// own shard numbering. Sized on first digest.
    pulled: Vec<u64>,
    /// A digest went out and no response frame has come back yet.
    outstanding: bool,
    /// Consecutive unanswered digests.
    misses: u32,
    /// Marked down; adverts go to custody until a response arrives.
    down: bool,
    /// Adverts held while the peer is down.
    custody: CustodyQueue,
}

struct MeshInner {
    round: u64,
    next_round_at: SimTime,
    peers: Vec<PeerState>,
    stats: MeshStats,
}

struct MeshShared {
    registry: ServiceRegistry,
    config: MeshConfig,
    transport: Arc<dyn Transport>,
    channel: OnceLock<PeerChannel>,
    /// Latest virtual time observed from the driving side
    /// (`tick`/`run_round`/`publish`); datagram handlers read it.
    now_nanos: AtomicU64,
    /// Optional span recorder; gossip rounds land as zero-width
    /// [`Phase::Gossip`] spans at virtual time, lane = mesh port.
    tracer: OnceLock<Tracer>,
    inner: Mutex<MeshInner>,
}

/// One gateway's handle on the federated mesh. Cheap to clone; all
/// clones share the same peer state.
#[derive(Clone)]
pub struct MeshNode {
    shared: Arc<MeshShared>,
}

impl std::fmt::Debug for MeshNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeshNode").field("port", &self.shared.config.port).finish()
    }
}

impl MeshNode {
    /// Creates a mesh node serving `registry` over `transport`. Call
    /// [`MeshNode::start`] to bind the peer channel.
    pub fn new(
        registry: ServiceRegistry,
        transport: Arc<dyn Transport>,
        config: MeshConfig,
    ) -> MeshNode {
        let peers = config
            .peers
            .iter()
            .copied()
            .filter(|&p| p != config.port)
            .map(|port| PeerState {
                port,
                pulled: Vec::new(),
                outstanding: false,
                misses: 0,
                down: false,
                custody: CustodyQueue::default(),
            })
            .collect();
        MeshNode {
            shared: Arc::new(MeshShared {
                registry,
                config,
                transport,
                channel: OnceLock::new(),
                now_nanos: AtomicU64::new(0),
                tracer: OnceLock::new(),
                inner: Mutex::new(MeshInner {
                    round: 0,
                    next_round_at: SimTime::ZERO,
                    peers,
                    stats: MeshStats::default(),
                }),
            }),
        }
    }

    /// Binds the peer channel on [`MeshConfig::port`] and starts
    /// receiving peer frames.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadConfig`] when already started;
    /// [`CoreError::Net`] on transport bind failures.
    pub fn start(&self) -> CoreResult<()> {
        if self.shared.channel.get().is_some() {
            return Err(CoreError::BadConfig("mesh already started"));
        }
        // A digest frame carries at most MAX_SHARDS versions; refusing
        // a larger registry here beats silently gossiping a truncated
        // vector (records on the dropped shards would never propagate).
        if self.shared.registry.shard_count() > wire::MAX_SHARDS {
            return Err(CoreError::BadConfig(
                "the mesh digest wire carries at most 256 shards; lower RegistryConfig::shards",
            ));
        }
        let weak: Weak<MeshShared> = Arc::downgrade(&self.shared);
        let sink = Arc::new(move |dgram: Datagram| {
            if let Some(shared) = weak.upgrade() {
                shared.on_datagram(&dgram);
            }
        });
        let channel =
            PeerChannel::bind(Arc::clone(&self.shared.transport), self.shared.config.port, sink)?;
        self.shared.channel.set(channel).map_err(|_| CoreError::BadConfig("mesh already started"))
    }

    /// The mesh configuration this node runs with.
    pub fn config(&self) -> &MeshConfig {
        &self.shared.config
    }

    /// Attaches `tracer`: each gossip round records a zero-width
    /// [`Phase::Gossip`] span at its virtual time with the node's mesh
    /// port as the lane. First attachment wins; later calls are ignored
    /// (the mesh keeps single-writer rings by routing one port to one
    /// lane).
    pub fn set_tracer(&self, tracer: Tracer) {
        let _ = self.shared.tracer.set(tracer);
    }

    /// Runs one gossip round now: accounts the previous round's
    /// unanswered digests, then sends a fresh digest to every peer
    /// (down peers included — the digest is also the reconnect probe).
    pub fn run_round(&self, now: SimTime) {
        self.shared.set_now(now);
        let outgoing = {
            let mut inner = self.shared.lock();
            self.shared.start_round(&mut inner, now)
        };
        self.shared.send_all(outgoing);
    }

    /// Advances the mesh to `now`: expires custody deadlines and runs a
    /// gossip round when one is due. The driving side (a runtime timer,
    /// or a test) calls this at [`MeshNode::next_deadline`].
    pub fn tick(&self, now: SimTime) {
        self.shared.set_now(now);
        let outgoing = {
            let mut inner = self.shared.lock();
            let inner = &mut *inner;
            for peer in &mut inner.peers {
                inner.stats.custody_expired += peer.custody.expire(now);
            }
            if now >= inner.next_round_at {
                self.shared.start_round(inner, now)
            } else {
                Vec::new()
            }
        };
        self.shared.send_all(outgoing);
    }

    /// The next virtual time [`MeshNode::tick`] has work: the next
    /// gossip round, or an earlier custody deadline.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let inner = self.shared.lock();
        let custody = inner.peers.iter().filter_map(|p| p.custody.next_deadline()).min();
        Some(match custody {
            Some(c) if c < inner.next_round_at => c,
            _ => inner.next_round_at,
        })
    }

    /// Offers a locally observed advert to the mesh. Up peers need
    /// nothing (the next digest carries the news); for every down peer
    /// the advert is held in that peer's custody queue for replay on
    /// reconnect.
    pub fn publish(&self, origin: SdpProtocol, stream: &EventStream, now: SimTime) {
        self.shared.set_now(now);
        let default_ttl = self.shared.registry.config().default_advert_ttl;
        let Some(record) = ServiceRecord::from_advert(origin, stream, now, default_ttl) else {
            return;
        };
        let deadline = now.saturating_add(self.shared.config.custody_ttl);
        let capacity = self.shared.config.custody_capacity;
        let mut inner = self.shared.lock();
        let inner = &mut *inner;
        for peer in &mut inner.peers {
            if !peer.down {
                continue;
            }
            let dropped = peer.custody.push(record.clone(), deadline, capacity);
            inner.stats.custody_enqueued += 1;
            if dropped {
                inner.stats.custody_dropped += 1;
            }
        }
    }

    /// Snapshot of the mesh counters.
    pub fn stats(&self) -> MeshStats {
        self.shared.lock().stats
    }

    /// True when `peer` is currently marked down.
    pub fn peer_down(&self, peer: u16) -> bool {
        self.shared.lock().peers.iter().any(|p| p.port == peer && p.down)
    }

    /// Adverts currently held in custody for `peer`.
    pub fn custody_len(&self, peer: u16) -> usize {
        self.shared.lock().peers.iter().find(|p| p.port == peer).map_or(0, |p| p.custody.len())
    }
}

impl MeshShared {
    fn lock(&self) -> MutexGuard<'_, MeshInner> {
        self.inner.lock().expect("mesh state poisoned")
    }

    fn set_now(&self, now: SimTime) {
        self.now_nanos.fetch_max(now.as_nanos(), Ordering::Relaxed);
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_nanos.load(Ordering::Relaxed))
    }

    /// Sends staged frames. Must be called with the mesh lock released:
    /// on the sim bus a send can synchronously deliver a peer's reply
    /// back into this node's own sink.
    fn send_all(&self, outgoing: Vec<(u16, Vec<u8>)>) {
        let Some(channel) = self.channel.get() else {
            return;
        };
        for (peer_port, payload) in outgoing {
            // Send failures are a network property, not a mesh error:
            // anti-entropy retries by construction next round.
            let _ = channel.send(&payload, peer_port);
        }
    }

    /// The round opener; runs under the mesh lock, returns frames to
    /// send after unlock.
    fn start_round(&self, inner: &mut MeshInner, now: SimTime) -> Vec<(u16, Vec<u8>)> {
        if let Some(tracer) = self.tracer.get() {
            tracer.record_at(usize::from(self.config.port), Phase::Gossip, now, now);
        }
        inner.round += 1;
        inner.next_round_at = now.saturating_add(self.config.gossip_interval);
        inner.stats.rounds_run += 1;
        let versions = self.registry.shard_versions();
        let digest = wire::encode_frame(
            &Frame::Digest { from: self.config.port, round: inner.round, versions },
            self.config.key,
        );
        let mut outgoing = Vec::with_capacity(inner.peers.len());
        for peer in &mut inner.peers {
            if peer.outstanding {
                peer.misses += 1;
                if !peer.down && peer.misses >= self.config.down_after {
                    peer.down = true;
                    inner.stats.peers_down += 1;
                }
            }
            peer.outstanding = true;
            inner.stats.digests_sent += 1;
            outgoing.push((peer.port, digest.clone()));
        }
        outgoing
    }

    fn on_datagram(&self, dgram: &Datagram) {
        let now = self.now();
        let frame = match wire::decode_frame(&dgram.payload, self.config.key) {
            Ok(frame) => frame,
            Err(_) => {
                self.lock().stats.frames_rejected += 1;
                return;
            }
        };
        let outgoing = {
            let mut inner = self.lock();
            self.handle_frame(&mut inner, frame, now)
        };
        self.send_all(outgoing);
    }

    fn handle_frame(
        &self,
        inner: &mut MeshInner,
        frame: Frame,
        now: SimTime,
    ) -> Vec<(u16, Vec<u8>)> {
        let from = match &frame {
            Frame::Digest { from, .. }
            | Frame::Pull { from, .. }
            | Frame::Records { from, .. }
            | Frame::Ack { from, .. }
            | Frame::Relay { from, .. } => *from,
        };
        let Some(peer_idx) = inner.peers.iter().position(|p| p.port == from) else {
            inner.stats.frames_rejected += 1;
            return Vec::new();
        };
        let mut outgoing = Vec::new();
        match frame {
            Frame::Digest { round, versions, .. } => {
                // A digest is NOT proof of liveness: an
                // ingress-partitioned peer keeps sending digests while
                // hearing nothing. Only response frames clear misses.
                inner.stats.digests_received += 1;
                let peer = &mut inner.peers[peer_idx];
                if peer.pulled.len() != versions.len() {
                    // A changed shard count means the peer restarted
                    // with a different registry layout: treat it as a
                    // new incarnation — reset pull state and re-sync
                    // from scratch rather than refusing the peer
                    // forever.
                    if !peer.pulled.is_empty() {
                        inner.stats.digest_resyncs += 1;
                    }
                    peer.pulled = vec![0; versions.len()];
                }
                let shards: Vec<u16> = versions
                    .iter()
                    .enumerate()
                    .filter(|&(i, &v)| v > peer.pulled[i])
                    .map(|(i, _)| i as u16)
                    .collect();
                let reply = if shards.is_empty() {
                    inner.stats.acks_sent += 1;
                    Frame::Ack { from: self.config.port, round }
                } else {
                    inner.stats.pulls_sent += 1;
                    Frame::Pull { from: self.config.port, round, shards }
                };
                outgoing.push((from, wire::encode_frame(&reply, self.config.key)));
            }
            Frame::Pull { shards, .. } => {
                inner.stats.pulls_received += 1;
                self.mark_alive(inner, peer_idx, now, &mut outgoing);
                for shard in shards {
                    let idx = usize::from(shard);
                    if idx >= self.registry.shard_count() {
                        continue;
                    }
                    // Version before records: a mutation landing between
                    // the two reads re-advertises next digest, which
                    // anti-entropy absorbs; the converse would lose it.
                    let version = self.registry.content_version(idx);
                    let records: Vec<WireRecord> = self
                        .registry
                        .shard_records(idx, now)
                        .iter()
                        .filter_map(|r| record_to_wire(r, now))
                        .collect();
                    inner.stats.records_sent += records.len() as u64;
                    let reply = Frame::Records { from: self.config.port, shard, version, records };
                    outgoing.push((from, wire::encode_frame(&reply, self.config.key)));
                }
            }
            Frame::Records { shard, version, records, .. } => {
                self.mark_alive(inner, peer_idx, now, &mut outgoing);
                inner.stats.records_received += records.len() as u64;
                for record in records {
                    self.apply_wire_record(inner, record, PeerId(from), now);
                }
                let peer = &mut inner.peers[peer_idx];
                if let Some(pulled) = peer.pulled.get_mut(usize::from(shard)) {
                    *pulled = (*pulled).max(version);
                }
            }
            Frame::Ack { .. } => {
                inner.stats.acks_received += 1;
                self.mark_alive(inner, peer_idx, now, &mut outgoing);
            }
            Frame::Relay { records, .. } => {
                self.mark_alive(inner, peer_idx, now, &mut outgoing);
                inner.stats.records_received += records.len() as u64;
                for record in records {
                    self.apply_wire_record(inner, record, PeerId(from), now);
                }
            }
        }
        outgoing
    }

    /// A response frame arrived from `peer`: clear its miss counter,
    /// and when it was down, bring it back and stage custody replay.
    fn mark_alive(
        &self,
        inner: &mut MeshInner,
        peer_idx: usize,
        now: SimTime,
        outgoing: &mut Vec<(u16, Vec<u8>)>,
    ) {
        let peer = &mut inner.peers[peer_idx];
        peer.outstanding = false;
        peer.misses = 0;
        if !peer.down {
            return;
        }
        peer.down = false;
        inner.stats.peers_reconnected += 1;
        let entries = inner.peers[peer_idx].custody.drain();
        let port = inner.peers[peer_idx].port;
        let mut records = Vec::new();
        for entry in entries {
            if entry.deadline <= now {
                inner.stats.custody_expired += 1;
                continue;
            }
            match record_to_wire(&entry.record, now) {
                Some(record) => records.push(record),
                // The record's own TTL ran out in custody.
                None => inner.stats.custody_expired += 1,
            }
        }
        for chunk in records.chunks(wire::MAX_RECORDS) {
            inner.stats.custody_replayed += chunk.len() as u64;
            inner.stats.records_sent += chunk.len() as u64;
            let frame = Frame::Relay { from: self.config.port, records: chunk.to_vec() };
            outgoing.push((port, wire::encode_frame(&frame, self.config.key)));
        }
    }

    /// Lands one gossiped record in the local registry with remote
    /// attribution, warming the response cache on success so the next
    /// request for its type is a remote hit.
    fn apply_wire_record(
        &self,
        inner: &mut MeshInner,
        record: WireRecord,
        peer: PeerId,
        now: SimTime,
    ) {
        let Some(origin) = resolve_origin(&record.origin) else {
            inner.stats.records_stale += 1;
            return;
        };
        let advert = advert_stream(&record);
        match self.registry.record_remote(origin, &advert, peer, now) {
            RemoteDisposition::Applied | RemoteDisposition::Refreshed => {
                inner.stats.records_applied += 1;
                self.registry.warm_remote(&record.canonical_type, response_stream(&record), now);
            }
            RemoteDisposition::Stale | RemoteDisposition::Ignored => {
                inner.stats.records_stale += 1;
            }
        }
    }
}

/// Freezes a live record for the wire, converting its absolute expiry
/// back to a remaining TTL in whole seconds, rounded **up** so a record
/// never dies early in transit. The receiver's rebuilt expiry can
/// therefore sit up to one second past the sender's; the registry's
/// remote equivalence check absorbs exactly that quantum
/// ([`ServiceRegistry::record_remote`]), which is what keeps
/// anti-entropy converging on fractional-second round times. `None`
/// when already dead.
fn record_to_wire(record: &ServiceRecord, now: SimTime) -> Option<WireRecord> {
    if record.is_expired(now) {
        return None;
    }
    let ttl_secs = match record.expires_at() {
        None => None,
        Some(at) => {
            let remaining = at.as_nanos().saturating_sub(now.as_nanos());
            Some(remaining.div_ceil(1_000_000_000).min(u64::from(u32::MAX)) as u32)
        }
    };
    Some(WireRecord {
        origin: WireOrigin::Builtin(record.origin()),
        canonical_type: record.canonical_type().to_owned(),
        key: record.key().to_owned(),
        url: record.endpoint().map(str::to_owned),
        ttl_secs,
    })
}

/// Resolves a wire origin against the local protocol table. Dynamic
/// protocols must already be registered here (by name *and* port) —
/// wire input never registers protocols.
fn resolve_origin(origin: &WireOrigin) -> Option<SdpProtocol> {
    match origin {
        WireOrigin::Builtin(p) => Some(*p),
        WireOrigin::Dynamic { name, port } => {
            ProtocolId::lookup(name).filter(|id| id.port() == *port).map(SdpProtocol::Dynamic)
        }
    }
}

/// Reconstructs an advert stream whose derived identity
/// ([`crate::registry::advert_key`]) matches the wire record's key, so
/// the record keeps one identity mesh-wide.
fn advert_stream(record: &WireRecord) -> EventStream {
    let mut events =
        vec![Event::ServiceAlive, Event::ServiceType(record.canonical_type.as_str().into())];
    let key_is_derivable = match &record.url {
        Some(url) => *url == record.key,
        None => record.key == record.canonical_type,
    };
    if !key_is_derivable {
        events.push(Event::UpnpUsn(record.key.as_str().into()));
    }
    if let Some(url) = &record.url {
        events.push(Event::ResServUrl(url.as_str().into()));
    }
    if let Some(ttl) = record.ttl_secs {
        events.push(Event::ResTtl(ttl));
    }
    EventStream::framed(events)
}

/// The cached response served for remote hits of this record's type.
fn response_stream(record: &WireRecord) -> EventStream {
    let mut events = vec![
        Event::ServiceResponse,
        Event::ResOk,
        Event::ServiceType(record.canonical_type.as_str().into()),
    ];
    if let Some(url) = &record.url {
        events.push(Event::ResServUrl(url.as_str().into()));
    }
    if let Some(ttl) = record.ttl_secs {
        events.push(Event::ResTtl(ttl));
    }
    EventStream::framed(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use indiss_net::SimTransport;

    fn node(shards: usize) -> MeshNode {
        let registry = ServiceRegistry::new(RegistryConfig { shards, ..RegistryConfig::default() });
        MeshNode::new(
            registry,
            Arc::new(SimTransport::new()),
            MeshConfig { port: 7100, peers: vec![7101], ..MeshConfig::default() },
        )
    }

    /// A peer that restarts with a different shard count is a new
    /// incarnation: its pull state resets and it re-syncs from scratch
    /// instead of being rejected forever.
    #[test]
    fn shard_count_change_resets_pull_state_instead_of_rejecting() {
        let node = node(1);
        let now = SimTime::from_secs(1);
        let digest = |versions: Vec<u64>| Frame::Digest { from: 7101, round: 1, versions };

        let mut inner = node.shared.lock();
        let out = node.shared.handle_frame(&mut inner, digest(vec![3, 3]), now);
        assert_eq!(out.len(), 1, "first digest answered");
        assert_eq!(inner.peers[0].pulled.len(), 2, "pull state sized from the digest");

        let out = node.shared.handle_frame(&mut inner, digest(vec![1, 0, 0, 2]), now);
        assert_eq!(out.len(), 1, "the resized digest is still answered");
        assert_eq!(inner.peers[0].pulled.len(), 4, "pull state resized to the new layout");
        assert_eq!(inner.stats.digest_resyncs, 1);
        assert_eq!(inner.stats.digests_received, 2);
    }

    /// A registry sharded beyond what a digest frame carries is refused
    /// at startup instead of silently gossiping a truncated vector.
    #[test]
    fn start_rejects_more_shards_than_the_digest_wire_carries() {
        let oversharded = node(wire::MAX_SHARDS + 1);
        assert!(matches!(oversharded.start(), Err(CoreError::BadConfig(_))));
        assert!(node(wire::MAX_SHARDS).start().is_ok(), "the cap itself is fine");
    }
}
