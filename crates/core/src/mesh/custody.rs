//! Store-and-forward custody: bounded per-peer queues of adverts held
//! for a partitioned peer and replayed when it reconnects.
//!
//! When the mesh marks a peer down (its digests go unanswered), the
//! local gateway starts holding every advert it publishes in that
//! peer's custody queue. The queue is bounded two ways:
//!
//! * **capacity** — beyond `capacity` entries the oldest is dropped
//!   (and counted), so an extended partition cannot grow memory;
//! * **deadline** — each entry carries `now + custody_ttl`; entries
//!   whose deadline passes before the peer returns are expired (and
//!   counted) by the mesh's timer tick.
//!
//! Because the TTL is a constant and enqueues happen in time order,
//! deadlines are monotonic front-to-back — expiry and overflow are both
//! pop-from-the-front, which is what lets the mesh treat the queue as
//! one more deadline source on its scheduling wheel (the earliest
//! deadline is always `front()`).

use std::collections::VecDeque;

use indiss_net::SimTime;

use crate::registry::ServiceRecord;

/// One advert held for a partitioned peer.
#[derive(Debug, Clone)]
pub(crate) struct CustodyEntry {
    /// The record as it stood at publish time, origin included (its own
    /// `expires_at` still applies at replay: a record that died in
    /// custody is not replayed).
    pub record: ServiceRecord,
    /// When custody of this entry lapses.
    pub deadline: SimTime,
}

/// A bounded FIFO of adverts held for one partitioned peer.
#[derive(Debug, Default)]
pub(crate) struct CustodyQueue {
    entries: VecDeque<CustodyEntry>,
}

impl CustodyQueue {
    /// Holds an advert, evicting the oldest entry when `capacity` is
    /// reached. Returns `true` when an entry was dropped to make room.
    pub fn push(&mut self, record: ServiceRecord, deadline: SimTime, capacity: usize) -> bool {
        let mut dropped = false;
        if capacity == 0 {
            return true;
        }
        while self.entries.len() >= capacity {
            self.entries.pop_front();
            dropped = true;
        }
        self.entries.push_back(CustodyEntry { record, deadline });
        dropped
    }

    /// Drops entries whose custody deadline has passed, returning how
    /// many lapsed. Deadlines are monotonic, so this only ever looks at
    /// the front.
    pub fn expire(&mut self, now: SimTime) -> u64 {
        let mut lapsed = 0;
        while self.entries.front().is_some_and(|e| e.deadline <= now) {
            self.entries.pop_front();
            lapsed += 1;
        }
        lapsed
    }

    /// The earliest custody deadline, when the queue is non-empty.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.entries.front().map(|e| e.deadline)
    }

    /// Takes every held entry (oldest first) for replay.
    pub fn drain(&mut self) -> Vec<CustodyEntry> {
        self.entries.drain(..).collect()
    }

    /// Number of adverts currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventStream, SdpProtocol};

    fn record(ty: &str) -> ServiceRecord {
        let stream = EventStream::framed(vec![
            Event::ServiceAlive,
            Event::ServiceType(ty.into()),
            Event::ResServUrl(format!("slp://{ty}")),
        ]);
        ServiceRecord::from_advert(SdpProtocol::Slp, &stream, SimTime::ZERO, None).expect("keyed")
    }

    #[test]
    fn overflow_drops_oldest_first() {
        let mut q = CustodyQueue::default();
        assert!(!q.push(record("a"), SimTime::from_secs(10), 2));
        assert!(!q.push(record("b"), SimTime::from_secs(11), 2));
        assert!(q.push(record("c"), SimTime::from_secs(12), 2), "a dropped");
        let held: Vec<String> =
            q.drain().into_iter().map(|e| e.record.canonical_type().to_owned()).collect();
        assert_eq!(held, vec!["b".to_owned(), "c".to_owned()]);
    }

    #[test]
    fn expiry_pops_due_entries_from_the_front() {
        let mut q = CustodyQueue::default();
        q.push(record("a"), SimTime::from_secs(10), 8);
        q.push(record("b"), SimTime::from_secs(20), 8);
        assert_eq!(q.next_deadline(), Some(SimTime::from_secs(10)));
        assert_eq!(q.expire(SimTime::from_secs(9)), 0);
        assert_eq!(q.expire(SimTime::from_secs(10)), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_deadline(), Some(SimTime::from_secs(20)));
        assert_eq!(q.expire(SimTime::from_secs(60)), 1);
        assert_eq!(q.next_deadline(), None);
    }

    #[test]
    fn zero_capacity_holds_nothing() {
        let mut q = CustodyQueue::default();
        assert!(q.push(record("a"), SimTime::from_secs(1), 0));
        assert_eq!(q.len(), 0);
    }
}
