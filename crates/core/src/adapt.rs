//! Context-aware self-adaptation (paper §4.2, Fig. 6).
//!
//! When both clients and services are *passive* (clients listen, services
//! on the other side of INDISS advertise in a protocol the clients do not
//! speak), nobody INDISS can hear initiates anything it could translate
//! on demand — the "blocked situation" at the top-right of Fig. 6. The
//! fix: "define a network traffic threshold below which INDISS, hosted on
//! the service host, must become active", re-advertising the local
//! services into every other SDP's multicast group.
//!
//! The trade-off the paper calls out is explicit here: the active mode
//! costs bandwidth, so it only engages while measured traffic is low.

use std::time::Duration;

/// INDISS's current interception mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscoveryMode {
    /// Translate on demand only (default).
    Passive,
    /// Additionally re-advertise known local services into other SDPs.
    Active,
}

/// The traffic-threshold policy.
#[derive(Debug, Clone)]
pub struct AdaptationPolicy {
    /// Become active when measured traffic falls below this rate.
    pub threshold_bytes_per_sec: f64,
    /// Length of the measurement window.
    pub window: Duration,
    /// How often to evaluate (also the active re-advertisement period).
    pub check_interval: Duration,
}

impl Default for AdaptationPolicy {
    fn default() -> Self {
        AdaptationPolicy {
            threshold_bytes_per_sec: 500.0,
            window: Duration::from_secs(2),
            check_interval: Duration::from_secs(2),
        }
    }
}

impl AdaptationPolicy {
    /// Decides the mode for a measured rate (`None` = empty window, which
    /// counts as zero traffic).
    pub fn decide(&self, rate: Option<f64>) -> DiscoveryMode {
        match rate {
            Some(r) if r >= self.threshold_bytes_per_sec => DiscoveryMode::Passive,
            _ => DiscoveryMode::Active,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_traffic_activates() {
        let p = AdaptationPolicy::default();
        assert_eq!(p.decide(Some(10.0)), DiscoveryMode::Active);
        assert_eq!(p.decide(None), DiscoveryMode::Active);
    }

    #[test]
    fn high_traffic_stays_passive() {
        let p = AdaptationPolicy::default();
        assert_eq!(p.decide(Some(10_000.0)), DiscoveryMode::Passive);
        assert_eq!(p.decide(Some(500.0)), DiscoveryMode::Passive, "threshold inclusive");
    }
}
