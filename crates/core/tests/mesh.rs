//! Integration tests of the federated gateway mesh: anti-entropy digest
//! gossip over a shared [`SimTransport`] bus, remote-hit serving with
//! origin attribution, and store-and-forward custody across a seeded
//! partition. Every scenario here is deterministic — same-seed reruns
//! must reproduce identical [`MeshStats`] and registry content digests,
//! which the tests check by running each scenario twice.

use std::sync::Arc;
use std::time::Duration;

use indiss_core::{
    Event, EventStream, MeshConfig, MeshNode, MeshStats, PeerId, RecordOrigin, RegistryConfig,
    SdpProtocol, ServiceRegistry,
};
use indiss_net::{FaultPlan, FaultTransport, SimTime, SimTransport, Transport};

fn alive(ty: &str, url: &str, ttl: u32) -> EventStream {
    EventStream::framed(vec![
        Event::ServiceAlive,
        Event::ServiceType(ty.into()),
        Event::ResServUrl(url.into()),
        Event::ResTtl(ttl),
    ])
}

struct Gateway {
    registry: ServiceRegistry,
    mesh: MeshNode,
}

fn gateway(
    transport: Arc<dyn Transport>,
    template: &MeshConfig,
    port: u16,
    shards: usize,
) -> Gateway {
    let registry = ServiceRegistry::new(RegistryConfig { shards, ..RegistryConfig::default() });
    let mesh = MeshNode::new(registry.clone(), transport, MeshConfig { port, ..template.clone() });
    mesh.start().expect("mesh binds its peer channel");
    Gateway { registry, mesh }
}

/// One full ten-gateway convergence scenario; returns every node's
/// mesh counters and registry content digest so the caller can compare
/// two same-seed runs for exact equality.
fn run_ten_gateway_convergence() -> (Vec<MeshStats>, Vec<u64>) {
    let bus: Arc<dyn Transport> = Arc::new(SimTransport::new());
    let ports: Vec<u16> = (0..10).map(|i| 7100 + i).collect();
    let template = MeshConfig { peers: ports.clone(), ..MeshConfig::default() };
    let gateways: Vec<Gateway> =
        ports.iter().map(|&p| gateway(Arc::clone(&bus), &template, p, 4)).collect();

    // One service appears at gateway 0 only.
    let t1 = SimTime::from_secs(1);
    gateways[0].registry.record_advert(
        SdpProtocol::Slp,
        &alive("clock", "slp://printer/clock", 600),
        t1,
    );

    // Round 1 spreads the record (digest -> pull -> records chains);
    // round 2 settles to pure digest/ack exchanges.
    for round in 1..=2u64 {
        let now = SimTime::from_secs(round);
        for gw in &gateways {
            gw.mesh.run_round(now);
        }
    }

    let t3 = SimTime::from_secs(3);

    // Every node converged to the same registry content.
    let digests: Vec<u64> = gateways.iter().map(|gw| gw.registry.content_digest(t3)).collect();
    assert!(digests.iter().all(|&d| d == digests[0]), "all digests equal: {digests:?}");

    // The record itself: local at gateway 0, attributed to gateway 0
    // everywhere else.
    let origin_record = gateways[0]
        .registry
        .record(SdpProtocol::Slp, "slp://printer/clock", t3)
        .expect("origin keeps its record");
    assert_eq!(origin_record.provenance(), RecordOrigin::Local);
    for gw in &gateways[1..] {
        assert_eq!(gw.registry.record_count(), 1);
        let record = gw
            .registry
            .record(SdpProtocol::Slp, "slp://printer/clock", t3)
            .expect("gossip landed the record");
        assert_eq!(record.provenance(), RecordOrigin::Remote(PeerId(7100)));

        // The apply warmed the response cache, so a request for the
        // type is served locally as a *remote* hit — no re-fan-out.
        assert!(gw.registry.cached_response("clock", t3).is_some(), "warm remote hit");
        let stats = gw.registry.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.remote_cache_hits, 1, "the hit is attributed to the mesh");
    }

    // Exact mesh counters. Round 1: every node pulls every other node
    // exactly once (the one record, applied on first receipt and stale
    // on the 8 echoes); round 2 is all acks.
    let stats: Vec<MeshStats> = gateways.iter().map(|gw| gw.mesh.stats()).collect();
    for (i, s) in stats.iter().enumerate() {
        let applied = u64::from(i != 0);
        let expected = MeshStats {
            rounds_run: 2,
            digests_sent: 18,
            digests_received: 18,
            digest_resyncs: 0,
            acks_sent: 9,
            acks_received: 9,
            pulls_sent: 9,
            pulls_received: 9,
            records_sent: 9,
            records_received: 9,
            records_applied: applied,
            records_stale: 9 - applied,
            frames_rejected: 0,
            custody_enqueued: 0,
            custody_dropped: 0,
            custody_expired: 0,
            custody_replayed: 0,
            peers_down: 0,
            peers_reconnected: 0,
        };
        assert_eq!(*s, expected, "gateway {i} counters");
    }

    (stats, digests)
}

/// A record registered at gateway 0 is served as a warm remote hit at
/// all 9 peers after gossip convergence, and a same-seed rerun
/// reproduces identical `MeshStats` and registry digests.
#[test]
fn ten_gateways_converge_to_warm_remote_hits() {
    let first = run_ten_gateway_convergence();
    let second = run_ten_gateway_convergence();
    assert_eq!(first, second, "same-seed replay is identical");
}

/// Regression: remaining TTL travels in whole seconds rounded up, so a
/// receiver rebuilds an expiry slightly later than the sender's. The
/// registry's remote equivalence check must absorb that quantum, or two
/// gateways whose round times are not whole seconds (the default gossip
/// interval is 500 ms!) re-pull each other forever — no digest/ack
/// fixpoint, and every record's expiry creeps forward each round so
/// TTL'd records never die while gossip runs.
#[test]
fn fractional_round_times_reach_the_digest_ack_fixpoint() {
    let bus: Arc<dyn Transport> = Arc::new(SimTransport::new());
    let template = MeshConfig { peers: vec![7100, 7101], ..MeshConfig::default() };
    let a = gateway(Arc::clone(&bus), &template, 7100, 1);
    let b = gateway(Arc::clone(&bus), &template, 7101, 1);

    // A 600 s record lands at a fractional instant: its expiry is never
    // a whole number of seconds away from any 500 ms round tick.
    a.registry.record_advert(
        SdpProtocol::Slp,
        &alive("clock", "slp://a/clock", 600),
        SimTime::from_nanos(250_000_000),
    );

    // Six rounds at the default 500 ms cadence.
    for n in 1..=6u64 {
        let now = SimTime::from_nanos(n * 500_000_000);
        a.mesh.run_round(now);
        b.mesh.run_round(now);
    }

    // Round 1 spreads the record (and echoes it back to A); every later
    // round must settle to a pure digest/ack exchange with no record
    // churn — the wire's whole-second TTL rounding is not news.
    let (sa, sb) = (a.mesh.stats(), b.mesh.stats());
    assert_eq!((sa.pulls_sent, sa.records_applied, sa.records_stale), (1, 0, 1), "{sa:?}");
    assert_eq!((sb.pulls_sent, sb.records_applied, sb.records_stale), (1, 1, 0), "{sb:?}");
    assert_eq!(sa.acks_sent, 5, "rounds 2-6 are acks at A: {sa:?}");
    assert_eq!(sb.acks_sent, 5, "rounds 2-6 are acks at B: {sb:?}");

    // And the expiry did not creep: the record still dies on schedule.
    let alive_at = SimTime::from_secs(599);
    assert!(b.registry.record(SdpProtocol::Slp, "slp://a/clock", alive_at).is_some());
    let late = SimTime::from_secs(602);
    assert!(a.registry.record(SdpProtocol::Slp, "slp://a/clock", late).is_none());
    assert!(b.registry.record(SdpProtocol::Slp, "slp://a/clock", late).is_none());
}

/// The three-gateway partition scenario: gateway C's ingress is severed
/// for a scheduled arrival-index window, A publishes adverts while C is
/// down (custody, bounded), and C converges only after the window ends
/// via custody replay. Returns counters and digests for replay checks.
fn run_partition_scenario(seed: u64) -> (Vec<MeshStats>, Vec<u64>) {
    let bus: Arc<dyn Transport> = Arc::new(SimTransport::new());
    // Only C binds through the fault layer: its ingress lane discards
    // arrivals 8..28 (rounds 3-6 — four arrivals per round: two peer
    // digests plus two acks answering C's own digests). C's egress is
    // untouched, so C keeps sending digests nobody can answer — which
    // is exactly why digests must not count as proof of liveness.
    let mut plan = FaultPlan::quiet(seed);
    plan.partitions = vec![(8, 24)];
    let faulted: Arc<dyn Transport> = Arc::new(FaultTransport::wrap(Arc::clone(&bus), plan));

    let ports = vec![7100u16, 7101, 7102];
    let template =
        MeshConfig { peers: ports.clone(), custody_capacity: 2, ..MeshConfig::default() };
    let a = gateway(Arc::clone(&bus), &template, 7100, 2);
    let b = gateway(Arc::clone(&bus), &template, 7101, 2);
    let c = gateway(faulted, &template, 7102, 2);

    let round = |n: u64| {
        let now = SimTime::from_secs(n);
        a.mesh.run_round(now);
        b.mesh.run_round(now);
        c.mesh.run_round(now);
    };

    // Rounds 1-2: healthy (arrivals 0..8 on C's lane). Rounds 3-4: C
    // hears nothing; its silence raises miss counts at A and B.
    for n in 1..=4 {
        round(n);
    }
    assert!(!a.mesh.peer_down(7102), "not down before down_after misses");

    // Round 5: the second unanswered digest marks C down everywhere —
    // and C, hearing no responses either, marks both peers down.
    round(5);
    assert!(a.mesh.peer_down(7102));
    assert!(b.mesh.peer_down(7102));
    assert!(c.mesh.peer_down(7100) && c.mesh.peer_down(7101));

    // Three services appear at A while C is cut. Custody holds two
    // (the bound), dropping the oldest and counting the drop. B is up
    // and learns them over plain gossip next round.
    let t5 = SimTime::from_secs(5);
    for (ty, url) in [("svc-a", "slp://a/1"), ("svc-b", "slp://a/2"), ("svc-c", "slp://a/3")] {
        let advert = alive(ty, url, 600);
        a.registry.record_advert(SdpProtocol::Slp, &advert, t5);
        a.mesh.publish(SdpProtocol::Slp, &advert, t5);
    }
    assert_eq!(a.mesh.custody_len(7102), 2, "bounded custody");
    let mid = a.mesh.stats();
    assert_eq!(mid.custody_enqueued, 3);
    assert_eq!(mid.custody_dropped, 1, "oldest dropped and counted");

    // Round 6: B pulls the three records; C still hears nothing.
    round(6);
    assert_eq!(b.registry.record_count(), 3, "the live peer converges during the cut");
    assert_eq!(c.registry.record_count(), 0, "the cut peer cannot converge yet");

    // Rounds 7-8: the window has ended. C answers A's digest with a
    // pull; that response revives C at A, which replays custody as a
    // RELAY frame ahead of the pull answer. One more round settles
    // every version vector back to acks.
    round(7);
    round(8);

    let t9 = SimTime::from_secs(9);
    assert_eq!(c.registry.record_count(), 3, "reconnect converged the cut peer");
    let digests = vec![
        a.registry.content_digest(t9),
        b.registry.content_digest(t9),
        c.registry.content_digest(t9),
    ];
    assert!(digests.iter().all(|&d| d == digests[0]), "all digests equal: {digests:?}");

    // Attribution: everything C holds came from A, both the relayed
    // pair and the custody-dropped record that plain anti-entropy
    // backfilled on the same reconnect.
    for url in ["slp://a/1", "slp://a/2", "slp://a/3"] {
        let record = c.registry.record(SdpProtocol::Slp, url, t9).expect("record landed");
        assert_eq!(record.provenance(), RecordOrigin::Remote(PeerId(7100)));
    }

    // The applies warmed C's cache: requests are remote hits.
    for ty in ["svc-a", "svc-b", "svc-c"] {
        assert!(c.registry.cached_response(ty, t9).is_some(), "warm remote hit for {ty}");
    }
    assert_eq!(c.registry.stats().remote_cache_hits, 3);

    let (sa, sb, sc) = (a.mesh.stats(), b.mesh.stats(), c.mesh.stats());

    // A held custody for C and replayed the two surviving entries.
    assert_eq!(
        (sa.custody_enqueued, sa.custody_dropped, sa.custody_expired, sa.custody_replayed),
        (3, 1, 0, 2)
    );
    assert_eq!((sa.peers_down, sa.peers_reconnected), (1, 1));

    // B never held custody (the records were remote there) but saw the
    // same down/reconnect transition, and applied all three records.
    assert_eq!(
        (sb.custody_enqueued, sb.custody_dropped, sb.custody_expired, sb.custody_replayed),
        (0, 0, 0, 0)
    );
    assert_eq!((sb.peers_down, sb.peers_reconnected), (1, 1));
    assert_eq!(sb.records_applied, 3);

    // C lost both peers to the cut, recovered both, and applied the
    // three records exactly once each (relay first, echoes stale).
    assert_eq!((sc.peers_down, sc.peers_reconnected), (2, 2));
    assert_eq!(sc.records_applied, 3);
    assert_eq!(sc.custody_enqueued, 0);
    assert_eq!(sc.frames_rejected, 0);

    (vec![sa, sb, sc], digests)
}

/// Under a seeded partition the cut peer converges only after reconnect
/// via custody replay, and the whole run — counters and digests — is
/// reproducible from the same seed.
#[test]
fn partitioned_peer_converges_via_custody_replay() {
    let first = run_partition_scenario(7);
    let second = run_partition_scenario(7);
    assert_eq!(first, second, "same-seed replay is identical");
}

/// One mobility-handover scenario: a service originates at gateway 0,
/// converges across the mesh, then re-homes to gateway 2 (the PR 9
/// `Move` script shape) and re-originates there with a fresh TTL.
/// Returns final counters and digests for same-seed replay checks.
fn run_mobility_handover() -> (Vec<MeshStats>, Vec<u64>) {
    let bus: Arc<dyn Transport> = Arc::new(SimTransport::new());
    let ports = vec![7200u16, 7201, 7202];
    let template = MeshConfig { peers: ports.clone(), ..MeshConfig::default() };
    let gws: Vec<Gateway> =
        ports.iter().map(|&p| gateway(Arc::clone(&bus), &template, p, 2)).collect();
    let round = |n: u64| {
        let now = SimTime::from_secs(n);
        for gw in &gws {
            gw.mesh.run_round(now);
        }
    };

    // t=1: the service lives at gateway 0, on a short lease (the old
    // home's record must not be what keeps the service alive later).
    let t1 = SimTime::from_secs(1);
    gws[0].registry.record_advert(SdpProtocol::Slp, &alive("clock", "slp://clock/ctl", 10), t1);
    round(1);
    round(2);
    let t2 = SimTime::from_secs(2);
    for (i, gw) in gws.iter().enumerate() {
        assert_eq!(gw.registry.record_count(), 1, "gateway {i} converged");
        let record = gw.registry.record(SdpProtocol::Slp, "slp://clock/ctl", t2).expect("landed");
        let expected =
            if i == 0 { RecordOrigin::Local } else { RecordOrigin::Remote(PeerId(7200)) };
        assert_eq!(record.provenance(), expected, "gateway {i} attribution before the move");
    }

    // t=3: the service re-homes to gateway 2 and re-originates with a
    // fresh 600 s lease — same identity, new gateway, new lifetime.
    let t3 = SimTime::from_secs(3);
    gws[2].registry.record_advert(SdpProtocol::Slp, &alive("clock", "slp://clock/ctl", 600), t3);
    let moved = gws[2].registry.record(SdpProtocol::Slp, "slp://clock/ctl", t3).expect("rehomed");
    assert_eq!(moved.provenance(), RecordOrigin::Local, "re-origination owns the record");

    // Rounds 3-6: the handover spreads (gateway 0's stale copy is
    // superseded, not kept) and the version vectors settle.
    for n in 3..=6 {
        round(n);
    }
    let t6 = SimTime::from_secs(6);
    let digests: Vec<u64> = gws.iter().map(|gw| gw.registry.content_digest(t6)).collect();
    assert!(digests.iter().all(|&d| d == digests[0]), "all digests equal: {digests:?}");
    for (i, gw) in gws.iter().enumerate() {
        assert_eq!(gw.registry.record_count(), 1, "one live record, no doubled identity");
        let record = gw.registry.record(SdpProtocol::Slp, "slp://clock/ctl", t6).expect("alive");
        let expected =
            if i == 2 { RecordOrigin::Local } else { RecordOrigin::Remote(PeerId(7202)) };
        assert_eq!(record.provenance(), expected, "gateway {i} re-attributed to the new home");
    }

    // Fixpoint: two more rounds must be pure digest/ack exchanges — no
    // pulls, no record transfers, no re-advertising ping-pong between
    // the old and new home.
    let settled: Vec<MeshStats> = gws.iter().map(|gw| gw.mesh.stats()).collect();
    round(7);
    round(8);
    let after: Vec<MeshStats> = gws.iter().map(|gw| gw.mesh.stats()).collect();
    for (i, (s, a)) in settled.iter().zip(&after).enumerate() {
        assert_eq!(a.pulls_sent, s.pulls_sent, "gateway {i} pulls again after fixpoint");
        assert_eq!(a.records_sent, s.records_sent, "gateway {i} re-ships records");
        assert_eq!(a.records_applied, s.records_applied, "gateway {i} re-applies");
        assert_eq!(a.acks_sent, s.acks_sent + 4, "rounds 7-8 are all acks at gateway {i}");
    }

    // The old home's 10 s lease is long gone at t=20; the service lives
    // on the new home's lease — and dies on its schedule, everywhere.
    let t20 = SimTime::from_secs(20);
    for (i, gw) in gws.iter().enumerate() {
        assert!(
            gw.registry.record(SdpProtocol::Slp, "slp://clock/ctl", t20).is_some(),
            "gateway {i} outlives the old lease on the new one"
        );
    }
    let t700 = SimTime::from_secs(700);
    for (i, gw) in gws.iter().enumerate() {
        assert!(
            gw.registry.record(SdpProtocol::Slp, "slp://clock/ctl", t700).is_none(),
            "gateway {i} expires the moved record on the new lease"
        );
    }

    (after, digests)
}

/// A service re-originating at a new gateway converges to a single
/// live record: the old home re-attributes to the new one, version
/// vectors reach fixpoint (no ping-pong re-advertising), the record
/// outlives the old lease on the new one, and a same-seed rerun is
/// identical.
#[test]
fn mobility_handover_converges_to_a_single_live_record() {
    let first = run_mobility_handover();
    let second = run_mobility_handover();
    assert_eq!(first, second, "same-seed replay is identical");
}

/// Custody entries lapse unsent when the peer stays gone past the
/// custody TTL, and the lapse deadline is surfaced through
/// [`MeshNode::next_deadline`] so a driving timer wakes up for it.
#[test]
fn custody_entries_lapse_unsent_when_the_peer_stays_gone() {
    let bus: Arc<dyn Transport> = Arc::new(SimTransport::new());
    let template = MeshConfig {
        peers: vec![7300, 7301],
        gossip_interval: Duration::from_secs(10),
        custody_ttl: Duration::from_secs(2),
        ..MeshConfig::default()
    };
    // Peer 7301 never binds: every digest goes unanswered.
    let a = gateway(Arc::clone(&bus), &template, 7300, 1);
    for n in 1..=3 {
        a.mesh.run_round(SimTime::from_secs(n));
    }
    assert!(a.mesh.peer_down(7301), "down after two unanswered digests");

    let t3 = SimTime::from_secs(3);
    let advert = alive("printer", "slp://p/1", 600);
    a.registry.record_advert(SdpProtocol::Slp, &advert, t3);
    a.mesh.publish(SdpProtocol::Slp, &advert, t3);
    assert_eq!(a.mesh.custody_len(7301), 1);

    // The custody deadline (t=5) is earlier than the next round (t=13).
    assert_eq!(a.mesh.next_deadline(), Some(SimTime::from_secs(5)));

    a.mesh.tick(SimTime::from_secs(6));
    assert_eq!(a.mesh.custody_len(7301), 0);
    let stats = a.mesh.stats();
    assert_eq!(stats.custody_expired, 1, "lapsed unsent");
    assert_eq!(stats.custody_replayed, 0);
    assert_eq!(stats.rounds_run, 3, "the tick was before the next round");
}
