//! Property tests for the zero-copy event pipeline: cheap stream clones
//! preserve equality and framing, the symbol interner canonicalizes
//! equal strings across independently constructed units, and
//! negative-cache entries ride the same expiry wheel as positive ones.

use std::time::Duration;

use proptest::prelude::*;

use indiss_core::{
    Event, EventStream, EventStreamBuilder, ParsedMessage, RegistryConfig, SdpProtocol,
    ServiceRegistry, SlpUnit, SlpUnitConfig, Symbol, Unit, UpnpUnit, UpnpUnitConfig,
};
use indiss_net::{Datagram, SimTime, World};

fn token() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,14}"
}

/// A generator covering every payload shape the pipeline carries:
/// unit variants, interned symbols, owned strings and boxed attrs.
fn arb_body_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        Just(Event::ServiceRequest),
        Just(Event::ServiceResponse),
        Just(Event::ServiceAlive),
        Just(Event::NetMulticast),
        Just(Event::ResOk),
        (1u32..100_000).prop_map(Event::ResTtl),
        token().prop_map(|t| Event::ServiceType(t.as_str().into())),
        token().prop_map(|t| Event::UpnpUsn(t.as_str().into())),
        token().prop_map(Event::ResServUrl),
        (token(), token())
            .prop_map(|(tag, value)| Event::ResAttr { tag: tag.into(), value: value.into() }),
    ]
}

proptest! {
    /// A cheap clone is indistinguishable from its source — same events,
    /// same framing, same accessor results — and really is the same
    /// buffer, not a copy.
    #[test]
    fn cheap_clone_preserves_equality_and_framing(
        body in proptest::collection::vec(arb_body_event(), 0..12),
    ) {
        let stream = EventStream::framed(body);
        let clone = stream.clone();
        prop_assert!(stream.shares_buffer(&clone), "clone must share, not copy");
        prop_assert_eq!(&stream, &clone);
        prop_assert_eq!(stream.events(), clone.events());
        prop_assert!(matches!(clone.events().first(), Some(Event::Start)));
        prop_assert!(matches!(clone.events().last(), Some(Event::Stop)));
        prop_assert_eq!(stream.service_type(), clone.service_type());
        prop_assert_eq!(stream.service_url(), clone.service_url());
        prop_assert_eq!(stream.body().len(), stream.events().len() - 2);
    }

    /// Builder-built and `framed`-built streams with the same body are
    /// equal, and re-building through `to_builder` preserves the body.
    #[test]
    fn builder_and_framed_agree(
        body in proptest::collection::vec(arb_body_event(), 0..12),
    ) {
        let framed = EventStream::framed(body.clone());
        let mut builder = EventStreamBuilder::with_capacity(body.len());
        for e in &body {
            builder.push(e.clone());
        }
        let built = builder.build();
        prop_assert_eq!(&framed, &built);
        let rebuilt = built.to_builder().build();
        prop_assert_eq!(&built, &rebuilt);
        prop_assert!(!built.shares_buffer(&rebuilt), "derived stream owns a fresh buffer");
    }

    /// Interning is canonical: equal strings yield identical symbols (by
    /// pointer, hash and comparison) no matter how they are produced.
    #[test]
    fn interner_canonicalizes_equal_strings(s in token()) {
        let a = Symbol::intern(&s);
        let b = Symbol::from_owned(s.clone());
        let c: Symbol = s.as_str().into();
        prop_assert_eq!(a, b);
        prop_assert_eq!(b, c);
        prop_assert!(std::ptr::eq(a.as_str(), b.as_str()), "one canonical allocation");
        prop_assert_eq!(a.as_str(), s.as_str());
        // And distinct strings stay distinct.
        let other = Symbol::intern(&format!("{s}-x"));
        prop_assert!(a != other);
    }

    /// Negative-cache entries expire on the wheel exactly like positive
    /// ones: visible strictly inside the TTL, reclaimed by the sweep at
    /// the deadline, and never outliving it.
    #[test]
    fn negative_entries_expire_on_the_wheel(
        ttl_ms in 100u64..60_000,
        armed_at_ms in 0u64..10_000,
    ) {
        let reg = ServiceRegistry::new(RegistryConfig {
            negative_ttl: Duration::from_millis(ttl_ms),
            ..RegistryConfig::default()
        });
        let armed_at = SimTime::from_millis(armed_at_ms);
        let deadline = SimTime::from_millis(armed_at_ms + ttl_ms);
        reg.warm_negative(SdpProtocol::Slp, "ghost", armed_at);
        prop_assert!(reg.cached_negative(SdpProtocol::Slp, "ghost", armed_at));
        prop_assert!(
            reg.cached_negative(SdpProtocol::Slp, "ghost", SimTime::from_millis(armed_at_ms + ttl_ms - 1))
        );
        prop_assert_eq!(reg.next_deadline(), Some(deadline));
        let report = reg.sweep(deadline);
        prop_assert_eq!(report.negative_expired, 1);
        prop_assert_eq!(reg.negative_len(), 0, "sweep reclaimed the entry");
        prop_assert!(!reg.cached_negative(SdpProtocol::Slp, "ghost", deadline));
    }
}

/// Two independently constructed units parsing the "same" service type
/// from their native wire forms intern it to the identical symbol — the
/// cross-unit agreement the registry's symbol-keyed indexes rely on.
#[test]
fn units_intern_identical_symbols_for_equal_types() {
    let world = World::new(17);
    let node_a = world.add_node("indiss-a");
    let node_b = world.add_node("indiss-b");
    let slp = SlpUnit::new(&node_a, SlpUnitConfig::default()).unwrap();
    let upnp = UpnpUnit::new(&node_b, UpnpUnitConfig::default()).unwrap();

    let slp_msg = indiss_slp::Message::new(
        indiss_slp::Header::new(indiss_slp::FunctionId::SrvRqst, 1, "en"),
        indiss_slp::Body::SrvRqst(indiss_slp::SrvRqst {
            prlist: String::new(),
            service_type: "service:Clock".into(), // note the case
            scopes: "DEFAULT".into(),
            predicate: String::new(),
            spi: String::new(),
        }),
    );
    let slp_dgram = Datagram {
        src: "10.0.0.9:40000".parse().unwrap(),
        dst: format!("{}:{}", indiss_slp::SLP_MULTICAST_GROUP, indiss_slp::SLP_PORT)
            .parse()
            .unwrap(),
        payload: slp_msg.encode().unwrap(),
    };
    let upnp_dgram = Datagram {
        src: "10.0.0.9:40001".parse().unwrap(),
        dst: format!("{}:{}", indiss_ssdp::SSDP_MULTICAST_GROUP, indiss_ssdp::SSDP_PORT)
            .parse()
            .unwrap(),
        payload: indiss_ssdp::MSearch::new(indiss_ssdp::SearchTarget::device_urn("clock", 1), 0)
            .to_bytes(),
    };

    let ParsedMessage::Request(from_slp) = slp.parse(&world, &slp_dgram) else {
        panic!("SLP request expected");
    };
    let ParsedMessage::Request(from_upnp) = upnp.parse(&world, &upnp_dgram) else {
        panic!("UPnP request expected");
    };
    let a = from_slp.service_type_symbol().expect("typed");
    let b = from_upnp.service_type_symbol().expect("typed");
    assert_eq!(a, b, "both units canonicalize to one symbol");
    assert!(std::ptr::eq(a.as_str(), b.as_str()), "pointer-identical");
    assert_eq!(a.as_str(), "clock");
}

/// The registry's cache answers with the very buffer it stored — the
/// warm path the §4.3 best case rides is copy-free end to end.
#[test]
fn registry_round_trip_is_copy_free() {
    let reg = ServiceRegistry::new(RegistryConfig::default());
    let response = EventStream::framed(vec![
        Event::ServiceResponse,
        Event::ResOk,
        Event::ServiceType("clock".into()),
        Event::ResServUrl("soap://10.0.0.2:4004/ctl".into()),
    ]);
    reg.warm("clock", response.clone(), SimTime::ZERO);
    let hit = reg.cached_response("clock", SimTime::ZERO).expect("warm");
    assert!(hit.shares_buffer(&response));

    // Advert records share their stream too, and re-advertising snapshots
    // by reference.
    let advert = EventStream::framed(vec![
        Event::ServiceAlive,
        Event::ServiceType("printer".into()),
        Event::ResServUrl("lpr://10.0.0.9:515".into()),
    ]);
    reg.record_advert(SdpProtocol::Slp, &advert, SimTime::ZERO);
    let adverts = reg.adverts(SimTime::ZERO);
    assert_eq!(adverts.len(), 1);
    assert!(adverts[0].1.shares_buffer(&advert));
}
