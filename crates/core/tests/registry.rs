//! Integration tests of the [`ServiceRegistry`] subsystem through full
//! INDISS deployments: TTL expiry under virtual time, LRU bounds, and the
//! cache counters surfaced via `BridgeStats`.

use std::net::SocketAddrV4;
use std::time::Duration;

use indiss_core::{Indiss, IndissConfig, SdpProtocol};
use indiss_net::World;
use indiss_slp::{SlpConfig, UserAgent, SLP_MULTICAST_GROUP, SLP_PORT};
use indiss_ssdp::{Notify, NotifySubType, SearchTarget, SSDP_MULTICAST_GROUP, SSDP_PORT};
use indiss_upnp::{ClockDevice, UpnpConfig};

fn notify_alive(name: &str, max_age: u32) -> Notify {
    Notify {
        nt: SearchTarget::device_urn(name, 1),
        nts: NotifySubType::Alive,
        usn: format!("uuid:test-{name}::urn:schemas-upnp-org:device:{name}:1"),
        location: None,
        server: "test/1.0".into(),
        max_age,
    }
}

/// A record from a heard advert is visible until its TTL deadline and
/// gone — visibly and physically — once virtual time passes it.
#[test]
fn advert_ttl_expires_under_virtual_time() {
    let world = World::new(91);
    let gw = world.add_node("gateway");
    let indiss = Indiss::deploy(&gw, IndissConfig::slp_upnp()).unwrap();
    let announcer = world.add_node("announcer");
    let socket = announcer.udp_bind_ephemeral().unwrap();

    socket
        .send_to(
            &notify_alive("fridge", 5).to_bytes(),
            SocketAddrV4::new(SSDP_MULTICAST_GROUP, SSDP_PORT),
        )
        .unwrap();
    world.run_for(Duration::from_secs(1));

    let registry = indiss.registry();
    assert!(registry.contains_type("fridge", world.now()), "recorded");
    assert_eq!(registry.record_count(), 1);

    // Just before the deadline (advert at ~t=0 s with a 5 s TTL): alive.
    world.run_for(Duration::from_secs(3));
    assert!(registry.contains_type("fridge", world.now()));

    // Past the deadline: invisible to reads AND reclaimed by the sweep.
    world.run_for(Duration::from_secs(2));
    assert!(!registry.contains_type("fridge", world.now()), "expired");
    assert_eq!(registry.record_count(), 0, "sweep reclaimed the record");
    assert_eq!(indiss.stats().records_expired, 1);
}

/// A refresh advert extends the deadline: the record survives the
/// original TTL and expires after the refreshed one.
#[test]
fn refresh_extends_the_deadline() {
    let world = World::new(92);
    let gw = world.add_node("gateway");
    let indiss = Indiss::deploy(&gw, IndissConfig::slp_upnp()).unwrap();
    let announcer = world.add_node("announcer");
    let socket = announcer.udp_bind_ephemeral().unwrap();
    let dst = SocketAddrV4::new(SSDP_MULTICAST_GROUP, SSDP_PORT);

    socket.send_to(&notify_alive("lamp", 5).to_bytes(), dst).unwrap();
    world.run_for(Duration::from_secs(4));
    socket.send_to(&notify_alive("lamp", 10).to_bytes(), dst).unwrap();
    world.run_for(Duration::from_secs(4)); // t ≈ 8 s: original TTL passed
    let registry = indiss.registry();
    assert!(registry.contains_type("lamp", world.now()), "refresh extended the TTL");
    world.run_for(Duration::from_secs(8)); // t ≈ 16 s: refreshed TTL passed
    assert!(!registry.contains_type("lamp", world.now()));
    assert_eq!(registry.record_count(), 0);
}

/// The record store honours its configured capacity via LRU eviction.
#[test]
fn registry_capacity_bound_evicts_lru() {
    let world = World::new(93);
    let gw = world.add_node("gateway");
    let indiss = Indiss::deploy(&gw, IndissConfig::slp_upnp().with_registry_capacity(2)).unwrap();
    let announcer = world.add_node("announcer");
    let socket = announcer.udp_bind_ephemeral().unwrap();
    let dst = SocketAddrV4::new(SSDP_MULTICAST_GROUP, SSDP_PORT);

    for name in ["one", "two", "three"] {
        socket.send_to(&notify_alive(name, 300).to_bytes(), dst).unwrap();
        world.run_for(Duration::from_millis(100));
    }
    let registry = indiss.registry();
    assert_eq!(registry.record_count(), 2, "capacity bound held");
    assert!(!registry.contains_type("one", world.now()), "oldest evicted");
    assert!(registry.contains_type("two", world.now()));
    assert!(registry.contains_type("three", world.now()));
    assert_eq!(indiss.stats().records_evicted, 1);
}

/// The response cache honours its LRU bound, and the eviction counter
/// lands in `BridgeStats`.
#[test]
fn cache_capacity_bound_evicts_lru() {
    let world = World::new(94);
    let gw = world.add_node("gateway");
    let indiss = Indiss::deploy(&gw, IndissConfig::slp_upnp().with_cache_capacity(2)).unwrap();
    let response = |ty: &str| {
        indiss_core::EventStream::framed(vec![
            indiss_core::Event::ServiceResponse,
            indiss_core::Event::ResOk,
            indiss_core::Event::ServiceType(ty.into()),
            indiss_core::Event::ResServUrl(format!("soap://10.0.0.9/{ty}")),
        ])
    };
    indiss.warm_cache("a", response("a"));
    indiss.warm_cache("b", response("b"));
    indiss.warm_cache("c", response("c"));
    let registry = indiss.registry();
    assert_eq!(registry.cache_len(), 2);
    let mut cached = registry.cached_types(world.now());
    cached.sort();
    assert_eq!(cached, vec!["b", "c"], "oldest entry evicted");
    assert_eq!(indiss.stats().cache_evictions, 1);
}

/// Hit/miss/expiry counters through a real bridged discovery: the first
/// lookup misses and bridges, the second is answered from the cache, and
/// once the cache TTL elapses the entry expires.
#[test]
fn bridge_stats_count_cache_hits_misses_and_expiry() {
    let world = World::new(95);
    let host = world.add_node("clock-host");
    let client = world.add_node("slp-client");
    let _clock = ClockDevice::start(&host, UpnpConfig::default()).unwrap();
    let indiss =
        Indiss::deploy(&host, IndissConfig::slp_upnp().with_cache_ttl(Duration::from_secs(30)))
            .unwrap();
    let ua = UserAgent::start(&client, SlpConfig::default()).unwrap();

    let (_f, d1) = ua.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_secs(2));
    assert_eq!(d1.take().unwrap().urls.len(), 1);
    let stats = indiss.stats();
    assert_eq!(stats.cache_hits, 0);
    assert!(stats.cache_misses >= 1, "cold lookup missed: {stats:?}");

    let (_f, d2) = ua.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_secs(2));
    assert_eq!(d2.take().unwrap().urls.len(), 1);
    assert_eq!(indiss.stats().cache_hits, 1, "warm lookup hit");

    // Outlive the cache TTL: the entry expires (lazily or via sweep).
    world.run_for(Duration::from_secs(40));
    let stats = indiss.stats();
    assert!(stats.cache_expired >= 1, "cache entry expired: {stats:?}");
}

/// SLP `SrvReg` adverts land in the registry with their registration
/// lifetime as TTL, indexed by origin protocol.
#[test]
fn slp_registrations_land_in_registry() {
    let world = World::new(96);
    let gw = world.add_node("gateway");
    let indiss = Indiss::deploy(&gw, IndissConfig::slp_upnp()).unwrap();
    let announcer = world.add_node("sa-like");
    let socket = announcer.udp_bind_ephemeral().unwrap();

    let msg = indiss_slp::Message::new(
        indiss_slp::Header::new(indiss_slp::FunctionId::SrvReg, 7, "en"),
        indiss_slp::Body::SrvReg(indiss_slp::SrvReg {
            entry: indiss_slp::UrlEntry::new("service:printer://10.0.0.9:515", 12),
            service_type: "service:printer".into(),
            scopes: "DEFAULT".into(),
            attrs: "(ppm=12)".into(),
        }),
    );
    socket
        .send_to(&msg.encode().unwrap(), SocketAddrV4::new(SLP_MULTICAST_GROUP, SLP_PORT))
        .unwrap();
    world.run_for(Duration::from_secs(1));

    let registry = indiss.registry();
    let now = world.now();
    assert_eq!(registry.record_count_by_origin(SdpProtocol::Slp, now), 1);
    let record = registry
        .record_by_endpoint("service:printer://10.0.0.9:515", now)
        .expect("indexed by endpoint");
    assert_eq!(record.canonical_type(), "printer");
    assert_eq!(record.attrs(), &[("ppm".to_owned(), "12".to_owned())]);
    // The 12 s registration lifetime is the TTL.
    world.run_for(Duration::from_secs(12));
    assert_eq!(registry.record_count_by_origin(SdpProtocol::Slp, world.now()), 0);
}
