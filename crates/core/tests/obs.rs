//! Observability integration suite: the properties the scrape path
//! depends on (histogram bucketing and merge algebra), the span ring's
//! overwrite-oldest contract under overflow, and the plaintext stats
//! endpoint scraped over a real [`std::net::TcpStream`].
//!
//! The endpoint test skips (with a log line) when the environment
//! forbids binding loopback TCP sockets; everything else always runs.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use indiss_core::{
    bucket_floor, bucket_of, IndissConfig, LatencyHistogram, NetDriver, Phase, SdpProtocol,
    SimClock, StaticDescriptions, Tracer, HIST_BUCKETS,
};
use indiss_net::{Datagram, SimTime, SimTransport, Transport, TransportSocket};
use indiss_upnp::{DeviceDescription, ServiceDescription};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Histogram properties (the scrape merges per-lane histograms in
// whatever order the rings come, so the algebra must be watertight).

fn hist_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &n in samples {
        h.record(n);
    }
    h
}

proptest! {
    /// Every expressible duration lands in exactly one bucket, and that
    /// bucket's bounds really bracket it.
    #[test]
    fn every_duration_lands_in_exactly_one_bucket(nanos in any::<u64>()) {
        let b = bucket_of(nanos);
        prop_assert!(b < HIST_BUCKETS);
        prop_assert!(bucket_floor(b) <= nanos.max(1), "floor below the sample");
        if b + 1 < HIST_BUCKETS {
            prop_assert!(nanos < bucket_floor(b + 1), "sample below the next floor");
        }
        // Exactly one: a histogram with this single sample counts once.
        let h = hist_of(&[nanos]);
        prop_assert_eq!(h.count(), 1);
        prop_assert_eq!(h.counts()[b], 1);
        prop_assert_eq!(h.counts().iter().filter(|&&c| c > 0).count(), 1);
    }

    /// Merging is commutative, associative, lossless, and has the empty
    /// histogram as identity — so lanes can be folded in any order.
    #[test]
    fn merge_is_commutative_associative_and_lossless(
        xs in proptest::collection::vec(any::<u64>(), 0..40),
        ys in proptest::collection::vec(any::<u64>(), 0..40),
        zs in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "commutative");

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "associative");

        let mut with_empty = a.clone();
        with_empty.merge(&LatencyHistogram::new());
        prop_assert_eq!(&with_empty, &a, "empty is the identity");

        // Lossless: the merge of all three is the histogram of the
        // concatenation — no count appears or vanishes.
        let mut all: Vec<u64> = xs.clone();
        all.extend(&ys);
        all.extend(&zs);
        prop_assert_eq!(&ab_c, &hist_of(&all), "merge == concatenation");
        prop_assert_eq!(ab_c.count(), (xs.len() + ys.len() + zs.len()) as u64);
    }

    /// The quantile estimate never undercuts a recorded sample at its
    /// rank: the q=1.0 bound dominates the maximum.
    #[test]
    fn quantile_upper_bound_dominates_the_max(
        samples in proptest::collection::vec(any::<u64>(), 1..40),
    ) {
        let h = hist_of(&samples);
        let max = *samples.iter().max().expect("non-empty");
        prop_assert!(h.quantile_upper_bound(1.0) >= max);
    }
}

// ---------------------------------------------------------------------
// Span-ring overflow: overwrite-oldest, monotone drop counter, and
// survivor ordering.

#[test]
fn ring_overflow_drops_oldest_and_keeps_survivors_ordered() {
    const CAP: usize = 8;
    const TOTAL: u64 = 20;
    let tracer = Tracer::new(CAP, 1, &[], Arc::new(SimClock::new()));
    for i in 0..TOTAL {
        let start = SimTime::from_micros(i * 10);
        tracer.record_at(7, Phase::Deliver, start, start + Duration::from_micros(3));
        // The drop counter moves exactly when the ring wraps, and only
        // forward.
        assert_eq!(tracer.spans_recorded(), i + 1);
        assert_eq!(tracer.spans_dropped(), (i + 1).saturating_sub(CAP as u64));
    }
    let spans = tracer.snapshot();
    assert_eq!(spans.len(), CAP, "exactly one ring of survivors");
    // Survivors are the newest TOTAL-CAP.. spans, still in recording
    // order with their original sequence numbers.
    for (k, span) in spans.iter().enumerate() {
        let expected_seq = TOTAL - CAP as u64 + k as u64;
        assert_eq!(span.seq, expected_seq, "survivor {k}");
        assert_eq!(span.start, SimTime::from_micros(expected_seq * 10));
        assert_eq!(span.lane, 7);
        assert_eq!(span.phase, Phase::Deliver);
    }
    // The exported trace of a wrapped ring is still valid and ordered.
    let json = indiss_core::chrome_trace_json(&spans);
    assert_eq!(indiss_core::validate_chrome_trace(&json), Ok(CAP));
}

// ---------------------------------------------------------------------
// The stats endpoint, scraped over a real TCP connection.

fn clock_description() -> DeviceDescription {
    DeviceDescription {
        device_type: "urn:schemas-upnp-org:device:clock:1".into(),
        friendly_name: "CyberGarage Clock Device".into(),
        manufacturer: "CyberGarage".into(),
        manufacturer_url: "http://www.cybergarage.org".into(),
        model_description: "CyberUPnP Clock Device".into(),
        model_name: "Clock".into(),
        model_number: "1.0".into(),
        model_url: "http://www.cybergarage.org".into(),
        udn: "uuid:ClockDevice".into(),
        services: vec![ServiceDescription::conventional("timer", 1)],
    }
}

fn slp_request(service_type: &str, xid: u16) -> Vec<u8> {
    indiss_slp::Message::new(
        indiss_slp::Header::new(indiss_slp::FunctionId::SrvRqst, xid, "en"),
        indiss_slp::Body::SrvRqst(indiss_slp::SrvRqst {
            prlist: String::new(),
            service_type: service_type.to_owned(),
            scopes: "DEFAULT".into(),
            predicate: String::new(),
            spi: String::new(),
        }),
    )
    .encode()
    .expect("encodable")
}

fn clock_notify(location: &str) -> Vec<u8> {
    indiss_ssdp::Notify {
        nt: indiss_ssdp::SearchTarget::device_urn("clock", 1),
        nts: indiss_ssdp::NotifySubType::Alive,
        usn: "uuid:ClockDevice::urn:schemas-upnp-org:device:clock:1".into(),
        location: Some(location.to_owned()),
        server: "obs-test/1.0".into(),
        max_age: 1800,
    }
    .to_bytes()
}

/// One full HTTP exchange against the stats endpoint: returns the raw
/// head + body split at the blank line.
fn scrape(addr: std::net::SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect stats endpoint");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("send scrape");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read scrape");
    let raw = String::from_utf8(raw).expect("ascii stats page");
    let split = raw.find("\r\n\r\n").expect("header/body separator");
    (raw[..split].to_owned(), raw[split + 4..].to_owned())
}

/// Parses `name value` lines and returns `name`'s value.
fn metric(body: &str, name: &str) -> u64 {
    for l in body.lines() {
        let mut parts = l.split(' ');
        if parts.next() == Some(name) {
            return parts.next().expect("value").parse().expect("numeric value");
        }
    }
    panic!("metric {name} not on the stats page:\n{body}");
}

/// Boots a traced SimTransport gateway with an ephemeral stats port,
/// runs the canonical advert + warm-request script, and asserts the
/// scraped page agrees with the in-process counter structs.
#[test]
fn stats_endpoint_serves_live_counters_over_tcp() {
    let location = "http://10.88.0.2:4004/description.xml";
    let descriptions = Arc::new(StaticDescriptions::new());
    descriptions.insert(location, &clock_description().to_xml());

    let transport: Arc<dyn Transport> = Arc::new(SimTransport::new());
    let config = IndissConfig::slp_upnp().with_trace().with_stats_port(0);
    let driver = match NetDriver::builder(config)
        .transport(Arc::clone(&transport))
        .describe(descriptions)
        .start()
    {
        Ok(d) => d,
        Err(e) => {
            eprintln!("skipping stats_endpoint_serves_live_counters_over_tcp: {e}");
            return;
        }
    };
    let addr = driver.stats_addr().expect("stats endpoint configured");

    // An idle scrape works before any traffic.
    let (head, body) = scrape(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
    assert!(head.contains("text/plain"), "content type: {head}");
    assert_eq!(metric(&body, "indiss_trace_enabled"), 1);
    assert_eq!(metric(&body, "indiss_bridge_cache_hits"), 0);

    // Advert + two warm requests (the canonical transport-seam script).
    let (tx, rx) = mpsc::channel::<Datagram>();
    let client: Arc<dyn TransportSocket> = transport
        .bind_client(Arc::new(move |d: Datagram| {
            let _ = tx.send(d);
        }))
        .expect("client");
    let upnp_addr = driver.channel_addr(SdpProtocol::Upnp).expect("upnp");
    let slp_addr = driver.channel_addr(SdpProtocol::Slp).expect("slp");
    client.send_to(&clock_notify(location), upnp_addr).expect("send NOTIFY");
    let deadline = Instant::now() + Duration::from_secs(3);
    while !driver.registry().contains_type("clock", driver.now()) {
        assert!(Instant::now() < deadline, "advert never recorded");
        std::thread::sleep(Duration::from_millis(5));
    }
    driver.join();
    client.send_to(&slp_request("service:clock", 0x0B01), slp_addr).expect("send request");
    rx.recv_timeout(Duration::from_secs(3)).expect("composed reply");
    client.send_to(&slp_request("service:clock", 0x0B02), slp_addr).expect("send repeat");
    rx.recv_timeout(Duration::from_secs(3)).expect("second reply");
    driver.join();

    // The page agrees with every in-process stats struct it renders.
    let (_, body) = scrape(addr, "/metrics");
    let bridge = driver.stats();
    let front = driver.front_stats();
    let registry = driver.registry().stats();
    assert_eq!(metric(&body, "indiss_bridge_cache_hits"), bridge.cache_hits);
    assert_eq!(bridge.cache_hits, 2, "both warm requests hit");
    assert_eq!(metric(&body, "indiss_bridge_adverts_recorded"), bridge.adverts_recorded);
    assert_eq!(metric(&body, "indiss_netfront_requests_decoded"), front.requests_decoded);
    assert_eq!(metric(&body, "indiss_netfront_replies_sent"), front.replies_sent);
    assert_eq!(metric(&body, "indiss_registry_records_inserted"), registry.records_inserted);
    assert!(metric(&body, "indiss_interner_symbols") > 0);

    // Tracing really observed the pipeline: spans were recorded and the
    // sampled SLP end-to-end histogram is non-empty.
    let tracer = driver.tracer();
    assert_eq!(metric(&body, "indiss_trace_spans_recorded"), tracer.spans_recorded());
    assert!(tracer.spans_recorded() > 0, "the script recorded spans");
    assert!(metric(&body, "indiss_protocol_427_count") >= 1, "sampled SLP e2e histogram");
    assert!(metric(&body, "indiss_phase_decode_count") >= 1, "sampled decode spans");

    // Every line is `indiss_* <u64>` — the page stays machine-parseable.
    for l in body.lines() {
        let mut parts = l.split(' ');
        assert!(parts.next().expect("name").starts_with("indiss_"), "line: {l}");
        parts.next().expect("value").parse::<u64>().expect("numeric value");
        assert!(parts.next().is_none(), "exactly two fields: {l}");
    }

    // Unknown targets get a 404, and the endpoint survives to serve
    // the next scrape.
    let (head, _) = scrape(addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "head: {head}");
    let (head, _) = scrape(addr, "/");
    assert!(head.starts_with("HTTP/1.1 200"), "root alias: {head}");

    driver.shutdown();
    // Shutdown stops the endpoint: a fresh connection must fail.
    assert!(TcpStream::connect(addr).is_err(), "stats endpoint still accepting after shutdown");
}
