//! Transport-seam integration tests: the same scripted traffic through
//! a [`SimTransport`] gateway and a real-socket [`UdpTransport`]
//! gateway must produce byte-identical composed messages, identical
//! registry contents and identical bridge accounting — the wire is an
//! implementation detail behind the seam, not a semantic fork.
//!
//! UDP halves skip (with a log line) when the environment forbids
//! binding loopback sockets; the Sim halves always run.

use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use indiss_core::{
    Event, EventStream, IndissConfig, NetDriver, SdpDescriptor, SdpProtocol, StaticDescriptions,
};
use indiss_net::{
    BatchedTransport, Datagram, SimTransport, Transport, TransportKind, TransportSocket,
    UdpTransport,
};
use indiss_upnp::{DeviceDescription, ServiceDescription};

/// Each UDP test takes a distinct offset block so parallel test threads
/// never collide on a port.
static NEXT_OFFSET: AtomicU16 = AtomicU16::new(22_000);

fn next_offset() -> u16 {
    NEXT_OFFSET.fetch_add(100, Ordering::Relaxed)
}

fn clock_description() -> DeviceDescription {
    DeviceDescription {
        device_type: "urn:schemas-upnp-org:device:clock:1".into(),
        friendly_name: "CyberGarage Clock Device".into(),
        manufacturer: "CyberGarage".into(),
        manufacturer_url: "http://www.cybergarage.org".into(),
        model_description: "CyberUPnP Clock Device".into(),
        model_name: "Clock".into(),
        model_number: "1.0".into(),
        model_url: "http://www.cybergarage.org".into(),
        udn: "uuid:ClockDevice".into(),
        services: vec![ServiceDescription::conventional("timer", 1)],
    }
}

fn slp_request(service_type: &str, xid: u16) -> Vec<u8> {
    indiss_slp::Message::new(
        indiss_slp::Header::new(indiss_slp::FunctionId::SrvRqst, xid, "en"),
        indiss_slp::Body::SrvRqst(indiss_slp::SrvRqst {
            prlist: String::new(),
            service_type: service_type.to_owned(),
            scopes: "DEFAULT".into(),
            predicate: String::new(),
            spi: String::new(),
        }),
    )
    .encode()
    .expect("encodable")
}

fn clock_notify(location: &str) -> Vec<u8> {
    indiss_ssdp::Notify {
        nt: indiss_ssdp::SearchTarget::device_urn("clock", 1),
        nts: indiss_ssdp::NotifySubType::Alive,
        usn: "uuid:ClockDevice::urn:schemas-upnp-org:device:clock:1".into(),
        location: Some(location.to_owned()),
        server: "seam-test/1.0".into(),
        max_age: 1800,
    }
    .to_bytes()
}

/// What one scripted run produced: everything the parity assertion
/// compares (no timing, no addresses — semantics only).
#[derive(Debug, PartialEq)]
struct ScriptOutcome {
    reply_payloads: Vec<Vec<u8>>,
    record_count: usize,
    has_clock: bool,
    cache_hits: u64,
    responses_composed: u64,
    adverts_recorded: u64,
    negative_hits: u64,
    requests_suppressed: u64,
}

/// Boots a gateway on `transport`, replays the canonical script — a
/// real UPnP NOTIFY advert (description via a canned fetcher, identical
/// in both runs), a warm SLP request, a repeat inside the suppression
/// window, and a request for an absent type — and collects the
/// composed wire bytes plus the registry/bridge state.
fn run_script(transport: Arc<dyn Transport>) -> ScriptOutcome {
    let location = "http://10.88.0.2:4004/description.xml";
    let descriptions = Arc::new(StaticDescriptions::new());
    descriptions.insert(location, &clock_description().to_xml());

    let driver = NetDriver::builder(IndissConfig::slp_upnp())
        .transport(Arc::clone(&transport))
        .describe(descriptions)
        .start()
        .expect("driver");

    let (tx, rx) = mpsc::channel::<Datagram>();
    let client: Arc<dyn TransportSocket> = transport
        .bind_client(Arc::new(move |d: Datagram| {
            let _ = tx.send(d);
        }))
        .expect("client");
    let upnp_addr = driver.channel_addr(SdpProtocol::Upnp).expect("upnp");
    let slp_addr = driver.channel_addr(SdpProtocol::Slp).expect("slp");

    // 1. The device advertises; wait until the gateway recorded it
    //    (the UDP run crosses real recv threads, so poll).
    client.send_to(&clock_notify(location), upnp_addr).expect("send NOTIFY");
    let deadline = Instant::now() + Duration::from_secs(3);
    while !driver.registry().contains_type("clock", driver.now()) {
        assert!(Instant::now() < deadline, "advert never recorded");
        std::thread::sleep(Duration::from_millis(5));
    }
    driver.join();

    // 2. A warm SLP request: answered on the wire.
    client.send_to(&slp_request("service:clock", 0x0AA0), slp_addr).expect("send request");
    let first_reply = rx.recv_timeout(Duration::from_secs(3)).expect("composed reply");

    // 3. The identical request again: cache hit again (cache beats the
    //    suppression window, as in the simulation).
    client.send_to(&slp_request("service:clock", 0x0AA1), slp_addr).expect("send repeat");
    let second_reply = rx.recv_timeout(Duration::from_secs(3)).expect("second reply");

    // 4. An absent type: fans nowhere, arms suppression, stays silent.
    client.send_to(&slp_request("service:toaster", 0x0AA2), slp_addr).expect("send absent");
    driver.join();
    // Give a stray (incorrect) reply a moment to surface in UDP mode.
    assert!(rx.recv_timeout(Duration::from_millis(100)).is_err(), "absent type must be silence");

    let stats = driver.stats();
    let registry = driver.registry();
    let outcome = ScriptOutcome {
        reply_payloads: vec![first_reply.payload, second_reply.payload],
        record_count: registry.record_count(),
        has_clock: registry.contains_type("clock", driver.now()),
        cache_hits: stats.cache_hits,
        responses_composed: stats.responses_composed,
        adverts_recorded: stats.adverts_recorded,
        negative_hits: stats.negative_hits,
        requests_suppressed: stats.requests_suppressed,
    };
    driver.shutdown();
    outcome
}

/// The headline seam test: one script, two transports, byte-identical
/// composed messages and identical state.
#[test]
fn sim_and_udp_runs_are_byte_identical() {
    let sim = run_script(Arc::new(SimTransport::new()));

    // Sanity on the sim run itself before comparing.
    assert_eq!(sim.reply_payloads.len(), 2);
    let msg = indiss_slp::Message::decode(&sim.reply_payloads[0]).expect("valid SrvRply");
    match msg.body {
        indiss_slp::Body::SrvRply(rply) => assert_eq!(
            rply.urls[0].url, "service:clock:soap://10.88.0.2:4004/service/timer/control",
            "description-fetched control endpoint, Fig. 4 URL mapping"
        ),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(sim.cache_hits, 2);
    assert_eq!(sim.responses_composed, 2);
    assert_eq!(sim.adverts_recorded, 1);
    assert!(sim.has_clock);

    let transport = UdpTransport::with_offset(next_offset());
    // Probe whether this environment allows loopback sockets at all.
    if transport.bind_client(Arc::new(|_| {})).is_err() {
        eprintln!("skipping UDP half of sim_and_udp_runs_are_byte_identical: no loopback sockets");
        return;
    }
    let udp = run_script(Arc::new(transport));

    // The XIDs differ per message but are identical across runs, so the
    // composed payloads must match byte for byte.
    assert_eq!(sim, udp, "transport seam leaked into semantics");
}

/// The same parity bar for the batched I/O engine: substituting
/// [`BatchedTransport`] (reactor + `recvmmsg`/`sendmmsg` where
/// available, portable thread-per-channel fallback under
/// `--no-default-features`) under the same script must change
/// *nothing* observable — byte-identical composed messages, identical
/// registry and bridge state — while its counters prove the selected
/// engine actually carried the traffic.
#[test]
fn batched_transport_run_is_byte_identical_too() {
    let sim = run_script(Arc::new(SimTransport::new()));

    let transport = Arc::new(BatchedTransport::with_offset(next_offset()));
    if transport.bind_client(Arc::new(|_| {})).is_err() {
        eprintln!("skipping batched_transport_run_is_byte_identical_too: no loopback sockets");
        return;
    }
    let batched = run_script(Arc::clone(&transport) as Arc<dyn Transport>);
    assert_eq!(sim, batched, "batched engine leaked into semantics");

    // The engine's own counters (surfaced through the same seam as
    // NetFrontStats). The `io_stats()` surface is identical in both
    // builds; which counters move tells us which engine ran.
    let io = transport.io_stats().expect("batched transport has IO stats");
    assert!(io.reactor_wakeups >= 1, "no engine wakeups recorded: {io:?}");
    assert!(io.recv_batches() >= 3, "script traffic should span ≥3 recv batches: {io:?}");
    assert!(io.batch_sends_flushed >= 2, "two replies ⇒ ≥2 batch flushes: {io:?}");
    assert_eq!(io.faults.total(), 0, "no fault injector in the parity script: {io:?}");
    // The portable fallback delivers strictly singleton batches, so any
    // entry in a larger histogram bucket means the feature gate leaked
    // native batching into the `--no-default-features` build.
    #[cfg(not(feature = "epoll"))]
    assert_eq!(
        io.recv_batch_hist[1..],
        [0, 0, 0],
        "fallback receives one datagram at a time: {io:?}"
    );
}

/// Passive port-detection of a *descriptor* protocol from live packets
/// (paper Fig. 4/5): the lazy gateway activates the protocol's pipeline
/// on first real traffic and serves its native answer line.
#[test]
fn descriptor_protocol_detected_and_served_on_real_sockets() {
    let descriptor = SdpDescriptor::dns_sd();
    let transport = UdpTransport::with_offset(next_offset());
    let config = IndissConfig::builder()
        .slp()
        .descriptor(descriptor.clone())
        .lazy()
        .transport(TransportKind::Udp)
        .build();
    let driver = match NetDriver::builder(config).transport(Arc::new(transport)).start() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("skipping descriptor_protocol_detected_and_served_on_real_sockets: {e}");
            return;
        }
    };
    driver.registry().warm(
        "scanner",
        EventStream::framed(vec![
            Event::ServiceResponse,
            Event::ResOk,
            Event::ServiceType("scanner".into()),
            Event::ResTtl(120),
            Event::ResServUrl("scan://10.0.4.1:6566/sane".into()),
        ]),
        driver.now(),
    );
    assert!(driver.active_units().is_empty(), "lazy: nothing active before traffic");

    let transport = driver.transport();
    let (tx, rx) = mpsc::channel::<Datagram>();
    let client = transport
        .bind_client(Arc::new(move |d: Datagram| {
            let _ = tx.send(d);
        }))
        .expect("client");
    let addr = driver.channel_addr(descriptor.protocol()).expect("channel");
    client.send_to(b"DNSSD Q PTR _scanner._tcp.local", addr).expect("send");

    let reply = rx.recv_timeout(Duration::from_secs(3)).expect("native answer on the wire");
    assert_eq!(
        String::from_utf8(reply.payload).expect("utf8"),
        "DNSSD A PTR _scanner._tcp.local SRV scan://10.0.4.1:6566/sane TTL 120"
    );
    assert_eq!(driver.detected(), vec![descriptor.protocol()], "port-based detection");
    assert_eq!(driver.active_units(), vec![descriptor.protocol()], "Fig. 5 activation");
    driver.shutdown();
}

/// The negative cache absorbs an absent-type storm on the wire exactly
/// as in the simulation: one cold miss, then negative hits, no replies.
#[test]
fn absent_type_storm_is_absorbed_on_the_wire() {
    let driver = NetDriver::builder(
        IndissConfig::builder()
            .slp()
            .negative_ttl(Duration::from_secs(600))
            .suppress_window(Duration::from_millis(0))
            .build(),
    )
    .start()
    .expect("driver");
    let transport = driver.transport();
    let (tx, rx) = mpsc::channel::<Datagram>();
    let client = transport
        .bind_client(Arc::new(move |d: Datagram| {
            let _ = tx.send(d);
        }))
        .expect("client");
    let slp_addr = driver.channel_addr(SdpProtocol::Slp).expect("slp");

    // The wire front cannot fan out, so it arms the negative memory the
    // way a completed empty fan-out would in the runtime: via the
    // registry, which the storm then hits.
    client.send_to(&slp_request("service:toaster", 1), slp_addr).expect("send");
    driver.join();
    assert_eq!(driver.front_stats().cold_misses, 1);
    driver.registry().warm_negative(SdpProtocol::Slp, "toaster", driver.now());

    for xid in 2..7u16 {
        client.send_to(&slp_request("service:toaster", xid), slp_addr).expect("send");
    }
    driver.join();
    let stats = driver.stats();
    assert_eq!(stats.negative_hits, 5, "storm absorbed: {stats:?}");
    assert_eq!(driver.front_stats().cold_misses, 1, "no further fan-out candidates");
    assert!(rx.try_recv().is_err(), "absent types answered with silence");
    driver.shutdown();
}
