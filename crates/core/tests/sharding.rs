//! Properties of the sharded registry and the multi-threaded runtime:
//!
//! * handles are `Send + Sync` (compile-time assertions — the contract
//!   the worker pool builds on);
//! * records always live on the shard their canonical type hashes to;
//! * TTL semantics (record expiry, cache expiry, negative expiry) are
//!   identical at `shards = 1` and `shards = 8` — sharding moves state
//!   between locks, never changes what the registry answers;
//! * concurrent register/lookup/expire from multiple OS threads loses no
//!   updates: the merged `RegistryStats` totals account for every
//!   operation.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use indiss_core::{
    Event, EventStream, GatewayCore, ProtocolId, RegistryConfig, RegistryStats, SdpProtocol,
    ServiceRecord, ServiceRegistry, Symbol, ThreadedGateway, WarmDecision, WorkerPool,
};
use indiss_net::SimTime;

/// The compile-time contract: everything the multi-threaded runtime
/// moves across threads really is `Send + Sync`.
#[test]
fn runtime_handles_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServiceRegistry>();
    assert_send_sync::<ServiceRecord>();
    assert_send_sync::<RegistryStats>();
    assert_send_sync::<EventStream>();
    assert_send_sync::<Event>();
    assert_send_sync::<Symbol>();
    assert_send_sync::<SdpProtocol>();
    assert_send_sync::<ProtocolId>();
    assert_send_sync::<ThreadedGateway>();
    assert_send_sync::<GatewayCore>();
    assert_send_sync::<WorkerPool>();
    assert_send_sync::<WarmDecision>();
}

fn alive(ty: &str, url: &str, ttl: Option<u32>) -> EventStream {
    let mut body =
        vec![Event::ServiceAlive, Event::ServiceType(ty.into()), Event::ResServUrl(url.into())];
    if let Some(t) = ttl {
        body.push(Event::ResTtl(t));
    }
    EventStream::framed(body)
}

fn response(ty: &str) -> EventStream {
    EventStream::framed(vec![
        Event::ServiceResponse,
        Event::ResOk,
        Event::ServiceType(ty.into()),
        Event::ResServUrl(format!("soap://host/{ty}")),
    ])
}

fn sharded(shards: usize) -> ServiceRegistry {
    ServiceRegistry::new(RegistryConfig {
        shards,
        negative_ttl: Duration::from_secs(2),
        cache_ttl: Duration::from_secs(30),
        // Large enough that the concurrent-churn test (8 threads × 64
        // types, each warming cache + negative entries) never triggers
        // LRU eviction: an eviction of a sibling thread's just-warmed
        // entry is legal registry behavior, but it would make the
        // exact-count assertions racy.
        cache_capacity: 4096,
        ..RegistryConfig::default()
    })
}

proptest! {
    /// (a) A record is always found on — and only on — the shard its
    /// canonical type hashes to, and the per-shard counts always sum to
    /// the aggregate.
    #[test]
    fn records_land_on_their_types_shard(
        types in proptest::collection::vec("[a-z][a-z0-9-]{0,14}", 1..40),
    ) {
        let reg = sharded(8);
        let t = SimTime::ZERO;
        for (i, ty) in types.iter().enumerate() {
            reg.record_advert(SdpProtocol::Slp, &alive(ty, &format!("u://{i}"), None), t);
        }
        for ty in &types {
            let home = reg.shard_of(ty.as_str());
            prop_assert!(home < reg.shard_count());
            prop_assert!(reg.contains_type(ty.as_str(), t));
            prop_assert!(
                reg.shard_record_count(home) >= 1,
                "type {ty} must be stored on shard {home}"
            );
            // The record is reachable through its type, and the shard
            // the router names really is where the count lives: remove
            // it and that shard (alone) shrinks.
            let before: Vec<usize> =
                (0..reg.shard_count()).map(|i| reg.shard_record_count(i)).collect();
            reg.record_advert(
                SdpProtocol::Slp,
                &EventStream::framed(vec![
                    Event::ServiceByeBye,
                    Event::ServiceType(ty.as_str().into()),
                    Event::ResServUrl(format!("u://{}", types.iter().position(|x| x == ty).unwrap())),
                ]),
                t,
            );
            let after: Vec<usize> =
                (0..reg.shard_count()).map(|i| reg.shard_record_count(i)).collect();
            for i in 0..reg.shard_count() {
                if i == home {
                    prop_assert!(after[i] <= before[i], "home shard shrank or stayed");
                } else {
                    prop_assert_eq!(after[i], before[i], "other shards untouched");
                }
            }
            // Re-insert so later iterations still find duplicate types.
            reg.record_advert(
                SdpProtocol::Slp,
                &alive(ty, &format!("u://{}", types.iter().position(|x| x == ty).unwrap()), None),
                t,
            );
        }
        let total: usize = (0..reg.shard_count()).map(|i| reg.shard_record_count(i)).sum();
        prop_assert_eq!(total, reg.record_count());
    }

    /// (b) Expiry, cache-TTL and negative-TTL semantics are identical at
    /// `shards = 1` and `shards = 8`: the same operation sequence gives
    /// the same answers at every probed instant.
    #[test]
    fn ttl_semantics_identical_across_shard_counts(
        types in proptest::collection::vec("[a-z][a-z0-9-]{0,10}", 1..16),
        ttl in 1u32..40,
        probe_s in 0u64..60,
    ) {
        let one = sharded(1);
        let eight = sharded(8);
        let t0 = SimTime::ZERO;
        for (i, ty) in types.iter().enumerate() {
            for reg in [&one, &eight] {
                reg.record_advert(
                    SdpProtocol::Slp,
                    &alive(ty, &format!("u://{i}"), Some(ttl)),
                    t0,
                );
                reg.warm(ty.as_str(), response(ty), t0);
                reg.warm_negative(SdpProtocol::Upnp, format!("absent-{ty}").as_str(), t0);
            }
        }
        let probe = SimTime::from_secs(probe_s);
        for ty in &types {
            prop_assert_eq!(
                one.contains_type(ty.as_str(), probe),
                eight.contains_type(ty.as_str(), probe),
                "record TTL visibility must not depend on shard count"
            );
            prop_assert_eq!(
                one.cache_contains(ty.as_str(), probe),
                eight.cache_contains(ty.as_str(), probe),
                "cache TTL visibility must not depend on shard count"
            );
            let absent = format!("absent-{ty}");
            prop_assert_eq!(
                one.cached_negative(SdpProtocol::Upnp, absent.as_str(), probe),
                eight.cached_negative(SdpProtocol::Upnp, absent.as_str(), probe),
                "negative TTL visibility must not depend on shard count"
            );
        }
        // Sweeping reclaims the same populations.
        let r1 = one.sweep(probe);
        let r8 = eight.sweep(probe);
        prop_assert_eq!(r1, r8, "sweep reports identical at 1 vs 8 shards");
        prop_assert_eq!(one.record_count(), eight.record_count());
        prop_assert_eq!(one.negative_len(), eight.negative_len());
    }
}

/// (c) Concurrent register/lookup/expire from multiple OS threads keeps
/// the merged `BridgeStats`-feeding totals consistent: every insert,
/// removal, hit and negative store is accounted for — no lost updates
/// behind the shard locks.
#[test]
fn concurrent_churn_loses_no_stat_updates() {
    const THREADS: usize = 8;
    const TYPES_PER_THREAD: usize = 64;
    let reg = Arc::new(sharded(8));
    let mut handles = Vec::new();
    for thread in 0..THREADS {
        let reg = Arc::clone(&reg);
        handles.push(std::thread::spawn(move || {
            let t0 = SimTime::ZERO;
            // Below every TTL in play (negative entries expire at 2 s):
            // concurrent sweeps must interleave with inserts and reads
            // without reclaiming entries other threads still assert on —
            // a sweep past a TTL would legitimately race them away.
            let sweep_at = SimTime::from_secs(1);
            for i in 0..TYPES_PER_THREAD {
                let ty = format!("churn-{thread}-{i}");
                // Insert (counts records_inserted), refresh (records_refreshed),
                // warm + hit (cache_hits), negative store + hit, byebye
                // (records_removed).
                reg.record_advert(
                    SdpProtocol::Slp,
                    &alive(&ty, &format!("u://{thread}/{i}"), Some(3600)),
                    t0,
                );
                reg.record_advert(
                    SdpProtocol::Slp,
                    &alive(&ty, &format!("u://{thread}/{i}"), Some(3600)),
                    t0,
                );
                assert!(reg.contains_type(ty.as_str(), t0));
                reg.warm(ty.as_str(), response(&ty), t0);
                assert!(reg.cached_response(ty.as_str(), t0).is_some());
                let absent = format!("absent-{thread}-{i}");
                reg.warm_negative(SdpProtocol::Upnp, absent.as_str(), t0);
                assert!(reg.cached_negative(SdpProtocol::Upnp, absent.as_str(), t0));
                reg.record_advert(
                    SdpProtocol::Slp,
                    &EventStream::framed(vec![
                        Event::ServiceByeBye,
                        Event::ServiceType(ty.as_str().into()),
                        Event::ResServUrl(format!("u://{thread}/{i}")),
                    ]),
                    t0,
                );
                // Interleave sweeps from every thread (nothing is due
                // yet; the deterministic expiry pass happens after the
                // join).
                reg.sweep(sweep_at);
            }
        }));
    }
    for h in handles {
        h.join().expect("churn thread");
    }
    let total = (THREADS * TYPES_PER_THREAD) as u64;
    let stats = reg.stats();
    assert_eq!(stats.records_inserted, total, "every insert counted: {stats:?}");
    assert_eq!(stats.records_refreshed, total, "every refresh counted: {stats:?}");
    assert_eq!(stats.records_removed, total, "every byebye counted: {stats:?}");
    assert_eq!(stats.cache_hits, total, "every cache hit counted: {stats:?}");
    assert_eq!(stats.negative_stored, total, "every negative store counted: {stats:?}");
    assert_eq!(stats.negative_hits, total, "every negative hit counted: {stats:?}");
    assert_eq!(reg.record_count(), 0, "every record removed again");
    let per_shard: usize = (0..reg.shard_count()).map(|i| reg.shard_record_count(i)).sum();
    assert_eq!(per_shard, 0);
    // The deadlines every thread armed on its shard's wheel are intact:
    // one expiry sweep past the negative TTL reclaims exactly the
    // surviving negative entries.
    assert_eq!(reg.negative_len(), total as usize, "all negative entries still pending");
    let report = reg.sweep(SimTime::from_secs(10));
    assert_eq!(report.negative_expired, total, "every armed deadline fired once: {report:?}");
    assert_eq!(reg.negative_len(), 0);
}

/// The same sharded registry behind a `ThreadedGateway`: concurrent
/// classification across workers answers every warm request and counts
/// every hit exactly once.
#[test]
fn threaded_gateway_counts_are_exact_under_concurrency() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let gw = ThreadedGateway::new(
        RegistryConfig {
            shards: 8,
            cache_ttl: Duration::from_secs(3600),
            ..RegistryConfig::default()
        },
        4,
    );
    let now = SimTime::from_secs(1);
    let types: Vec<String> = (0..32).map(|i| format!("gwtype-{i}")).collect();
    for ty in &types {
        gw.registry().warm(ty.as_str(), response(ty), SimTime::ZERO);
    }
    let hits = Arc::new(AtomicU64::new(0));
    const ROUNDS: u64 = 25;
    for _ in 0..ROUNDS {
        for ty in &types {
            let hits = Arc::clone(&hits);
            let request = EventStream::framed(vec![
                Event::ServiceRequest,
                Event::ServiceType(ty.as_str().into()),
            ]);
            gw.submit(SdpProtocol::Slp, request, now, move |decision| {
                if matches!(decision, WarmDecision::CacheHit(_)) {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    }
    gw.join();
    let expected = ROUNDS * types.len() as u64;
    assert_eq!(hits.load(Ordering::Relaxed), expected);
    let stats = gw.stats();
    assert_eq!(stats.cache_hits, expected, "per-shard counters merged without loss: {stats:?}");
    assert_eq!(stats.requests_bridged, expected, "cache hits count as bridged requests");
}

fn versioned_response(ty: &str, version: u32) -> EventStream {
    EventStream::framed(vec![
        Event::ServiceResponse,
        Event::ResOk,
        Event::ServiceType(ty.into()),
        Event::ResServUrl(format!("soap://host/{ty}/v{version}")),
    ])
}

fn request(ty: &str) -> EventStream {
    EventStream::framed(vec![Event::ServiceRequest, Event::ServiceType(ty.into())])
}

/// Extracts the `v{n}` version a [`versioned_response`] carried, after
/// asserting the stream is well-formed for `ty` — a torn snapshot read
/// would surface here as a mismatched type or a mangled URL.
fn response_version(ty: &str, stream: &EventStream) -> u32 {
    let url = stream
        .events()
        .iter()
        .find_map(|e| match e {
            Event::ResServUrl(url) => Some(url.clone()),
            _ => None,
        })
        .expect("cache hit carries a service URL");
    let prefix = format!("soap://host/{ty}/v");
    let version = url
        .strip_prefix(&prefix)
        .unwrap_or_else(|| panic!("URL {url} is not a version of type {ty}"));
    version.parse().unwrap_or_else(|_| panic!("URL {url} carries a malformed version"))
}

proptest! {
    /// (d) The epoch-snapshot fast path is linear with the writes: after
    /// every warm, a read through the warm path (which serves the
    /// epoch-published snapshot when it can) observes exactly the
    /// post-write state — the freshly written version, never a stale or
    /// torn one — and a 4-shard registry answers byte-identically to an
    /// unsharded one across the whole interleaving, with identical
    /// merged stats (the fast-hit counters fold in without loss).
    #[test]
    fn epoch_snapshot_reads_observe_pre_or_post_write_state(
        ops in proptest::collection::vec((0usize..6, 1u32..50), 1..60),
    ) {
        let one = ThreadedGateway::new(
            RegistryConfig { shards: 1, cache_ttl: Duration::from_secs(3600), ..RegistryConfig::default() },
            1,
        );
        let four = ThreadedGateway::new(
            RegistryConfig { shards: 4, cache_ttl: Duration::from_secs(3600), ..RegistryConfig::default() },
            1,
        );
        let t = SimTime::from_secs(1);
        let mut latest: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
        for (ty_idx, version) in ops {
            let ty = format!("epoch-{ty_idx}");
            one.registry().warm(ty.as_str(), versioned_response(&ty, version), t);
            four.registry().warm(ty.as_str(), versioned_response(&ty, version), t);
            latest.insert(ty_idx, version);
            // Read back *every* warmed type, on both registries: repeat
            // reads of unchanged types exercise the thread-local epoch
            // cache (same epoch ⇒ zero-lock hit), the just-written type
            // exercises the refresh path.
            for (idx, expect) in &latest {
                let ty = format!("epoch-{idx}");
                for gw in [&one, &four] {
                    match gw.classify_now(SdpProtocol::Slp, &request(&ty), t) {
                        WarmDecision::CacheHit(stream) => {
                            prop_assert_eq!(response_version(&ty, &stream), *expect);
                        }
                        other => prop_assert!(false, "warm type must hit the cache, got {:?}", other),
                    }
                }
            }
        }
        // Sharding (and the fast path's per-shard hit counters) must not
        // change the merged accounting.
        let s1 = one.stats();
        let s4 = four.stats();
        prop_assert_eq!(s1.cache_hits, s4.cache_hits);
        prop_assert_eq!(s1.requests_bridged, s4.requests_bridged);
        prop_assert_eq!(s1.cache_misses, s4.cache_misses);
    }
}

/// (e) Multi-thread churn over the epoch fast path: writers republish
/// versioned responses while readers classify concurrently. Every
/// observed hit must be a *complete* published version (never torn),
/// versions must be monotonic per reader (snapshots only move forward),
/// and the merged stats — locked-path counters plus the fast-hit
/// atomics — must account for exactly the decisions the readers saw,
/// the same bookkeeping contract `shards = 1` has always pinned.
#[test]
fn concurrent_epoch_churn_is_monotonic_with_exact_merged_stats() {
    use std::sync::atomic::{AtomicBool, Ordering};

    const TYPES: usize = 8;
    const VERSIONS: u32 = 300;
    const READERS: usize = 3;
    let gw = Arc::new(ThreadedGateway::new(
        RegistryConfig {
            shards: 8,
            cache_ttl: Duration::from_secs(3600),
            ..RegistryConfig::default()
        },
        1,
    ));
    let t = SimTime::from_secs(1);
    let done = Arc::new(AtomicBool::new(false));

    let mut writers = Vec::new();
    for w in 0..2 {
        let gw = Arc::clone(&gw);
        writers.push(std::thread::spawn(move || {
            let reg = gw.registry();
            for version in 1..=VERSIONS {
                for ty_idx in (w..TYPES).step_by(2) {
                    let ty = format!("churn-epoch-{ty_idx}");
                    reg.warm(ty.as_str(), versioned_response(&ty, version), t);
                }
            }
        }));
    }

    // Readers tally their own decisions so the merged stats can be
    // checked for exactness afterwards.
    #[derive(Default)]
    struct Seen {
        hits: u64,
        bridged: u64,
        suppressed: u64,
    }
    let mut readers = Vec::new();
    for _ in 0..READERS {
        let gw = Arc::clone(&gw);
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            let core = gw.core();
            let mut seen = Seen::default();
            let mut floor = [0u32; TYPES];
            loop {
                let finished = done.load(Ordering::Acquire);
                for (ty_idx, floor) in floor.iter_mut().enumerate() {
                    let ty = format!("churn-epoch-{ty_idx}");
                    match core.classify(SdpProtocol::Slp, &request(&ty), t) {
                        WarmDecision::CacheHit(stream) => {
                            let v = response_version(&ty, &stream);
                            assert!(
                                v >= *floor,
                                "snapshot went backwards on {ty}: {v} after {floor}"
                            );
                            assert!(v <= VERSIONS, "unwritten version observed");
                            *floor = v;
                            seen.hits += 1;
                            seen.bridged += 1; // cache hits count as bridged
                        }
                        WarmDecision::Bridge => seen.bridged += 1,
                        WarmDecision::Suppressed => seen.suppressed += 1,
                        WarmDecision::NegativeHit => panic!("no negative entries in play"),
                    }
                }
                if finished {
                    // One full post-join pass ran: every type must now
                    // read at its final published version.
                    for (ty_idx, floor) in floor.iter().enumerate() {
                        assert_eq!(
                            *floor, VERSIONS,
                            "churn-epoch-{ty_idx} must settle at the last write"
                        );
                    }
                    return seen;
                }
            }
        }));
    }

    for w in writers {
        w.join().expect("writer thread");
    }
    done.store(true, Ordering::Release);
    let mut hits = 0u64;
    let mut bridged = 0u64;
    let mut suppressed = 0u64;
    for r in readers {
        let seen = r.join().expect("reader thread");
        hits += seen.hits;
        bridged += seen.bridged;
        suppressed += seen.suppressed;
    }
    assert!(hits > 0, "readers observed warm traffic");
    let stats = gw.stats();
    assert_eq!(stats.cache_hits, hits, "every fast/locked hit counted exactly once: {stats:?}");
    assert_eq!(stats.requests_bridged, bridged, "bridged accounting exact: {stats:?}");
    assert_eq!(stats.requests_suppressed, suppressed, "suppression accounting exact: {stats:?}");
}

/// Satellite audit for the UDP front-end: `Symbol::collect()` (and the
/// amortized watermark sweep) must be safe against recv threads
/// interning concurrently. The invariant under audit: an entry is only
/// reclaimed when the interner holds the last reference, and every
/// intern happens under its shard lock — so a symbol a thread holds (or
/// is in the middle of creating) can never be swept out from under it,
/// and canonical identity (equal contents ⇒ pointer-identical symbols)
/// holds at every instant. This test runs a recv-thread-shaped interner
/// workload against a `collect()` loop and checks the invariant the
/// whole way; a regression (sweeping by content instead of refcount,
/// interning outside the lock) deadlocks, panics or fails the identity
/// assertions here.
#[test]
fn interner_collect_races_with_recv_thread_interning() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let stop = Arc::new(AtomicBool::new(false));
    let progress = Arc::new(AtomicU64::new(0));
    let mut threads = Vec::new();
    for t in 0..3 {
        let stop = Arc::clone(&stop);
        let progress = Arc::clone(&progress);
        threads.push(std::thread::spawn(move || {
            // A pinned symbol this thread keeps alive across sweeps.
            let pinned = Symbol::intern(&format!("race-pinned-{t}"));
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Network-derived churn: mostly-fresh strings, like USNs
                // under device churn on a real socket.
                let fresh = Symbol::intern(&format!("race-fresh-{t}-{round}"));
                assert_eq!(fresh, format!("race-fresh-{t}-{round}").as_str());
                // Canonical identity while a sweep may be running: a
                // re-intern of a live symbol is pointer-identical.
                let again = Symbol::intern(&format!("race-pinned-{t}"));
                assert_eq!(pinned, again, "identity broken during concurrent collect");
                assert!(
                    std::ptr::eq(pinned.as_str(), again.as_str()),
                    "two live symbols for equal contents must share one allocation"
                );
                round += 1;
                progress.fetch_add(1, Ordering::Relaxed);
            }
            round
        }));
    }
    // The sweeper: hammer explicit collections until the interning
    // threads have demonstrably raced them through many rounds (gating
    // on progress, not a fixed iteration count, keeps the test
    // meaningful — and not flaky — under arbitrary CI scheduling).
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while progress.load(Ordering::Relaxed) < 300 && std::time::Instant::now() < deadline {
        Symbol::collect();
    }
    stop.store(true, Ordering::Relaxed);
    let rounds: u64 = threads.into_iter().map(|t| t.join().expect("interner thread")).sum();
    assert!(rounds > 0, "interning threads made progress");
    // All churned symbols are dead now; whatever the watermark auto-GC
    // did not already reclaim, an explicit sweep can — and the table
    // stays coherent afterwards.
    Symbol::collect();
    let survivor = Symbol::intern("race-pinned-0");
    assert_eq!(survivor, "race-pinned-0");
}
