//! Criterion benches over the §4.3 scenarios.
//!
//! These measure the *harness* wall-clock (how fast the deterministic
//! simulation executes each scenario); the paper-comparable virtual-time
//! medians come from the `fig7`/`fig8`/`fig9` binaries. Keeping both lets
//! regressions in either the simulator's performance or the scenarios'
//! structure show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use indiss_bench::scenarios::{bridged, native_slp, native_upnp, Deployment, Direction};

fn bench_native(c: &mut Criterion) {
    let mut group = c.benchmark_group("native");
    group.sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("slp_discovery", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(native_slp(seed)).expect("slp answers")
        })
    });
    group.bench_function("upnp_discovery", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(native_upnp(seed)).expect("upnp answers")
        })
    });
    group.finish();
}

fn bench_bridged(c: &mut Criterion) {
    let mut group = c.benchmark_group("bridged");
    group.sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    for deployment in [Deployment::ClientSide, Deployment::ServiceSide, Deployment::Gateway] {
        group.bench_with_input(
            BenchmarkId::new("slp_to_upnp", format!("{deployment:?}")),
            &deployment,
            |b, &deployment| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(bridged(seed, deployment, Direction::SlpToUpnp, false))
                        .expect("bridged answer")
                })
            },
        );
    }
    group.bench_function("upnp_to_slp_warm", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(bridged(seed, Deployment::ClientSide, Direction::UpnpToSlp, true))
                .expect("warm answer")
        })
    });
    group.finish();
}

fn bench_workload_scaling(c: &mut Criterion) {
    // How the simulator scales with fleet size (ablation for the
    // evaluation harness itself).
    let mut group = c.benchmark_group("workload");
    group.sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    for services in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("slp_fanout", services),
            &services,
            |b, &services| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let n = indiss_bench::scenarios::smoke_workload(seed, services);
                    assert_eq!(n, services);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_native, bench_bridged, bench_workload_scaling);
criterion_main!(benches);
