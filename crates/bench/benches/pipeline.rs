//! Criterion microbenches of the event-translation pipeline — the
//! wall-clock cost of INDISS's own machinery (parse → events → compose),
//! isolated from simulated network time.
//!
//! This quantifies the paper's lightweightness claim: the event layer
//! must be cheap next to protocol processing. The `raw_forward` baseline
//! (decode + re-encode without the event layer) is the ablation for the
//! event-based architecture's overhead.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use indiss_core::{
    Event, EventStream, JiniUnit, JiniUnitConfig, ParsedMessage, RegistryConfig, ServiceRegistry,
    SlpUnit, SlpUnitConfig, Unit, UpnpUnit, UpnpUnitConfig,
};
use indiss_net::{Datagram, World};
use indiss_slp::{Body, Header, Message, SrvRqst};
use indiss_ssdp::{MSearch, SearchTarget};

fn slp_request_datagram() -> Datagram {
    let msg = Message::new(
        Header::new(indiss_slp::FunctionId::SrvRqst, 7, "en"),
        Body::SrvRqst(SrvRqst {
            prlist: String::new(),
            service_type: "service:clock".into(),
            scopes: "DEFAULT".into(),
            predicate: "(location=home)".into(),
            spi: String::new(),
        }),
    );
    Datagram {
        src: "10.0.0.9:40000".parse().unwrap(),
        dst: "239.255.255.253:427".parse().unwrap(),
        payload: msg.encode().unwrap(),
    }
}

fn msearch_datagram() -> Datagram {
    Datagram {
        src: "10.0.0.9:40001".parse().unwrap(),
        dst: "239.255.255.250:1900".parse().unwrap(),
        payload: MSearch::new(SearchTarget::device_urn("clock", 1), 0).to_bytes(),
    }
}

fn bench_parse_to_events(c: &mut Criterion) {
    let world = World::new(1);
    let node = world.add_node("indiss");
    let slp_unit = SlpUnit::new(&node, SlpUnitConfig::default()).unwrap();
    let upnp_unit = UpnpUnit::new(&node, UpnpUnitConfig::default()).unwrap();
    let slp_dgram = slp_request_datagram();
    let ssdp_dgram = msearch_datagram();

    c.bench_function("slp_parse_to_events", |b| {
        b.iter(|| {
            let parsed = slp_unit.parse(&world, black_box(&slp_dgram));
            assert!(matches!(parsed, ParsedMessage::Request(_)));
            parsed
        })
    });
    c.bench_function("ssdp_parse_to_events", |b| {
        b.iter(|| {
            let parsed = upnp_unit.parse(&world, black_box(&ssdp_dgram));
            assert!(matches!(parsed, ParsedMessage::Request(_)));
            parsed
        })
    });
}

fn bench_raw_forward_baseline(c: &mut Criterion) {
    // Ablation: what decoding + re-encoding costs *without* the event
    // layer. The event layer's overhead is the difference from above.
    let slp_dgram = slp_request_datagram();
    c.bench_function("slp_raw_decode_encode", |b| {
        b.iter(|| {
            let msg = Message::decode(black_box(&slp_dgram.payload)).unwrap();
            black_box(msg.encode().unwrap())
        })
    });
}

fn bench_compose_msearch(c: &mut Criterion) {
    // The composer half of Fig. 4 step 1: events → M-SEARCH bytes.
    c.bench_function("compose_msearch_from_target", |b| {
        b.iter(|| {
            let m = MSearch::new(SearchTarget::device_urn(black_box("clock"), 1), 0);
            black_box(m.to_bytes())
        })
    });
}

/// The warm-hit round trip per protocol: parse the native request into
/// events, translate by answering from the registry's shared response
/// buffer, and compose the native reply — the §4.3 best-case path end
/// to end, per SDP.
fn bench_round_trip_per_protocol(c: &mut Criterion) {
    let world = World::new(2);
    let node = world.add_node("indiss");
    let registry = ServiceRegistry::new(RegistryConfig {
        cache_ttl: Duration::from_secs(1 << 30),
        ..RegistryConfig::default()
    });
    let slp_unit = SlpUnit::new(&node, SlpUnitConfig::default()).unwrap();
    let upnp_unit = UpnpUnit::new(&node, UpnpUnitConfig::default()).unwrap();
    let jini_unit = JiniUnit::new(&node, JiniUnitConfig::default()).unwrap();
    slp_unit.bind_registry(&registry);
    upnp_unit.bind_registry(&registry);
    jini_unit.bind_registry(&registry);
    registry.warm(
        "clock",
        EventStream::framed(vec![
            Event::ServiceResponse,
            Event::ResOk,
            Event::ServiceType("clock".into()),
            Event::ResTtl(1800),
            Event::ResServUrl("soap://10.0.0.2:4004/service/timer/control".into()),
            Event::ResAttr { tag: "friendlyName".into(), value: "Clock".into() },
        ]),
        world.now(),
    );
    let slp_dgram = slp_request_datagram();
    let ssdp_dgram = msearch_datagram();
    let jini_request = EventStream::framed(vec![
        Event::NetSourceAddr("10.0.0.9:40002".parse().unwrap()),
        Event::ServiceRequest,
        Event::ServiceType("clock".into()),
    ]);

    let mut group = c.benchmark_group("round_trip");
    // One bridged request per iteration: the report's throughput line is
    // directly requests/second.
    group.throughput(Throughput::Elements(1));
    group.bench_function("slp_parse_translate_compose", |b| {
        b.iter(|| {
            let ParsedMessage::Request(request) = slp_unit.parse(&world, black_box(&slp_dgram))
            else {
                panic!("request expected");
            };
            let response = registry.cached_response("clock", world.now()).unwrap();
            slp_unit.compose_response(&world, &request, &response);
            world.run_for(Duration::from_millis(1)); // flush the send
        })
    });
    group.bench_function("upnp_parse_translate_compose", |b| {
        b.iter(|| {
            let ParsedMessage::Request(request) = upnp_unit.parse(&world, black_box(&ssdp_dgram))
            else {
                panic!("request expected");
            };
            let response = registry.cached_response("clock", world.now()).unwrap();
            upnp_unit.compose_response(&world, &request, &response);
            world.run_for(Duration::from_millis(1));
        })
    });
    group.bench_function("jini_translate_compose", |b| {
        // Jini lookups arrive at the unit's own registrar socket rather
        // than through `parse`; bench the translate→compose half.
        b.iter(|| {
            let response = registry.cached_response("clock", world.now()).unwrap();
            jini_unit.compose_response(&world, black_box(&jini_request), &response);
            world.run_for(Duration::from_millis(1));
        })
    });
    group.finish();
}

fn bench_full_bridge_simulation(c: &mut Criterion) {
    // Wall-clock cost of one complete simulated SLP→UPnP bridge round —
    // measures the harness itself (all virtual time, no sleeping).
    use indiss_bench::scenarios::{bridged, Deployment, Direction};
    let mut group = c.benchmark_group("simulation");
    group.sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("simulate_full_bridge_round", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            bridged(black_box(seed), Deployment::ServiceSide, Direction::SlpToUpnp, false)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parse_to_events,
    bench_raw_forward_baseline,
    bench_compose_msearch,
    bench_round_trip_per_protocol,
    bench_full_bridge_simulation
);
criterion_main!(benches);
