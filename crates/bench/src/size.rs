//! Table 2 reproduction: size requirements of INDISS vs. native stacks.
//!
//! The paper counts, per component, the artifact size in KB, the number
//! of Java classes, and NCSS (non-commented source statements). Our
//! equivalents over the Rust sources: bytes of implementation source
//! (tests stripped), number of type definitions (`struct`/`enum`/`trait`,
//! the closest analogue of "classes"), and non-comment non-blank source
//! lines. What must reproduce is the *relative* claim: a unit is an order
//! of magnitude smaller than the native stack it replaces, and
//! `native + INDISS` beats `both natives + a second client` as services
//! accumulate.

use std::fmt;
use std::path::{Path, PathBuf};

/// Size metrics of one component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeMetrics {
    /// Bytes of implementation source (test modules stripped).
    pub bytes: u64,
    /// Number of type definitions (struct + enum + trait).
    pub types: u64,
    /// Non-comment, non-blank source lines.
    pub ncss: u64,
}

impl SizeMetrics {
    /// Kilobytes, as Table 2 prints.
    pub fn kb(&self) -> f64 {
        self.bytes as f64 / 1024.0
    }
}

impl std::ops::Add for SizeMetrics {
    type Output = SizeMetrics;

    fn add(self, rhs: SizeMetrics) -> SizeMetrics {
        SizeMetrics {
            bytes: self.bytes + rhs.bytes,
            types: self.types + rhs.types,
            ncss: self.ncss + rhs.ncss,
        }
    }
}

impl fmt::Display for SizeMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:7.1} KB {:5} types {:6} NCSS", self.kb(), self.types, self.ncss)
    }
}

/// Strips `#[cfg(test)]`-gated module bodies (everything from the marker
/// to end of file, since this codebase puts tests last in each file).
fn strip_tests(source: &str) -> &str {
    match source.find("#[cfg(test)]") {
        Some(i) => &source[..i],
        None => source,
    }
}

/// Measures one `.rs` source string.
pub fn measure_source(source: &str) -> SizeMetrics {
    let code = strip_tests(source);
    let mut metrics = SizeMetrics { bytes: code.len() as u64, ..SizeMetrics::default() };
    for line in code.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with("//") {
            continue;
        }
        metrics.ncss += 1;
        // Count type definitions; `pub struct X`, `struct X`, etc.
        let mut tokens = trimmed.split_whitespace().peekable();
        while let Some(tok) = tokens.next() {
            if matches!(tok, "struct" | "enum" | "trait")
                && tokens.peek().map(|n| n.chars().next().map(char::is_alphabetic))
                    == Some(Some(true))
            {
                metrics.types += 1;
                break;
            }
            if !matches!(tok, "pub" | "pub(crate)" | "pub(super)") {
                break;
            }
        }
    }
    metrics
}

/// Measures every `.rs` file under a directory (recursive), or a single
/// file if the path is one.
pub fn measure_path(path: &Path) -> std::io::Result<SizeMetrics> {
    let mut total = SizeMetrics::default();
    if path.is_file() {
        let source = std::fs::read_to_string(path)?;
        return Ok(measure_source(&source));
    }
    for entry in std::fs::read_dir(path)? {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            total = total + measure_path(&p)?;
        } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
            let source = std::fs::read_to_string(&p)?;
            total = total + measure_source(&source);
        }
    }
    Ok(total)
}

/// Locates the workspace root from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("bench crate lives at <root>/crates/bench")
        .to_path_buf()
}

/// One row of the reproduced Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Component name (paper terminology).
    pub name: String,
    /// Measured metrics.
    pub metrics: SizeMetrics,
}

/// The `crates/core/src` files that make up the **paper-scope
/// artifact** — the prototype Table 2 measured: the monitor (§2.1), the
/// event vocabulary (§2.3), the FSM engine (§2.3), the runtime's
/// session routing and dynamic composition (§2.2, §3), the §4.2
/// adaptation policy, plus the unit interface and the shared error
/// type. The SLP and UPnP units complete the "INDISS total" row,
/// exactly as in the paper.
///
/// This list is the scoping rule, stated positively: a row is in
/// "INDISS total" because the paper measured its counterpart, not
/// because it failed to match an exclusion. Everything else in the
/// crate is production superset — registry, interner, open-protocol
/// API, config surface, concurrency runtime, network front-end — and
/// is reported as its own named row below. The gate test asserts every
/// source file in the crate is claimed by exactly one row, so new
/// subsystems must be classified, not silently absorbed.
const PAPER_SCOPE_CORE: &[&str] = &[
    "monitor.rs",
    "event.rs",
    "fsm.rs",
    "runtime.rs",
    "adapt.rs",
    "error.rs",
    "lib.rs",
    "units/mod.rs",
];

/// The production-superset rows: `(row name, files)`. Together with
/// [`PAPER_SCOPE_CORE`] and the four unit files these must cover
/// `crates/core/src` completely (asserted by the gate test).
const SUPERSET_ROWS: &[(&str, &[&str])] = &[
    (
        "Registry subsystem (production)",
        &[
            "registry/mod.rs",
            "registry/record.rs",
            "registry/index.rs",
            "registry/expiry.rs",
            "registry/shard.rs",
            "registry/epoch.rs",
        ],
    ),
    ("Symbol interner (production)", &["symbol.rs"]),
    ("Open protocol API (extension)", &["protocol.rs"]),
    ("Config surface (tooling)", &["config.rs"]),
    ("Config language (tooling)", &["config_lang.rs"]),
    ("Concurrency runtime (scale-out)", &["pool.rs", "gateway.rs"]),
    ("Network front-end (deployment)", &["netfront.rs"]),
    // `fuzz_tests.rs` is `#[cfg(test)]`-only (the decoder fuzz walk and
    // its committed corpus) — claimed here so the completeness gate sees
    // it, measured alongside the tracker it hardens.
    ("Robustness layer (hostile worlds)", &["tracker.rs", "fuzz_tests.rs", "scenario.rs"]),
    ("Federated mesh (gateway-to-gateway)", &["mesh/mod.rs", "mesh/wire.rs", "mesh/custody.rs"]),
    (
        "Observability (spans + histograms + stats endpoint)",
        &["obs/mod.rs", "obs/trace.rs", "obs/hist.rs", "obs/export.rs"],
    ),
];

fn measure_files(core_src: &Path, files: &[&str]) -> std::io::Result<SizeMetrics> {
    let mut total = SizeMetrics::default();
    for file in files {
        total = total + measure_path(&core_src.join(file))?;
    }
    Ok(total)
}

/// Every core source file, relative to `crates/core/src` (for the
/// completeness check).
pub fn core_source_files() -> std::io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, base: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let p = entry?.path();
            if p.is_dir() {
                walk(&p, base, out)?;
            } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
                out.push(p.strip_prefix(base).expect("under base").to_path_buf());
            }
        }
        Ok(())
    }
    let core_src = workspace_root().join("crates/core/src");
    let mut files = Vec::new();
    walk(&core_src, &core_src, &mut files)?;
    files.sort();
    Ok(files)
}

/// The files [`table2`]'s core rows claim, relative to
/// `crates/core/src` (for the completeness check).
pub fn claimed_core_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = PAPER_SCOPE_CORE.iter().map(PathBuf::from).collect();
    files.extend(
        ["units/slp.rs", "units/upnp.rs", "units/jini.rs", "units/descriptor.rs"]
            .iter()
            .map(PathBuf::from),
    );
    for (_, row_files) in SUPERSET_ROWS {
        files.extend(row_files.iter().map(PathBuf::from));
    }
    files.sort();
    files
}

/// Computes the full Table 2 equivalent from the workspace sources.
/// See `PAPER_SCOPE_CORE` (in this module's source) for the scoping
/// rule.
///
/// # Errors
///
/// I/O errors reading the source tree.
pub fn table2() -> std::io::Result<Vec<Table2Row>> {
    let root = workspace_root();
    let core_src = root.join("crates/core/src");
    let units = core_src.join("units");

    let slp_unit = measure_path(&units.join("slp.rs"))?;
    let upnp_unit = measure_path(&units.join("upnp.rs"))?;
    let jini_unit = measure_path(&units.join("jini.rs"))?;
    let descriptor_unit = measure_path(&units.join("descriptor.rs"))?;
    let core_framework = measure_files(&core_src, PAPER_SCOPE_CORE)?;

    let slp_stack = measure_path(&root.join("crates/slp/src"))?;
    // Cyberlink for Java shipped its own HTTP server and XML parser; our
    // UPnP stack gets those from substrate crates, so the "Cyberlink
    // role" aggregate includes them for a like-for-like comparison.
    let upnp_stack = measure_path(&root.join("crates/upnp/src"))?
        + measure_path(&root.join("crates/ssdp/src"))?
        + measure_path(&root.join("crates/http/src"))?
        + measure_path(&root.join("crates/xml/src"))?;
    let indiss_total = core_framework + slp_unit + upnp_unit;

    let mut rows = vec![
        Table2Row { name: "Core framework (paper scope)".into(), metrics: core_framework },
        Table2Row { name: "UPnP Unit".into(), metrics: upnp_unit },
        Table2Row { name: "SLP Unit".into(), metrics: slp_unit },
        Table2Row { name: "Jini Unit (extension)".into(), metrics: jini_unit },
        Table2Row { name: "Descriptor Unit (extension)".into(), metrics: descriptor_unit },
    ];
    for (name, files) in SUPERSET_ROWS {
        rows.push(Table2Row {
            name: (*name).to_owned(),
            metrics: measure_files(&core_src, files)?,
        });
    }
    // The batched I/O engine lives in the net crate (deployment
    // substrate, not core), so it is a superset row measured directly
    // rather than a claimed core file.
    let net_src = root.join("crates/net/src");
    rows.push(Table2Row {
        name: "Batched I/O engine (net: reactor + syscalls + transport)".into(),
        metrics: measure_path(&net_src.join("sys.rs"))?
            + measure_path(&net_src.join("reactor.rs"))?
            + measure_path(&net_src.join("batched.rs"))?,
    });
    rows.push(Table2Row {
        name: "INDISS total (paper-scope core + SLP&UPnP units)".into(),
        metrics: indiss_total,
    });
    rows.push(Table2Row { name: "SLP stack (OpenSLP role)".into(), metrics: slp_stack });
    rows.push(Table2Row {
        name: "UPnP stack (Cyberlink role: upnp+ssdp+http+xml)".into(),
        metrics: upnp_stack,
    });
    // The comparisons the paper draws.
    let dual = slp_stack + upnp_stack;
    rows.push(Table2Row {
        name: "interop without INDISS (both stacks + 2nd client)".into(),
        metrics: dual,
    });
    rows.push(Table2Row { name: "UPnP stack + INDISS".into(), metrics: upnp_stack + indiss_total });
    rows.push(Table2Row { name: "SLP stack + INDISS".into(), metrics: slp_stack + indiss_total });
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_code_not_comments() {
        let src =
            "// comment\n\npub struct A;\nstruct B { x: u8 }\nenum C { D }\n// more\nfn f() {}\n";
        let m = measure_source(src);
        assert_eq!(m.types, 3);
        assert_eq!(m.ncss, 4);
    }

    #[test]
    fn tests_are_stripped() {
        let src = "struct A;\n#[cfg(test)]\nmod tests { struct Fake; }\n";
        let m = measure_source(src);
        assert_eq!(m.types, 1);
    }

    #[test]
    fn keywords_in_other_positions_do_not_count() {
        let src = "fn f(x: MyStruct) {}\nlet trait_object = 1;\nimpl Foo for Bar {}\n";
        assert_eq!(measure_source(src).types, 0);
    }

    /// Every core source file must be claimed by exactly one Table 2
    /// row: a new subsystem has to be classified (paper scope or a
    /// named production row), never silently absorbed into — or dropped
    /// from — the "INDISS total" the gate below compares.
    #[test]
    fn table2_scoping_covers_every_core_file() {
        let on_disk = core_source_files().expect("source tree readable");
        let claimed = claimed_core_files();
        assert_eq!(
            on_disk, claimed,
            "crates/core/src files and Table 2 row claims diverged; classify the \
             new/renamed file in size.rs (PAPER_SCOPE_CORE or SUPERSET_ROWS)"
        );
    }

    #[test]
    fn table2_has_the_papers_shape() {
        let rows = table2().expect("source tree readable");
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.name.starts_with(name))
                .unwrap_or_else(|| panic!("{name} row"))
                .metrics
        };
        let upnp_unit = get("UPnP Unit");
        let slp_unit = get("SLP Unit");
        let upnp_stack = get("UPnP stack");
        let slp_stack = get("SLP stack");
        // Paper: each unit is much smaller than the native stack it fronts
        // (UPnP unit 125 KB vs Cyberlink 372 KB; SLP unit 49 KB vs
        // OpenSLP 126 KB) and the UPnP artifacts dominate the SLP ones.
        assert!(upnp_unit.ncss < upnp_stack.ncss / 2, "unit ≪ stack");
        assert!(slp_unit.ncss < slp_stack.ncss / 2, "unit ≪ stack");
        // (compared in bytes, the paper's KB column; NCSS is within noise)
        assert!(upnp_stack.bytes > slp_stack.bytes, "UPnP stack is the bigger one");
        assert!(upnp_unit.ncss > slp_unit.ncss, "UPnP unit is the bigger unit");
        // The headline comparison: the whole of INDISS is smaller than
        // carrying a second native stack. (The paper's −31.5 % for the
        // SLP host does not reproduce in sign here — see EXPERIMENTS.md:
        // our Rust SLP stack is far heavier relative to its UPnP stack
        // than OpenSLP-in-C was relative to Cyberlink-in-Java.)
        assert!(
            get("INDISS total").ncss < get("interop without INDISS").ncss,
            "INDISS ≪ dual stack"
        );
    }
}
