//! A counting global allocator for the bench crate's byte-accounting
//! scenarios (`request_storm`).
//!
//! Wraps the system allocator and keeps a running total of bytes
//! *requested* (gross allocation volume, reallocations counted by their
//! new size). The counter deliberately ignores frees: the metric of
//! interest is how much allocator traffic a code path generates, not its
//! resident footprint.
//!
//! The allocator is installed crate-wide (`#[global_allocator]` in
//! `lib.rs`), so every bench binary and test linking `indiss-bench` gets
//! byte accounting for free; the per-operation cost is one relaxed
//! atomic add.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// The counting allocator; see the module docs.
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the only addition is a relaxed
// counter update, which allocates nothing and cannot unwind.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total bytes requested from the allocator so far (monotonic).
pub fn allocated_bytes() -> u64 {
    ALLOCATED.load(Ordering::Relaxed)
}

/// Runs `f` and returns the bytes allocated while it ran.
pub fn allocated_during<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = allocated_bytes();
    let result = f();
    (result, allocated_bytes() - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_observes_allocations() {
        let (v, bytes) = allocated_during(|| vec![0u8; 4096]);
        assert_eq!(v.len(), 4096);
        assert!(bytes >= 4096, "a 4 KiB Vec must register: {bytes}");
    }

    #[test]
    fn allocation_free_code_registers_zero() {
        let buf = [0u64; 8];
        let (sum, bytes) = allocated_during(|| buf.iter().sum::<u64>());
        assert_eq!(sum, 0);
        assert_eq!(bytes, 0, "stack-only work must not count");
    }
}
