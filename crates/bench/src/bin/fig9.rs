//! Reproduces Fig. 9: INDISS located on the client side.
//!
//! Paper reference values: [SLP-UPnP]→UPnP 80 ms; [UPnP-SLP]→SLP 0.12 ms
//! (the best case: only the tiny SLP exchange crosses the network).

use indiss_bench::scenarios::{bridged, Deployment, Direction};
use indiss_bench::{print_row, stats, TRIAL_SEEDS};

fn main() {
    println!("Fig. 9 — INDISS on the client side (median of 30 seeded trials)");
    let slp_to_upnp = stats::summarize(TRIAL_SEEDS, |s| {
        bridged(s, Deployment::ClientSide, Direction::SlpToUpnp, false)
    });
    print_row("[SLP-UPnP] SLP client -> UPnP service", &slp_to_upnp, "80 ms");
    let cold = stats::summarize(TRIAL_SEEDS, |s| {
        bridged(s, Deployment::ClientSide, Direction::UpnpToSlp, false)
    });
    print_row("[UPnP-SLP] UPnP client -> SLP service (cold)", &cold, "—");
    let warm = stats::summarize(TRIAL_SEEDS, |s| {
        bridged(s, Deployment::ClientSide, Direction::UpnpToSlp, true)
    });
    print_row("[UPnP-SLP] UPnP client -> SLP service (warm)", &warm, "0.12 ms");
    println!();
    println!("'warm' answers the M-SEARCH from INDISS's cache of the prior SLP");
    println!("round — the paper's best case, where only loopback UPnP messaging");
    println!("plus a composed response separates request from answer.");
}
