//! Reproduces the Fig. 6 scenario: passive SLP client + passive UPnP
//! service. Without INDISS's traffic-threshold activation the client can
//! never discover the service; once traffic drops below the threshold,
//! INDISS re-advertises the UPnP clock as SLP SAAdverts.

use indiss_bench::scenarios::adaptation;

fn main() {
    println!("Fig. 6 — traffic-threshold adaptation (passive client, passive service)");
    println!(
        "{:<28} {:>16} {:>18}",
        "background traffic", "went active at", "client discovered at"
    );
    println!("{}", "-".repeat(66));
    for (label, bps) in [("quiet network (0 B/s)", 0u64), ("busy network (5 kB/s)", 5_000)] {
        let outcome = adaptation(42, bps);
        println!(
            "{:<28} {:>16} {:>18}",
            label,
            outcome.went_active_at.map(|t| t.to_string()).unwrap_or_else(|| "never".into()),
            outcome.discovered_at.map(|t| t.to_string()).unwrap_or_else(|| "never".into()),
        );
    }
    println!();
    println!("paper: on a quiet network INDISS switches to the active model and the");
    println!("blocked passive/passive configuration unblocks; on a busy network it");
    println!("stays passive to preserve bandwidth (interoperability degradation).");
}
