//! Reproduces Fig. 7: native client ↔ native service response times.
//!
//! Paper reference values (median of 30): SLP→SLP 0.7 ms, UPnP→UPnP 40 ms.

use indiss_bench::scenarios::{native_slp, native_upnp};
use indiss_bench::{print_row, stats, TRIAL_SEEDS};

fn main() {
    println!("Fig. 7 — native clients & services (median of 30 seeded trials)");
    let slp = stats::summarize(TRIAL_SEEDS, native_slp);
    print_row("SLP -> SLP", &slp, "0.7 ms");
    let upnp = stats::summarize(TRIAL_SEEDS, native_upnp);
    print_row("UPnP -> UPnP", &upnp, "40 ms");
    println!();
    println!(
        "shape check: UPnP/SLP ratio = {:.0}x (paper: ~57x)",
        upnp.median.as_secs_f64() / slp.median.as_secs_f64()
    );
}
