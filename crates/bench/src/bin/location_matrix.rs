//! Ablation: response time for every INDISS location × direction pair
//! (the §4.2 discussion, beyond the two figures the paper prints).

use indiss_bench::scenarios::location_matrix;
use indiss_bench::{fmt_ms, TRIAL_SEEDS};

fn main() {
    println!("Location × direction sweep (cold cache, median of 30)");
    println!("{:<14} {:<12} {:>10}", "deployment", "direction", "median");
    println!("{}", "-".repeat(40));
    for (deployment, direction, summary) in location_matrix(TRIAL_SEEDS) {
        println!(
            "{:<14} {:<12} {:>10}",
            format!("{deployment:?}"),
            format!("{direction:?}"),
            fmt_ms(summary.median)
        );
    }
}
