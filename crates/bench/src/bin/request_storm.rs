//! Request-storm benchmark: N clients hammering one gateway with mixed
//! hit/miss/absent-type queries across all four SDPs (SLP, UPnP, Jini
//! and the descriptor-driven DNS-SD protocol), the pure event-pipeline
//! allocation metric the zero-copy refactor is judged by, and the
//! multi-threaded warm-hit scaling curve the sharded registry is judged
//! by (1/2/4/8 workers over a 16-shard registry; ≥2× throughput at 4
//! workers vs 1 and ≥1.5× at 8 vs 4 are the gates).
//!
//! Emits `BENCH_storm.json` for the perf trajectory. Pass `--smoke` for
//! the small CI configuration, `--workers N` to cap the scaling curve's
//! largest point, and `--udp` to additionally measure the real-socket
//! rows: the warm-hit round trip over a loopback `UdpTransport` gateway
//! (one-in-flight latency plus a pipelined throughput phase) and the
//! batched I/O engine's saturation storm over a `BatchedTransport`
//! (≥100k warm hits/s on loopback is the full-mode gate). Both skip
//! with a log line when the environment forbids binding. Pass
//! `--hostile` for the hostile-world row: a fault-injected sim gateway
//! (10% drop + 10% reorder both directions) gated on ≥80% warm-hit
//! delivery through the client's retransmit state machine and on a
//! bit-identical same-seed replay. Pass `--mesh` for the federated-mesh
//! row: a full gateway mesh gossiping over one sim bus, gated on
//! two-round digest convergence, on every foreign record being served
//! as a warm remote cache hit, and on an identical same-seed replay.
//! Pass `--worlds` for the scenario matrix: every declarative `World`
//! (churn at ≥1000 nodes, mobility under a scheduled link cut,
//! adversarial injection, million-record soak) runs twice and is gated
//! on a bit-identical replay digest; in full mode the worlds'
//! declared `Assert MinDeliveryPct` floors are enforced as well.
//! Pass `--trace` for the observability row: the warm-hit storm runs
//! with the span tracer off and on (interleaved, best-of-N), gated on
//! tracing-on throughput ≥95% of tracing-off; the traced run's
//! Chrome/Perfetto export is validated (well-formed, timestamps
//! non-decreasing) and written to `trace.json`, and a same-seed world
//! pair must export byte-identical traces.

use std::time::Duration;

use indiss_bench::scenarios::{
    hostile_world, mesh_convergence, request_storm, trace_overhead, udp_batched_storm,
    udp_warm_hit, warm_hit_pipeline_bytes, warm_hit_scaling,
};
use indiss_bench::worlds;

/// Bytes of allocator traffic per warm-hit bridged request measured on
/// the event pipeline *before* the zero-copy refactor (deep-cloned
/// `Vec<Event>` streams, string-keyed registry, per-event FSM command
/// vectors), captured with the same `warm_hit_pipeline_bytes` probe at
/// 10k iterations. The acceptance bar is ≥ 5× fewer bytes than this.
const PRE_REFACTOR_PIPELINE_BYTES_PER_REQUEST: u64 = 3399;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let udp = args.iter().any(|a| a == "--udp");
    let hostile = args.iter().any(|a| a == "--hostile");
    let mesh = args.iter().any(|a| a == "--mesh");
    let run_worlds = args.iter().any(|a| a == "--worlds");
    let trace = args.iter().any(|a| a == "--trace");
    let max_workers: usize = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let (clients, rounds, pipeline_iters) = if smoke { (4, 6, 5_000) } else { (16, 20, 50_000) };
    let (scaling_requests, scaling_types, io_wait) = if smoke {
        (1_200u64, 32, Duration::from_micros(100))
    } else {
        (4_000u64, 64, Duration::from_micros(150))
    };

    let pipeline_bytes = warm_hit_pipeline_bytes(pipeline_iters);
    let outcome = request_storm(7, clients, rounds);

    // The payoff curve: the same warm-hit pipeline across worker counts
    // over the sharded registry (per-request io_wait models the
    // synchronous reply transmit; see `warm_hit_scaling`).
    let mut worker_points: Vec<usize> =
        [1usize, 2, 4, 8].into_iter().filter(|w| *w <= max_workers).collect();
    if !worker_points.contains(&max_workers) {
        worker_points.push(max_workers);
    }
    // Best of N trials per point: one trial is one scheduler roll, and
    // on a small host a single unlucky preemption window can shave
    // 10-15% off a point — the curve gates capability, not luck.
    let scaling_trials = if smoke { 1 } else { 3 };
    let scaling: Vec<indiss_bench::scenarios::ScalingPoint> = worker_points
        .iter()
        .map(|&w| {
            (0..scaling_trials)
                .map(|_| warm_hit_scaling(w, scaling_requests, scaling_types, io_wait))
                .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps))
                .expect("at least one scaling trial")
        })
        .collect();
    for point in &scaling {
        assert_eq!(point.cache_hits, point.requests, "scaling storm must be all-warm");
    }
    let rps_at = |w: usize| scaling.iter().find(|p| p.workers == w).map(|p| p.throughput_rps);
    let speedup_4v1 = match (rps_at(1), rps_at(4)) {
        (Some(one), Some(four)) if one > 0.0 => Some(four / one),
        _ => None,
    };
    let speedup_8v4 = match (rps_at(4), rps_at(8)) {
        (Some(four), Some(eight)) if four > 0.0 => Some(eight / four),
        _ => None,
    };
    let ratio = PRE_REFACTOR_PIPELINE_BYTES_PER_REQUEST as f64 / pipeline_bytes.max(1) as f64;
    let p50_us = outcome.warm_hit_p50.map(|d| d.as_secs_f64() * 1e6).unwrap_or(f64::NAN);
    let p99_us = outcome.warm_hit_p99.map(|d| d.as_secs_f64() * 1e6).unwrap_or(f64::NAN);

    println!("request_storm ({clients} clients x {rounds} rounds, all four SDPs)");
    println!("  requests sent                 {}", outcome.requests_sent);
    println!("  warm-hit p50 / p99            {p50_us:.1} us / {p99_us:.1} us");
    println!("  cache hits                    {}", outcome.cache_hits);
    println!("  negative hits                 {}", outcome.negative_hits);
    println!("  requests bridged (fan-outs)   {}", outcome.requests_bridged);
    println!("  requests suppressed           {}", outcome.requests_suppressed);
    println!("  storm bytes allocated         {}", outcome.storm_bytes_allocated);
    println!("  storm bytes / request         {}", outcome.storm_bytes_per_request);
    println!("pipeline (parse -> cache answer -> deliver, per warm-hit request)");
    println!("  baseline (pre-refactor)       {PRE_REFACTOR_PIPELINE_BYTES_PER_REQUEST} B");
    println!("  current                       {pipeline_bytes} B");
    println!("  reduction                     {ratio:.1}x");
    println!(
        "threaded warm-hit scaling ({scaling_requests} reqs x {scaling_types} types, \
         16 shards, {}us io-wait per request)",
        io_wait.as_micros()
    );
    for point in &scaling {
        let base = rps_at(1).unwrap_or(point.throughput_rps);
        println!(
            "  {:>2} workers                    {:>10.0} req/s  ({:.2}x, {:?})",
            point.workers,
            point.throughput_rps,
            point.throughput_rps / base,
            point.elapsed,
        );
    }

    // Real-socket warm-hit round trip (loopback UdpTransport gateway).
    let (udp_requests, udp_types) = if smoke { (300u64, 16) } else { (2_000u64, 64) };
    let udp_outcome = if udp { udp_warm_hit(udp_requests, udp_types, 26_000) } else { None };
    if udp {
        match &udp_outcome {
            Some(o) => {
                let p50 = o.p50.map(|d| d.as_secs_f64() * 1e6).unwrap_or(f64::NAN);
                let p99 = o.p99.map(|d| d.as_secs_f64() * 1e6).unwrap_or(f64::NAN);
                println!(
                    "real-socket warm hits ({} reqs x {} types, loopback UDP)",
                    o.requests, udp_types
                );
                println!("  replies received              {}", o.replies);
                println!("  wire round-trip p50 / p99     {p50:.1} us / {p99:.1} us");
                println!("  one-in-flight (1/mean RTT)    {:.0} req/s", o.one_in_flight_rps);
                println!(
                    "  pipelined (depth {})           {:.0} req/s  ({} replies)",
                    o.pipeline_depth, o.pipelined_rps, o.pipelined_replies
                );
                // The storm is all-warm, but UDP on a loaded CI runner
                // may legitimately lose the odd datagram; gate on
                // near-lossless, not perfection.
                assert!(
                    o.replies * 100 >= o.requests * 95,
                    "udp storm lost too many replies: {}/{}",
                    o.replies,
                    o.requests
                );
            }
            None => println!("real-socket warm hits: SKIPPED (environment forbids loopback bind)"),
        }
    }

    // The batched I/O engine under saturation (loopback
    // BatchedTransport gateway: epoll reactor + recvmmsg/sendmmsg).
    let (batched_requests, batched_types) = if smoke { (2_000u64, 16) } else { (200_000u64, 64) };
    let batched_outcome =
        if udp { udp_batched_storm(batched_requests, batched_types, 26_500) } else { None };
    if udp {
        match &batched_outcome {
            Some(o) => {
                let batches = o.io.recv_batches().max(1);
                println!(
                    "batched-engine warm-hit storm ({} reqs x {} types, loopback, \
                     window 512 / burst 64)",
                    o.requests, batched_types
                );
                println!("  replies received              {}", o.replies);
                println!("  delivered throughput          {:.0} req/s", o.throughput_rps);
                println!(
                    "  reactor wakeups / batches     {} / {}  (hist {:?})",
                    o.io.reactor_wakeups, batches, o.io.recv_batch_hist
                );
                println!(
                    "  batch flushes / eagain        {} / {}",
                    o.io.batch_sends_flushed, o.io.recv_eagain
                );
                assert!(
                    o.replies * 100 >= o.requests * 80,
                    "batched storm lost too many replies: {}/{}",
                    o.replies,
                    o.requests
                );
                if !smoke {
                    assert!(
                        o.throughput_rps >= 100_000.0,
                        "batched-engine regression: {:.0} req/s delivered \
                         (gate: >= 100k warm hits/s on loopback)",
                        o.throughput_rps
                    );
                }
            }
            None => println!("batched-engine storm: SKIPPED (environment forbids loopback bind)"),
        }
    }

    // The hostile-world row: the robustness layer's payoff gate. A
    // fault-injected sim gateway (10% drop + 10% reorder, both
    // directions) must still deliver >= 80% of warm hits through the
    // client's retransmit state machine, and the same seed must replay
    // the identical fault stream bit for bit.
    let (hostile_requests, hostile_types) = if smoke { (48u64, 8) } else { (160u64, 8) };
    let hostile_outcome = if hostile {
        let first = hostile_world(1905, hostile_requests, hostile_types);
        let replay = hostile_world(1905, hostile_requests, hostile_types);
        println!(
            "hostile-world storm ({} reqs x {} types, 10% drop + 10% reorder both ways)",
            first.requests, hostile_types
        );
        println!(
            "  delivered                     {} / {}  ({:.1}%)",
            first.delivered,
            first.requests,
            first.delivery_rate * 100.0
        );
        println!("  retransmits issued            {}", first.retransmits);
        println!("  datagrams heard               {}", first.datagrams_heard);
        println!(
            "  faults injected               drop {} / reorder {}",
            first.faults.dropped, first.faults.reordered
        );
        println!("  replay digest                 {:#018X}", first.digest);
        assert!(
            first.delivery_rate >= 0.80,
            "hostile-world regression: {:.1}% warm-hit delivery under 10% loss + reorder \
             (gate: >= 80%)",
            first.delivery_rate * 100.0
        );
        assert_eq!(
            (first.digest, first.datagrams_heard, first.faults),
            (replay.digest, replay.datagrams_heard, replay.faults),
            "hostile-world replay diverged: the fault plan must be a pure function of its seed"
        );
        assert!(first.faults.dropped > 0, "hostile plan must actually drop: {:?}", first.faults);
        assert!(
            first.faults.reordered > 0,
            "hostile plan must actually reorder: {:?}",
            first.faults
        );
        Some(first)
    } else {
        None
    };

    // The mesh row: the federated-gateway convergence gate. A full
    // mesh over one sim bus must agree on a single registry digest
    // within two gossip rounds, serve every foreign record as a warm
    // *remote* cache hit (no re-fan-out), and replay identically from
    // the same seed.
    let (mesh_gateways, mesh_records) = if smoke { (5usize, 10u64) } else { (10usize, 40u64) };
    let mesh_outcome = if mesh {
        let first = mesh_convergence(1905, mesh_gateways, mesh_records);
        let replay = mesh_convergence(1905, mesh_gateways, mesh_records);
        println!(
            "mesh convergence ({} gateways full mesh, {} records round-robin)",
            first.gateways, first.records
        );
        println!("  rounds to converge            {}", first.rounds_to_converge);
        println!(
            "  remote hits                   {} / {}",
            first.remote_hits, first.expected_remote_hits
        );
        println!("  records applied mesh-wide     {}", first.records_applied);
        println!("  registry digest               {:#018X}", first.digest);
        assert!(first.converged, "mesh failed to converge within the round cap");
        assert!(
            first.rounds_to_converge <= 2,
            "mesh convergence regression: {} rounds to one digest (gate: <= 2 on a quiet bus)",
            first.rounds_to_converge
        );
        assert_eq!(
            first.remote_hits, first.expected_remote_hits,
            "every foreign record must be a warm remote hit"
        );
        assert_eq!(
            first.records_applied, first.expected_remote_hits,
            "each foreign record applies exactly once per gateway"
        );
        assert_eq!(
            first, replay,
            "mesh replay diverged: the scenario must be a pure function of its seed"
        );
        Some(first)
    } else {
        None
    };

    // The scenario matrix: every declarative hostile world, run twice.
    // The replay-digest gate is the whole point — a world is a pure
    // function of its seed, so the second run must reproduce the first
    // bit for bit. Delivery floors are declared in the worlds' own
    // `Assert` blocks and enforced in full mode only (smoke durations
    // are too short for the floors to be meaningful).
    let world_outcomes = if run_worlds {
        let matrix = worlds::matrix(smoke);
        let mut rows = Vec::with_capacity(matrix.len());
        println!("scenario matrix ({} worlds, each run twice)", matrix.len());
        for w in &matrix {
            let first = worlds::run_world(w.name, &w.spec, !smoke);
            let replay = worlds::run_world(w.name, &w.spec, !smoke);
            assert_eq!(
                first.digest, replay.digest,
                "world '{}' replay diverged: a world must be a pure function of its seed",
                w.name
            );
            assert_eq!(first.probes_delivered, replay.probes_delivered);
            assert_eq!(first.faults, replay.faults);
            println!(
                "  {:<20} {:>5} nodes  delivery {:>5.1}%  converged in {:>2} rounds  \
                 faults {:>5}  digest {:#018X}",
                first.name,
                first.nodes,
                first.delivery_pct,
                first.convergence_rounds,
                first.faults.total(),
                first.digest,
            );
            assert!(first.converged, "world '{}' failed to converge", w.name);
            rows.push(first);
        }
        rows
    } else {
        Vec::new()
    };

    // The observability row: tracing-on vs tracing-off warm-hit
    // throughput (the layer's zero-allocation claim, measured), plus
    // the exported trace validated and — via a same-seed world pair —
    // proven byte-identical on replay.
    let (trace_requests, trace_rounds) = if smoke { (30_000u64, 5) } else { (120_000u64, 3) };
    let trace_outcome = if trace {
        let o = trace_overhead(max_workers.min(4), trace_requests, trace_rounds);
        println!(
            "tracing overhead ({} reqs, {} workers, best of {} interleaved off/on pairs)",
            o.requests,
            max_workers.min(4),
            trace_rounds
        );
        println!("  tracing off                   {:>10.0} req/s", o.baseline_rps);
        println!("  tracing on                    {:>10.0} req/s", o.traced_rps);
        println!("  on/off ratio                  {:.3}  (gate: >= 0.95)", o.ratio);
        println!(
            "  spans recorded / dropped      {} / {}  ({} exported events)",
            o.spans_recorded, o.spans_dropped, o.trace_events
        );
        std::fs::write("trace.json", &o.trace_json).expect("write trace.json");
        println!("  wrote trace.json ({} bytes, validated)", o.trace_json.len());
        assert!(
            o.ratio >= 0.95,
            "observability regression: tracing-on warm-hit throughput is only {:.1}% of \
             tracing-off (gate: >= 95%)",
            o.ratio * 100.0
        );

        // Replay-identical export: the same seeded world must produce
        // the same trace.json byte for byte.
        let matrix = worlds::matrix(true);
        let baseline = matrix.iter().find(|w| w.name == "baseline_quiet").expect("baseline world");
        let first = worlds::run_world(baseline.name, &baseline.spec, false);
        let replay = worlds::run_world(baseline.name, &baseline.spec, false);
        assert_eq!(
            first.trace_json, replay.trace_json,
            "trace export diverged across same-seed world replays"
        );
        let world_events = indiss_core::validate_chrome_trace(&first.trace_json)
            .expect("world trace export validates");
        println!("  sim world export              {} events, byte-identical replay", world_events);
        Some(o)
    } else {
        None
    };

    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "    {{ \"workers\": {}, \"requests\": {}, \"elapsed_us\": {:.0}, ",
                    "\"throughput_rps\": {:.1} }}"
                ),
                p.workers,
                p.requests,
                p.elapsed.as_secs_f64() * 1e6,
                p.throughput_rps,
            )
        })
        .collect();
    // The real-socket row: an object when measured, `null` when the
    // mode was off or the environment forbade binding (so downstream
    // JSON consumers can distinguish "not run" without parse errors).
    let udp_json = match &udp_outcome {
        Some(o) => format!(
            concat!(
                "{{ \"requests\": {}, \"replies\": {}, \"wire_p50_us\": {:.2}, ",
                "\"wire_p99_us\": {:.2}, \"one_in_flight_rps\": {:.1}, ",
                "\"pipeline_depth\": {}, \"pipelined_replies\": {}, ",
                "\"pipelined_rps\": {:.1} }}"
            ),
            o.requests,
            o.replies,
            o.p50.map(|d| d.as_secs_f64() * 1e6).unwrap_or(f64::NAN),
            o.p99.map(|d| d.as_secs_f64() * 1e6).unwrap_or(f64::NAN),
            o.one_in_flight_rps,
            o.pipeline_depth,
            o.pipelined_replies,
            o.pipelined_rps,
        ),
        None => "null".to_owned(),
    };
    let batched_json = match &batched_outcome {
        Some(o) => format!(
            concat!(
                "{{ \"requests\": {}, \"replies\": {}, \"elapsed_us\": {:.0}, ",
                "\"throughput_rps\": {:.1}, \"reactor_wakeups\": {}, ",
                "\"recv_batch_hist\": [{}, {}, {}, {}], ",
                "\"batch_sends_flushed\": {}, \"recv_eagain\": {} }}"
            ),
            o.requests,
            o.replies,
            o.elapsed.as_secs_f64() * 1e6,
            o.throughput_rps,
            o.io.reactor_wakeups,
            o.io.recv_batch_hist[0],
            o.io.recv_batch_hist[1],
            o.io.recv_batch_hist[2],
            o.io.recv_batch_hist[3],
            o.io.batch_sends_flushed,
            o.io.recv_eagain,
        ),
        None => "null".to_owned(),
    };
    let hostile_json = match &hostile_outcome {
        Some(o) => format!(
            concat!(
                "{{ \"requests\": {}, \"delivered\": {}, \"delivery_rate\": {:.4}, ",
                "\"retransmits\": {}, \"datagrams_heard\": {}, \"digest\": \"{:#018X}\", ",
                "\"faults_dropped\": {}, \"faults_reordered\": {} }}"
            ),
            o.requests,
            o.delivered,
            o.delivery_rate,
            o.retransmits,
            o.datagrams_heard,
            o.digest,
            o.faults.dropped,
            o.faults.reordered,
        ),
        None => "null".to_owned(),
    };
    let mesh_json = match &mesh_outcome {
        Some(o) => format!(
            concat!(
                "{{ \"gateways\": {}, \"records\": {}, \"rounds_to_converge\": {}, ",
                "\"remote_hits\": {}, \"expected_remote_hits\": {}, ",
                "\"records_applied\": {}, \"digest\": \"{:#018X}\" }}"
            ),
            o.gateways,
            o.records,
            o.rounds_to_converge,
            o.remote_hits,
            o.expected_remote_hits,
            o.records_applied,
            o.digest,
        ),
        None => "null".to_owned(),
    };
    let trace_json_row = match &trace_outcome {
        Some(o) => format!(
            concat!(
                "{{ \"requests\": {}, \"baseline_rps\": {:.1}, \"traced_rps\": {:.1}, ",
                "\"ratio\": {:.4}, \"spans_recorded\": {}, \"spans_dropped\": {}, ",
                "\"trace_events\": {} }}"
            ),
            o.requests,
            o.baseline_rps,
            o.traced_rps,
            o.ratio,
            o.spans_recorded,
            o.spans_dropped,
            o.trace_events,
        ),
        None => "null".to_owned(),
    };
    let worlds_json = if world_outcomes.is_empty() {
        "null".to_owned()
    } else {
        let rows: Vec<String> = world_outcomes
            .iter()
            .map(|o| {
                format!(
                    concat!(
                        "    {{ \"world\": \"{}\", \"nodes\": {}, \"gateways\": {}, ",
                        "\"services\": {}, \"ticks\": {}, \"adverts\": {}, ",
                        "\"probes_issued\": {}, \"probes_delivered\": {}, ",
                        "\"delivery_pct\": {:.2}, \"convergence_rounds\": {}, ",
                        "\"injected\": {}, \"frames_rejected\": {}, ",
                        "\"faults_total\": {}, \"faults_time_partitioned\": {}, ",
                        "\"peak_records\": {}, \"peak_custody\": {}, ",
                        "\"peak_tracker\": {}, \"soak_records\": {}, ",
                        "\"within_memory_budget\": {}, \"replay_digest\": \"{:#018X}\" }}"
                    ),
                    o.name,
                    o.nodes,
                    o.gateways,
                    o.services,
                    o.ticks,
                    o.adverts_sent,
                    o.probes_issued,
                    o.probes_delivered,
                    o.delivery_pct,
                    o.convergence_rounds,
                    o.injected,
                    o.frames_rejected,
                    o.faults.total(),
                    o.faults.time_partitioned,
                    o.peak_records,
                    o.peak_custody,
                    o.peak_tracker,
                    o.soak_records,
                    o.within_memory_budget,
                    o.digest,
                )
            })
            .collect();
        format!("[\n{}\n  ]", rows.join(",\n"))
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"scenario\": \"request_storm\",\n",
            "  \"smoke\": {smoke},\n",
            "  \"protocols\": 4,\n",
            "  \"clients\": {clients},\n",
            "  \"rounds\": {rounds},\n",
            "  \"requests_sent\": {requests_sent},\n",
            "  \"warm_hit_p50_us\": {p50_us:.2},\n",
            "  \"warm_hit_p99_us\": {p99_us:.2},\n",
            "  \"cache_hits\": {cache_hits},\n",
            "  \"negative_hits\": {negative_hits},\n",
            "  \"requests_bridged\": {requests_bridged},\n",
            "  \"requests_suppressed\": {requests_suppressed},\n",
            "  \"storm_bytes_allocated\": {storm_bytes},\n",
            "  \"storm_bytes_per_request\": {storm_bpr},\n",
            "  \"pipeline_bytes_per_request_baseline\": {baseline},\n",
            "  \"pipeline_bytes_per_request\": {pipeline},\n",
            "  \"pipeline_reduction_factor\": {ratio:.2},\n",
            "  \"scaling_io_wait_us\": {io_wait_us},\n",
            "  \"scaling_distinct_types\": {scaling_types},\n",
            "  \"scaling_registry_shards\": 16,\n",
            "  \"scaling\": [\n{scaling_points}\n  ],\n",
            "  \"throughput_speedup_4_workers_vs_1\": {speedup},\n",
            "  \"throughput_speedup_8_workers_vs_4\": {speedup8},\n",
            "  \"udp_warm_hit\": {udp_row},\n",
            "  \"udp_batched\": {batched_row},\n",
            "  \"hostile_world\": {hostile_row},\n",
            "  \"mesh_convergence\": {mesh_row},\n",
            "  \"trace_overhead\": {trace_row},\n",
            "  \"scenario_matrix\": {worlds_rows}\n",
            "}}\n",
        ),
        smoke = smoke,
        clients = clients,
        rounds = rounds,
        requests_sent = outcome.requests_sent,
        p50_us = p50_us,
        p99_us = p99_us,
        cache_hits = outcome.cache_hits,
        negative_hits = outcome.negative_hits,
        requests_bridged = outcome.requests_bridged,
        requests_suppressed = outcome.requests_suppressed,
        storm_bytes = outcome.storm_bytes_allocated,
        storm_bpr = outcome.storm_bytes_per_request,
        baseline = PRE_REFACTOR_PIPELINE_BYTES_PER_REQUEST,
        pipeline = pipeline_bytes,
        ratio = ratio,
        io_wait_us = io_wait.as_micros(),
        scaling_types = scaling_types,
        scaling_points = scaling_json.join(",\n"),
        // `null`, not NaN: NaN is not a JSON token and would make the
        // uploaded artifact unparseable when the curve stops below 4.
        speedup = speedup_4v1.map_or("null".to_owned(), |s| format!("{s:.2}")),
        speedup8 = speedup_8v4.map_or("null".to_owned(), |s| format!("{s:.2}")),
        udp_row = udp_json,
        batched_row = batched_json,
        hostile_row = hostile_json,
        mesh_row = mesh_json,
        trace_row = trace_json_row,
        worlds_rows = worlds_json,
    );
    std::fs::write("BENCH_storm.json", &json).expect("write BENCH_storm.json");
    println!("\nwrote BENCH_storm.json");

    assert!(
        ratio >= 5.0,
        "pipeline regression: {pipeline_bytes} B/request is less than 5x below the \
         {PRE_REFACTOR_PIPELINE_BYTES_PER_REQUEST} B baseline"
    );
    if let Some(speedup) = speedup_4v1 {
        assert!(
            speedup >= 2.0,
            "scaling regression: 4 workers deliver only {speedup:.2}x the 1-worker \
             warm-hit throughput (gate: >= 2x)"
        );
    }
    if let Some(speedup) = speedup_8v4 {
        assert!(
            speedup >= 1.5,
            "scaling regression: 8 workers deliver only {speedup:.2}x the 4-worker \
             warm-hit throughput (gate: >= 1.5x)"
        );
    }
}
