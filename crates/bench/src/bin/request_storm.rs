//! Request-storm benchmark: N clients hammering one gateway with mixed
//! hit/miss/absent-type queries across all four SDPs (SLP, UPnP, Jini
//! and the descriptor-driven DNS-SD protocol), plus the pure
//! event-pipeline allocation metric the zero-copy refactor is judged by.
//!
//! Emits `BENCH_storm.json` for the perf trajectory. Pass `--smoke` for
//! the small CI configuration.

use indiss_bench::scenarios::{request_storm, warm_hit_pipeline_bytes};

/// Bytes of allocator traffic per warm-hit bridged request measured on
/// the event pipeline *before* the zero-copy refactor (deep-cloned
/// `Vec<Event>` streams, string-keyed registry, per-event FSM command
/// vectors), captured with the same `warm_hit_pipeline_bytes` probe at
/// 10k iterations. The acceptance bar is ≥ 5× fewer bytes than this.
const PRE_REFACTOR_PIPELINE_BYTES_PER_REQUEST: u64 = 3399;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (clients, rounds, pipeline_iters) = if smoke { (4, 6, 5_000) } else { (16, 20, 50_000) };

    let pipeline_bytes = warm_hit_pipeline_bytes(pipeline_iters);
    let outcome = request_storm(7, clients, rounds);
    let ratio = PRE_REFACTOR_PIPELINE_BYTES_PER_REQUEST as f64 / pipeline_bytes.max(1) as f64;
    let p50_us = outcome.warm_hit_p50.map(|d| d.as_secs_f64() * 1e6).unwrap_or(f64::NAN);
    let p99_us = outcome.warm_hit_p99.map(|d| d.as_secs_f64() * 1e6).unwrap_or(f64::NAN);

    println!("request_storm ({clients} clients x {rounds} rounds, all four SDPs)");
    println!("  requests sent                 {}", outcome.requests_sent);
    println!("  warm-hit p50 / p99            {p50_us:.1} us / {p99_us:.1} us");
    println!("  cache hits                    {}", outcome.cache_hits);
    println!("  negative hits                 {}", outcome.negative_hits);
    println!("  requests bridged (fan-outs)   {}", outcome.requests_bridged);
    println!("  requests suppressed           {}", outcome.requests_suppressed);
    println!("  storm bytes allocated         {}", outcome.storm_bytes_allocated);
    println!("  storm bytes / request         {}", outcome.storm_bytes_per_request);
    println!("pipeline (parse -> cache answer -> deliver, per warm-hit request)");
    println!("  baseline (pre-refactor)       {PRE_REFACTOR_PIPELINE_BYTES_PER_REQUEST} B");
    println!("  current                       {pipeline_bytes} B");
    println!("  reduction                     {ratio:.1}x");

    let json = format!(
        concat!(
            "{{\n",
            "  \"scenario\": \"request_storm\",\n",
            "  \"smoke\": {smoke},\n",
            "  \"protocols\": 4,\n",
            "  \"clients\": {clients},\n",
            "  \"rounds\": {rounds},\n",
            "  \"requests_sent\": {requests_sent},\n",
            "  \"warm_hit_p50_us\": {p50_us:.2},\n",
            "  \"warm_hit_p99_us\": {p99_us:.2},\n",
            "  \"cache_hits\": {cache_hits},\n",
            "  \"negative_hits\": {negative_hits},\n",
            "  \"requests_bridged\": {requests_bridged},\n",
            "  \"requests_suppressed\": {requests_suppressed},\n",
            "  \"storm_bytes_allocated\": {storm_bytes},\n",
            "  \"storm_bytes_per_request\": {storm_bpr},\n",
            "  \"pipeline_bytes_per_request_baseline\": {baseline},\n",
            "  \"pipeline_bytes_per_request\": {pipeline},\n",
            "  \"pipeline_reduction_factor\": {ratio:.2}\n",
            "}}\n",
        ),
        smoke = smoke,
        clients = clients,
        rounds = rounds,
        requests_sent = outcome.requests_sent,
        p50_us = p50_us,
        p99_us = p99_us,
        cache_hits = outcome.cache_hits,
        negative_hits = outcome.negative_hits,
        requests_bridged = outcome.requests_bridged,
        requests_suppressed = outcome.requests_suppressed,
        storm_bytes = outcome.storm_bytes_allocated,
        storm_bpr = outcome.storm_bytes_per_request,
        baseline = PRE_REFACTOR_PIPELINE_BYTES_PER_REQUEST,
        pipeline = pipeline_bytes,
        ratio = ratio,
    );
    std::fs::write("BENCH_storm.json", &json).expect("write BENCH_storm.json");
    println!("\nwrote BENCH_storm.json");

    assert!(
        ratio >= 5.0,
        "pipeline regression: {pipeline_bytes} B/request is less than 5x below the \
         {PRE_REFACTOR_PIPELINE_BYTES_PER_REQUEST} B baseline"
    );
}
