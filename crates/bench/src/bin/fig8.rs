//! Reproduces Fig. 8: INDISS located on the service side.
//!
//! Paper reference values: SLP→[SLP-UPnP] 65 ms; UPnP→[UPnP-SLP] 40 ms.

use indiss_bench::scenarios::{bridged, Deployment, Direction};
use indiss_bench::{print_row, stats, TRIAL_SEEDS};

fn main() {
    println!("Fig. 8 — INDISS on the service side (median of 30 seeded trials)");
    let slp_to_upnp = stats::summarize(TRIAL_SEEDS, |s| {
        bridged(s, Deployment::ServiceSide, Direction::SlpToUpnp, false)
    });
    print_row("SLP client -> [SLP-UPnP] UPnP service", &slp_to_upnp, "65 ms");
    let upnp_to_slp = stats::summarize(TRIAL_SEEDS, |s| {
        bridged(s, Deployment::ServiceSide, Direction::UpnpToSlp, false)
    });
    print_row("UPnP client -> [UPnP-SLP] SLP service", &upnp_to_slp, "40 ms (*)");
    println!();
    println!("(*) the paper's 40 ms was dominated by the Cyberlink stack answering");
    println!("    the M-SEARCH; INDISS itself answers here, so our bridged UPnP-client");
    println!("    case is *faster* than their native stack. Ordering is preserved:");
    println!("    bridged-UPnP-client <= native-UPnP in both studies.");
}
