//! Reproduces Table 2: size requirements of INDISS vs. the native stacks.
//!
//! Paper values (KB / classes / NCSS): core 44/15/789, UPnP unit
//! 125/18/1515, SLP unit 49/6/606; OpenSLP 126/21/1361, Cyberlink
//! 372/107/5887; dual-stack interop 514 KB, UPnP+INDISS 598 KB (+14%),
//! SLP+INDISS 352 KB (−31.5%).

use indiss_bench::size;

fn main() {
    println!("Table 2 — size requirements (implementation source, tests stripped)");
    println!("{:<52} {:>10} {:>8} {:>8}", "component", "KB", "types", "NCSS");
    println!("{}", "-".repeat(82));
    let rows = size::table2().expect("workspace sources readable");
    for row in &rows {
        println!(
            "{:<52} {:>10.1} {:>8} {:>8}",
            row.name,
            row.metrics.kb(),
            row.metrics.types,
            row.metrics.ncss
        );
    }
    let get = |name: &str| rows.iter().find(|r| r.name.starts_with(name)).expect(name).metrics;
    let dual = get("interop without INDISS");
    let upnp_side = get("UPnP stack + INDISS");
    let slp_side = get("SLP stack + INDISS");
    println!("{}", "-".repeat(82));
    println!(
        "UPnP host + INDISS vs dual stack: {:+.1}%   (paper: +14%)",
        (upnp_side.bytes as f64 / dual.bytes as f64 - 1.0) * 100.0
    );
    println!(
        "SLP host + INDISS vs dual stack:  {:+.1}%   (paper: -31.5%)",
        (slp_side.bytes as f64 / dual.bytes as f64 - 1.0) * 100.0
    );
}
