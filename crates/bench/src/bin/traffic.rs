//! §4.3's traffic claim: "interoperability is achieved without generating
//! additional traffic" when INDISS is co-located with the translated
//! party — the foreign-protocol leg stays on the host.

use indiss_bench::scenarios::traffic_overhead;

fn main() {
    println!("Network bytes for one SLP discovery round (cross-node traffic only)");
    let (without, with) = traffic_overhead(42);
    println!("  native SLP -> SLP:                        {without:>6} bytes");
    println!("  SLP -> UPnP via service-side INDISS:      {with:>6} bytes");
    println!();
    println!("the UPnP leg (M-SEARCH, 200 OK, description fetch) never leaves the");
    println!("service host; the cross-node traffic stays SLP-shaped.");
}
