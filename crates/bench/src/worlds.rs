//! The scenario engine: compiles a parsed `World = { … }` block into a
//! seeded deterministic run.
//!
//! A world is declared as §3 config text (see the texts in
//! [`matrix`]), parsed by [`IndissConfig::from_system_sdp`] into an
//! [`indiss_core::WorldSpec`], and executed by [`run_world`]:
//!
//! - `Gateways` mesh-federated [`MeshNode`]s over one shared
//!   [`SimTransport`] bus, each behind its own [`FaultTransport`]
//!   ingress wrapper carrying the world's shared fault rates plus that
//!   gateway's scheduled `Cut` windows (virtual-time partitions);
//! - churn driven per engine tick: seeded arrivals re-announce
//!   services at their home gateways, departures leave records to die
//!   by TTL;
//! - `Move` scripts re-home a service to a new gateway mid-run (the
//!   mobility axis — the handover must converge to one live record);
//! - an adversarial injector drawing malformed datagrams from the
//!   fuzzer's [`MutationSource`] strategy mix and firing them at the
//!   gateways' mesh ports;
//! - deterministic delivery probes with an exponential-backoff retry
//!   state machine (the tracker population is itself a bounded
//!   resource under assertion);
//! - an optional million-record soak phase with bounded-memory
//!   assertions settled through [`MemoryBudget`].
//!
//! Every step draws from SplitMix64 streams derived from the world's
//! seed and advances a virtual clock — no wall time, no global state —
//! so a same-seed rerun reproduces the run bit for bit, which
//! [`WorldOutcome::digest`] fingerprints and the `request_storm
//! --worlds` gate checks by running the whole matrix twice.

use std::net::{Ipv4Addr, SocketAddrV4};
use std::sync::Arc;
use std::time::Duration;

use indiss_core::{
    chrome_trace_json, Event, EventStream, IndissConfig, MemoryBudget, MeshConfig, MeshNode,
    MutationSource, RegistryConfig, ScenarioRng, SdpProtocol, ServiceRegistry, SimClock, Symbol,
    Tracer, WorldSpec,
};
use indiss_net::{
    Datagram, FaultStats, FaultTransport, SimTime, SimTransport, Transport, TransportSocket,
};

/// Extra delivery checks a probe gets after its first miss, spaced
/// `2^attempt` ticks apart.
const PROBE_RETRIES: u32 = 3;
/// Fresh probes issued per engine tick.
const PROBES_PER_TICK: usize = 8;
/// Soak-record lease length, seconds. Short on purpose: the flood must
/// churn *through* the stores, not accumulate in them.
const SOAK_TTL_SECS: u32 = 4;
/// Soak sweep/collect cadence, in records. At one advert per virtual
/// millisecond this sweeps a little slower than the soak TTL lapses,
/// so the live population stays near `rate × TTL`, far below the
/// flood's size.
const SOAK_SWEEP_EVERY: u64 = 4096;

/// A named world from the scenario matrix: the §3 config text it was
/// declared as, and the validated spec parsed back out of it.
#[derive(Debug, Clone)]
pub struct NamedWorld {
    /// Stable row name for BENCH_storm.json.
    pub name: &'static str,
    /// The full `System SDP = { … World = { … } }` declaration.
    pub text: String,
    /// The spec the text parses to.
    pub spec: WorldSpec,
}

/// Everything one world run produces. Deterministic fields feed
/// [`WorldOutcome::digest`]; the interner numbers do *not* (the
/// interner is process-global, so its absolute size depends on what
/// ran before — only the budget verdict is stable).
#[derive(Debug, Clone)]
pub struct WorldOutcome {
    /// The world's row name.
    pub name: String,
    /// Total node population (gateways + service hosts).
    pub nodes: u64,
    /// Mesh gateway count.
    pub gateways: u32,
    /// Service population.
    pub services: u32,
    /// Engine ticks the main phase ran.
    pub ticks: u64,
    /// Adverts recorded across the run (initial + churn + moves + soak).
    pub adverts_sent: u64,
    /// Churn departures (records left to die by TTL).
    pub departures: u64,
    /// Mobility moves applied.
    pub moves_applied: u64,
    /// Delivery probes issued.
    pub probes_issued: u64,
    /// Probes that found their service at the target gateway, on the
    /// first check or any retry.
    pub probes_delivered: u64,
    /// `probes_delivered / probes_issued`, percent.
    pub delivery_pct: f64,
    /// Settle rounds after the main phase until every gateway's
    /// content digest agreed.
    pub convergence_rounds: u64,
    /// Whether the digests agreed within the settle budget.
    pub converged: bool,
    /// Malformed datagrams injected from the mutation fuzzer.
    pub injected: u64,
    /// Mesh frames rejected across all gateways (bad magic, bad
    /// signature, bad body — the injector's traffic dies here).
    pub frames_rejected: u64,
    /// Fault-layer counters summed over every gateway's transport.
    pub faults: FaultStats,
    /// Highest single-gateway record count at any sampled point.
    pub peak_records: u64,
    /// Records still live (summed) after the final sweep.
    pub final_records: u64,
    /// Highest single custody buffer depth at any tick.
    pub peak_custody: u64,
    /// Highest in-flight probe-tracker population at any tick.
    pub peak_tracker: u64,
    /// Soak adverts pushed (0 unless the world declared a soak).
    pub soak_records: u64,
    /// Live interned bytes before the run (after a collect).
    pub interned_before: u64,
    /// Live interned bytes after teardown and a collect.
    pub interned_after: u64,
    /// Whether interner growth stayed within the declared budget
    /// (vacuously true when the world declared none).
    pub within_memory_budget: bool,
    /// FNV-1a fold over the run's deterministic trace: per-tick record
    /// counts, probe outcomes, final digests, mesh and fault counters.
    /// Two same-seed runs must agree on this exactly.
    pub digest: u64,
    /// Chrome/Perfetto trace of the run's gossip-round spans, exported
    /// from a virtual-time [`Tracer`] attached to every mesh node.
    /// Entirely a function of the spec: two same-seed runs must agree
    /// on this **byte for byte** (the replay gate alongside `digest`).
    pub trace_json: String,
}

/// One in-flight delivery probe: which service, where it is being
/// looked for, and the exponential-backoff retry state.
struct Probe {
    service: usize,
    target: usize,
    attempts: u32,
    next_check_tick: u64,
}

/// FNV-1a accumulator for the replay digest.
struct Digest(u64);

impl Digest {
    fn fold(&mut self, value: u64) {
        for b in value.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

fn sum_faults(acc: &mut FaultStats, s: &FaultStats) {
    acc.dropped += s.dropped;
    acc.duplicated += s.duplicated;
    acc.reordered += s.reordered;
    acc.corrupted += s.corrupted;
    acc.delayed += s.delayed;
    acc.partitioned += s.partitioned;
    acc.time_partitioned += s.time_partitioned;
}

/// The live state of one world run.
struct Engine<'a> {
    spec: &'a WorldSpec,
    tick: Duration,
    ports: Vec<u16>,
    lanes: Vec<Arc<FaultTransport>>,
    nodes: Vec<(ServiceRegistry, MeshNode)>,
    injector: Arc<dyn TransportSocket>,
    mutations: MutationSource,
    rng: ScenarioRng,
    home: Vec<usize>,
    alive_until: Vec<SimTime>,
    pending: Vec<Probe>,
    digest: Digest,
    adverts_sent: u64,
    departures: u64,
    moves_applied: u64,
    injected: u64,
    probes_issued: u64,
    probes_delivered: u64,
    peak_records: u64,
    peak_custody: u64,
    peak_tracker: u64,
}

impl Engine<'_> {
    fn ty_name(&self, s: usize) -> String {
        format!("w{:08x}-s{s}", self.spec.seed)
    }

    fn advert(&self, s: usize) -> EventStream {
        EventStream::framed(vec![
            Event::ServiceAlive,
            Event::ServiceType(self.ty_name(s).into()),
            Event::ResServUrl(format!("slp://svc{s}/w{:08x}", self.spec.seed)),
            Event::ResTtl(self.spec.advert_ttl_secs),
        ])
    }

    /// Announces service `s` at its current home gateway and publishes
    /// the advert into the mesh (custody picks it up if a peer is down).
    fn announce(&mut self, s: usize, now: SimTime) {
        let stream = self.advert(s);
        let (reg, mesh) = &self.nodes[self.home[s]];
        reg.record_advert(SdpProtocol::Slp, &stream, now);
        mesh.publish(SdpProtocol::Slp, &stream, now);
        self.alive_until[s] =
            now.saturating_add(Duration::from_secs(u64::from(self.spec.advert_ttl_secs)));
        self.adverts_sent += 1;
    }

    /// A probe hits when the service is still alive (by the engine's
    /// own lease bookkeeping) and its record is queryable at the
    /// target gateway.
    fn probe_hit(&self, p: &Probe, now: SimTime) -> bool {
        self.alive_until[p.service] > now
            && self.nodes[p.target].0.contains_type(self.ty_name(p.service).as_str(), now)
    }

    /// One engine tick: mobility, churn, injection, a gossip round
    /// everywhere, TTL sweeps, probe retries, fresh probes, and the
    /// population watermarks folded into the replay digest. The settle
    /// phase runs the same loop with `churn` off.
    fn tick(&mut self, t: u64, now: SimTime, churn: bool) {
        for lane in &self.lanes {
            lane.set_now(now);
        }

        if churn {
            // Mobility scripts scheduled inside this tick's window.
            let tick_end = now.saturating_add(self.tick);
            for i in 0..self.spec.moves.len() {
                let mv = self.spec.moves[i];
                let at = SimTime::from_secs(u64::from(mv.at_secs));
                let s = mv.service as usize;
                if at >= now && at < tick_end && self.home[s] == mv.from_gateway as usize {
                    self.home[s] = mv.to_gateway as usize;
                    self.announce(s, now);
                    self.moves_applied += 1;
                }
            }

            // Churn: arrivals re-announce, departures go silent.
            for _ in 0..self.spec.churn_arrivals_per_tick {
                let s = self.rng.below(self.spec.services as usize);
                self.announce(s, now);
            }
            for _ in 0..self.spec.churn_departures_per_tick {
                let s = self.rng.below(self.spec.services as usize);
                if self.alive_until[s] > now {
                    self.alive_until[s] = now;
                    self.departures += 1;
                }
            }

            // Adversarial traffic at the mesh ports. The victim's own
            // ingress fault lane still applies to these datagrams.
            for _ in 0..self.spec.inject_per_tick {
                let payload = self.mutations.next_input();
                let port = self.ports[self.rng.below(self.ports.len())];
                let _ =
                    self.injector.send_to(&payload, SocketAddrV4::new(Ipv4Addr::LOCALHOST, port));
                self.injected += 1;
            }
        }

        // One gossip round everywhere, then TTL sweeps.
        for (_, mesh) in &self.nodes {
            mesh.run_round(now);
        }
        for (reg, _) in &self.nodes {
            reg.sweep(now);
        }

        // Probe retries due this tick.
        let mut pending = std::mem::take(&mut self.pending);
        pending.retain_mut(|p| {
            if p.next_check_tick > t {
                return true;
            }
            if self.probe_hit(p, now) {
                self.probes_delivered += 1;
                return false;
            }
            if self.alive_until[p.service] <= now || p.attempts >= PROBE_RETRIES {
                return false; // failed, or the service legitimately left
            }
            p.attempts += 1;
            p.next_check_tick = t + (1 << p.attempts);
            true
        });
        self.pending = pending;

        // Fresh probes: a live service looked up at a foreign gateway.
        if churn {
            for _ in 0..PROBES_PER_TICK {
                let s = self.rng.below(self.spec.services as usize);
                let mut target = self.rng.below(self.nodes.len());
                if self.alive_until[s] <= now {
                    continue;
                }
                if target == self.home[s] {
                    target = (target + 1) % self.nodes.len();
                }
                self.probes_issued += 1;
                let probe = Probe { service: s, target, attempts: 0, next_check_tick: t };
                if self.probe_hit(&probe, now) {
                    self.probes_delivered += 1;
                } else {
                    self.pending.push(Probe { next_check_tick: t + 1, ..probe });
                }
            }
        }

        // Population and custody watermarks, folded into the digest.
        let mut tick_records = 0u64;
        for (g, (reg, mesh)) in self.nodes.iter().enumerate() {
            let count = reg.record_count() as u64;
            self.peak_records = self.peak_records.max(count);
            tick_records = tick_records.wrapping_add(count.wrapping_mul(g as u64 + 1));
            for &peer in &self.ports {
                if peer != self.ports[g] {
                    self.peak_custody = self.peak_custody.max(mesh.custody_len(peer) as u64);
                }
            }
        }
        self.peak_tracker = self.peak_tracker.max(self.pending.len() as u64);
        self.digest.fold(t);
        self.digest.fold(tick_records);
        self.digest.fold(self.probes_delivered);
    }
}

/// Runs one world to completion and checks its declared assertions.
/// `enforce_delivery` additionally gates `Assert MinDeliveryPct` —
/// the full-mode bar; smoke runs report the rate without gating it.
///
/// # Panics
///
/// When a declared assertion fails — bounded memory, registry,
/// custody, or tracker population, or (when enforced) the delivery
/// floor.
pub fn run_world(name: &str, spec: &WorldSpec, enforce_delivery: bool) -> WorldOutcome {
    spec.validate().expect("matrix worlds are pre-validated");
    let budget =
        MemoryBudget::capture(spec.asserts.max_interned_bytes.map_or(usize::MAX, |b| b as usize));

    // The sim is scoped inside run_world_sim: every registry, mesh
    // node and transport has dropped before the budget settles, so the
    // collect below reclaims everything only the run kept alive.
    let mut outcome = run_world_sim(name, spec);
    let settlement = budget.settle();
    outcome.interned_before = settlement.interned_before as u64;
    outcome.interned_after = settlement.interned_after as u64;
    outcome.within_memory_budget = settlement.within_budget();

    if spec.asserts.max_interned_bytes.is_some() {
        settlement.assert_within(name);
    }
    if let Some(max) = spec.asserts.max_registry_records {
        assert!(
            outcome.peak_records <= max,
            "{name}: peak registry records {} exceed the declared bound {max}",
            outcome.peak_records
        );
    }
    if let Some(max) = spec.asserts.max_custody {
        assert!(
            outcome.peak_custody <= max,
            "{name}: peak custody depth {} exceeds the declared bound {max}",
            outcome.peak_custody
        );
    }
    if let Some(max) = spec.asserts.max_tracker_entries {
        assert!(
            outcome.peak_tracker <= max,
            "{name}: peak tracker population {} exceeds the declared bound {max}",
            outcome.peak_tracker
        );
    }
    if enforce_delivery {
        if let Some(min) = spec.asserts.min_delivery_pct {
            assert!(
                outcome.delivery_pct >= f64::from(min),
                "{name}: delivery {:.1}% below the declared {min}% floor",
                outcome.delivery_pct
            );
        }
    }
    outcome
}

fn run_world_sim(name: &str, spec: &WorldSpec) -> WorldOutcome {
    let gateways = spec.gateways as usize;
    let services = spec.services as usize;
    let tick_ms = u64::from(spec.tick_millis);
    let ticks = spec.ticks();

    // One shared bus; each gateway binds through its own fault wrapper
    // carrying the shared rates plus that gateway's scheduled cuts.
    let bus: Arc<SimTransport> = Arc::new(SimTransport::new());
    let ports: Vec<u16> = (0..spec.gateways as u16).map(|i| 7400 + i).collect();
    let lanes: Vec<Arc<FaultTransport>> = (0..gateways)
        .map(|g| {
            let mut plan =
                spec.fault.plan(spec.seed ^ (g as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            plan.time_partitions =
                spec.cuts.iter().filter(|c| c.gateway as usize == g).map(|c| c.window()).collect();
            Arc::new(FaultTransport::wrap(Arc::clone(&bus) as Arc<dyn Transport>, plan))
        })
        .collect();
    // One tracer shared by every mesh node: gossip rounds land as
    // zero-width virtual-time spans (lane = mesh port), so the exported
    // trace is a pure function of the spec — the byte-identical replay
    // gate rides on the same property the digest does. One ring keeps
    // export order exactly the single-threaded sim's write order.
    let tracer = Tracer::new(8192, 1, &[], Arc::new(SimClock::new()));
    let nodes: Vec<(ServiceRegistry, MeshNode)> = (0..gateways)
        .map(|g| {
            let registry =
                ServiceRegistry::new(RegistryConfig { shards: 2, ..RegistryConfig::default() });
            let mesh = MeshNode::new(
                registry.clone(),
                Arc::clone(&lanes[g]) as Arc<dyn Transport>,
                MeshConfig { port: ports[g], peers: ports.clone(), ..MeshConfig::default() },
            );
            mesh.set_tracer(tracer.clone());
            mesh.start().expect("sim mesh always binds");
            (registry, mesh)
        })
        .collect();

    // The adversarial injector: a raw client on the bus firing the
    // fuzzer's strategy mix at the mesh ports. The corpus is real
    // foreign-protocol wire plus near-miss mesh bytes and soup —
    // cross-protocol confusion on the mesh port is exactly what a
    // hostile LAN serves up.
    let injector = bus.bind_client(Arc::new(|_d: Datagram| {})).expect("sim client always binds");
    let mut mesh_bait = 0x1D15_5000_0000_4EEDu64.to_be_bytes().to_vec();
    mesh_bait.extend_from_slice(b"\x01\x03not-a-real-mesh-frame");
    let mutations = MutationSource::new(
        spec.seed ^ 0x1D15_5F00_D5EE_D003,
        vec![
            indiss_slp::Message::new(
                indiss_slp::Header::new(indiss_slp::FunctionId::SrvRqst, 77, "en"),
                indiss_slp::Body::SrvRqst(indiss_slp::SrvRqst {
                    prlist: String::new(),
                    service_type: "service:storm".into(),
                    scopes: "DEFAULT".into(),
                    predicate: String::new(),
                    spi: String::new(),
                }),
            )
            .encode()
            .expect("encodable"),
            b"NOTIFY * HTTP/1.1\r\nNT: urn:x:storm:1\r\nNTS: ssdp:alive\r\n\r\n".to_vec(),
            mesh_bait,
            vec![0x41; 512],
        ],
    );

    let mut engine = Engine {
        spec,
        tick: Duration::from_millis(tick_ms),
        ports,
        lanes,
        nodes,
        injector,
        mutations,
        rng: ScenarioRng::new(spec.seed),
        home: (0..services).map(|s| s % gateways).collect(),
        alive_until: vec![SimTime::default(); services],
        pending: Vec::new(),
        digest: Digest(0xCBF2_9CE4_8422_2325),
        adverts_sent: 0,
        departures: 0,
        moves_applied: 0,
        injected: 0,
        probes_issued: 0,
        probes_delivered: 0,
        peak_records: 0,
        peak_custody: 0,
        peak_tracker: 0,
    };

    // t=0: the initial population announces at its home gateways.
    let t0 = SimTime::from_millis(1);
    for s in 0..services {
        engine.announce(s, t0);
    }

    // Main phase: churn, moves, injection, probes.
    let at = |t: u64| t0.saturating_add(Duration::from_millis(tick_ms * (t + 1)));
    for t in 0..ticks {
        engine.tick(t, at(t), true);
    }

    // Settle phase: no new work; gossip drains, TTLs lapse, pending
    // probes get their retries. Convergence is content-digest
    // agreement across every gateway.
    let settle_budget = u64::from(spec.advert_ttl_secs) * 1000 / tick_ms + 8;
    let mut convergence_rounds = 0u64;
    let mut converged = false;
    for r in 1..=settle_budget {
        let t = ticks + r - 1;
        let now = at(t);
        engine.tick(t, now, false);
        if !converged {
            convergence_rounds = r;
            let d0 = engine.nodes[0].0.content_digest(now);
            if engine.nodes.iter().all(|(reg, _)| reg.content_digest(now) == d0) {
                converged = true;
            }
        }
        if converged && engine.pending.is_empty() {
            break;
        }
    }
    engine.pending.clear();

    // Soak phase: a flood of short-lived records through the
    // registries at one advert per virtual millisecond, swept and
    // symbol-collected on a cadence, so the stores and the interner
    // are exercised far past the live population without ever holding
    // more than a TTL's worth of it.
    let soak_base = at(ticks + settle_budget + 2);
    if spec.soak_records > 0 {
        for r in 0..spec.soak_records {
            let now = soak_base.saturating_add(Duration::from_millis(r));
            let g = (r % gateways as u64) as usize;
            let stream = EventStream::framed(vec![
                Event::ServiceAlive,
                Event::ServiceType(format!("w{:08x}-soak-{r}", spec.seed).into()),
                Event::ResServUrl(format!("slp://soak/{r}")),
                Event::ResTtl(SOAK_TTL_SECS),
            ]);
            engine.nodes[g].0.record_advert(SdpProtocol::Slp, &stream, now);
            engine.adverts_sent += 1;
            if r % SOAK_SWEEP_EVERY == SOAK_SWEEP_EVERY - 1 {
                let mut live = 0u64;
                for (reg, _) in &engine.nodes {
                    reg.sweep(now);
                    let count = reg.record_count() as u64;
                    engine.peak_records = engine.peak_records.max(count);
                    live += count;
                }
                Symbol::collect();
                engine.digest.fold(r);
                engine.digest.fold(live);
            }
        }
        // Let every soak lease lapse and sweep the stores clean.
        let drained = soak_base
            .saturating_add(Duration::from_millis(spec.soak_records))
            .saturating_add(Duration::from_secs(u64::from(SOAK_TTL_SECS) + 2));
        for (reg, _) in &engine.nodes {
            reg.sweep(drained);
        }
    }

    // Final sweep far past every lease, then fold the final state:
    // per-gateway content digests, mesh counters, fault counters.
    let final_at = soak_base.saturating_add(Duration::from_secs(86_400 * 30));
    for (reg, _) in &engine.nodes {
        reg.sweep(final_at);
    }
    let final_records: u64 = engine.nodes.iter().map(|(reg, _)| reg.record_count() as u64).sum();

    let mut frames_rejected = 0u64;
    let mut faults = FaultStats::default();
    for (g, (reg, mesh)) in engine.nodes.iter().enumerate() {
        engine.digest.fold(g as u64);
        engine.digest.fold(reg.content_digest(final_at));
        let stats = mesh.stats();
        frames_rejected += stats.frames_rejected;
        for v in [
            stats.rounds_run,
            stats.digests_sent,
            stats.digests_received,
            stats.digest_resyncs,
            stats.acks_sent,
            stats.acks_received,
            stats.pulls_sent,
            stats.pulls_received,
            stats.records_sent,
            stats.records_received,
            stats.records_applied,
            stats.records_stale,
            stats.frames_rejected,
            stats.custody_enqueued,
            stats.custody_replayed,
            stats.peers_down,
            stats.peers_reconnected,
        ] {
            engine.digest.fold(v);
        }
        let fs = engine.lanes[g].fault_stats();
        sum_faults(&mut faults, &fs);
        engine.digest.fold(fs.total());
    }
    for v in [
        engine.adverts_sent,
        engine.departures,
        engine.injected,
        engine.probes_issued,
        engine.probes_delivered,
        convergence_rounds,
    ] {
        engine.digest.fold(v);
    }

    WorldOutcome {
        name: name.to_owned(),
        nodes: spec.nodes(),
        gateways: spec.gateways,
        services: spec.services,
        ticks,
        adverts_sent: engine.adverts_sent,
        departures: engine.departures,
        moves_applied: engine.moves_applied,
        probes_issued: engine.probes_issued,
        probes_delivered: engine.probes_delivered,
        delivery_pct: engine.probes_delivered as f64 / engine.probes_issued.max(1) as f64 * 100.0,
        convergence_rounds,
        converged,
        injected: engine.injected,
        frames_rejected,
        faults,
        peak_records: engine.peak_records,
        final_records,
        peak_custody: engine.peak_custody,
        peak_tracker: engine.peak_tracker,
        soak_records: spec.soak_records,
        interned_before: 0, // settled by run_world, outside the sim scope
        interned_after: 0,
        within_memory_budget: true,
        digest: engine.digest.0,
        trace_json: chrome_trace_json(&tracer.snapshot()),
    }
}

/// Declares the scenario matrix as §3 config text and parses each
/// world back out. `smoke` scales soak size, durations and injection
/// down for CI while keeping every world's *shape* — including the
/// ≥ 1000-node churn world and the mobility world — identical to the
/// full matrix.
///
/// # Panics
///
/// When a matrix text fails to parse — the texts are part of the
/// build, so that is a bug, not an input error.
pub fn matrix(smoke: bool) -> Vec<NamedWorld> {
    let churn_duration = if smoke { 8 } else { 30 };
    let mobility_duration = if smoke { 12 } else { 20 };
    let inject_per_tick = if smoke { 20 } else { 100 };
    let soak_records = if smoke { 20_000 } else { 1_000_000 };

    let declarations: Vec<(&'static str, String)> = vec![
        (
            "baseline_quiet",
            "System SDP = {\n\
               Component Unit SLP(port=427);\n\
               World = {\n\
                 Seed = 11; Gateways = 3; Services = 24;\n\
                 DurationSecs = 6; TickMillis = 500;\n\
                 ChurnArrivalsPerTick = 4; ChurnDeparturesPerTick = 2;\n\
                 AdvertTtlSecs = 8;\n\
                 Assert = { MinDeliveryPct = 90; MaxRegistryRecords = 4096;\n\
                            MaxTrackerEntries = 64 };\n\
               };\n\
             }"
            .to_owned(),
        ),
        (
            "churn_1204_nodes",
            format!(
                "System SDP = {{\n\
                   Component Unit SLP(port=427);\n\
                   World = {{\n\
                     Seed = 22; Gateways = 4; Services = 1200;\n\
                     DurationSecs = {churn_duration}; TickMillis = 500;\n\
                     ChurnArrivalsPerTick = 40; ChurnDeparturesPerTick = 30;\n\
                     AdvertTtlSecs = 8;\n\
                     Fault = {{ DropPct = 5; ReorderPct = 5 }};\n\
                     Assert = {{ MinDeliveryPct = 80; MaxRegistryRecords = 4096;\n\
                                MaxTrackerEntries = 128 }};\n\
                   }};\n\
                 }}"
            ),
        ),
        (
            "mobility_cut",
            format!(
                "System SDP = {{\n\
                   Component Unit SLP(port=427);\n\
                   World = {{\n\
                     Seed = 33; Gateways = 3; Services = 30;\n\
                     DurationSecs = {mobility_duration}; TickMillis = 500;\n\
                     ChurnArrivalsPerTick = 6; ChurnDeparturesPerTick = 1;\n\
                     AdvertTtlSecs = 8;\n\
                     Cut = {{ Gateway = 1; FromSecs = 2; ToSecs = 5 }};\n\
                     Move = {{ Service = 3; From = 0; To = 2; AtSecs = 3 }};\n\
                     Move = {{ Service = 7; From = 1; To = 0; AtSecs = 6 }};\n\
                     Assert = {{ MinDeliveryPct = 80; MaxCustody = 64;\n\
                                MaxTrackerEntries = 64 }};\n\
                   }};\n\
                 }}"
            ),
        ),
        (
            "adversarial_inject",
            format!(
                "System SDP = {{\n\
                   Component Unit SLP(port=427);\n\
                   World = {{\n\
                     Seed = 44; Gateways = 4; Services = 40;\n\
                     DurationSecs = 8; TickMillis = 500;\n\
                     ChurnArrivalsPerTick = 8; ChurnDeparturesPerTick = 4;\n\
                     AdvertTtlSecs = 8; InjectPerTick = {inject_per_tick};\n\
                     Fault = {{ DropPct = 10; CorruptPct = 5; DelayPct = 5;\n\
                               ReorderPct = 5; DuplicatePct = 3 }};\n\
                     Assert = {{ MaxInternedBytes = 262144; MaxRegistryRecords = 4096;\n\
                                MaxTrackerEntries = 128 }};\n\
                   }};\n\
                 }}"
            ),
        ),
        (
            "soak_million",
            format!(
                "System SDP = {{\n\
                   Component Unit SLP(port=427);\n\
                   World = {{\n\
                     Seed = 55; Gateways = 2; Services = 8;\n\
                     DurationSecs = 4; TickMillis = 500;\n\
                     SoakRecords = {soak_records};\n\
                     AdvertTtlSecs = 8;\n\
                     Assert = {{ MaxInternedBytes = 262144; MaxRegistryRecords = 4096;\n\
                                MaxCustody = 64; MaxTrackerEntries = 64 }};\n\
                   }};\n\
                 }}"
            ),
        ),
    ];

    declarations
        .into_iter()
        .map(|(name, text)| {
            let config = IndissConfig::from_system_sdp(&text)
                .unwrap_or_else(|e| panic!("matrix world '{name}' must parse: {e}"));
            let spec = config.world.unwrap_or_else(|| panic!("matrix world '{name}' has no World"));
            NamedWorld { name, text, spec }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_declares_the_required_worlds() {
        let worlds = matrix(true);
        assert!(worlds.len() >= 4, "the matrix carries at least four worlds");
        assert!(
            worlds.iter().any(|w| w.spec.nodes() >= 1000 && w.spec.churn_arrivals_per_tick > 0),
            "a >=1000-node churn world is present"
        );
        assert!(worlds.iter().any(|w| !w.spec.moves.is_empty()), "a mobility world is present");
        assert!(worlds.iter().any(|w| w.spec.soak_records >= 10_000), "a soak world is present");
        assert!(
            worlds.iter().any(|w| w.spec.inject_per_tick > 0),
            "an adversarial-injection world is present"
        );
        for w in &worlds {
            w.spec.validate().expect("every matrix world validates");
        }
        // Full mode scales up, never down.
        let full = matrix(false);
        let full_soak = full.iter().find(|w| w.name == "soak_million").expect("soak world");
        assert_eq!(full_soak.spec.soak_records, 1_000_000);
    }

    #[test]
    fn baseline_world_replays_digest_identically() {
        let worlds = matrix(true);
        let baseline = worlds.iter().find(|w| w.name == "baseline_quiet").expect("baseline");
        let a = run_world(baseline.name, &baseline.spec, false);
        let b = run_world(baseline.name, &baseline.spec, false);
        assert_eq!(a.digest, b.digest, "same seed, same world, same digest");
        assert_eq!(a.probes_delivered, b.probes_delivered);
        assert_eq!(a.faults, b.faults);
        assert!(a.converged, "the quiet world converges: {a:?}");
        assert!(a.probes_issued > 0);
        assert!(a.delivery_pct >= 80.0, "quiet world delivers: {a:?}");
    }

    #[test]
    fn baseline_world_trace_export_is_replay_identical() {
        let worlds = matrix(true);
        let baseline = worlds.iter().find(|w| w.name == "baseline_quiet").expect("baseline");
        let a = run_world(baseline.name, &baseline.spec, false);
        let b = run_world(baseline.name, &baseline.spec, false);
        assert!(!a.trace_json.is_empty());
        assert_eq!(a.trace_json, b.trace_json, "same seed, byte-identical trace export");
        let events = indiss_core::validate_chrome_trace(&a.trace_json)
            .expect("exported trace parses as Chrome trace JSON");
        assert!(events > 0, "the mesh ran gossip rounds, so spans were recorded");
    }

    #[test]
    fn mobility_world_applies_its_moves() {
        let worlds = matrix(true);
        let mobility = worlds.iter().find(|w| w.name == "mobility_cut").expect("mobility");
        let outcome = run_world(mobility.name, &mobility.spec, false);
        assert_eq!(outcome.moves_applied, 2, "both Move scripts fired: {outcome:?}");
        assert!(outcome.converged, "handover converges after the cut: {outcome:?}");
        assert!(
            outcome.faults.time_partitioned > 0,
            "the Cut window actually severed traffic: {outcome:?}"
        );
    }
}
