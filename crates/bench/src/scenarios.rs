//! The measurement scenarios of the paper's §4.3 (Figs. 7, 8, 9) and
//! §4.2 (Fig. 6), parameterized by seed for the median-of-30 methodology.
//!
//! Every scenario builds a fresh two-node world (client host + service
//! host, 10 Mb/s LAN), deploys the pieces, and returns the *client's
//! waiting time to get an answer* in virtual time — the paper's metric.

use std::net::SocketAddrV4;
use std::time::Duration;

use indiss_core::{AdaptationPolicy, DiscoveryMode, Indiss, IndissConfig};
use indiss_net::{Collector, Completion, SimTime, World};
use indiss_slp::{
    AttributeList, Registration, ServiceAgent, SlpConfig, UserAgent, SLP_MULTICAST_GROUP, SLP_PORT,
};
use indiss_ssdp::SearchTarget;
use indiss_upnp::{ClockDevice, ControlPoint, ControlPointConfig, UpnpConfig};

/// Where INDISS is deployed, per the paper's §4.2/§4.3 use cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deployment {
    /// Co-located with the client.
    ClientSide,
    /// Co-located with the service.
    ServiceSide,
    /// On a third, dedicated node.
    Gateway,
}

/// Which translation direction is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// SLP client searching a UPnP service.
    SlpToUpnp,
    /// UPnP client searching an SLP service.
    UpnpToSlp,
}

/// Fig. 7 left: native SLP→SLP response time.
pub fn native_slp(seed: u64) -> Option<Duration> {
    let world = World::new(seed);
    let service_node = world.add_node("slp-service");
    let client_node = world.add_node("slp-client");
    let sa = ServiceAgent::start(&service_node, SlpConfig::default()).ok()?;
    sa.register(
        Registration::new(
            "service:clock://10.0.0.1:4005",
            AttributeList::parse("(friendlyName=SLP Clock)").ok()?,
        )
        .ok()?,
    );
    let ua = UserAgent::start(&client_node, SlpConfig::default()).ok()?;
    let (_first, done) = ua.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_secs(5));
    done.take()?.response_time()
}

/// Fig. 7 right: native UPnP→UPnP response time (first SSDP answer).
pub fn native_upnp(seed: u64) -> Option<Duration> {
    let world = World::new(seed);
    let service_node = world.add_node("upnp-device");
    let client_node = world.add_node("upnp-cp");
    let _clock = ClockDevice::start(&service_node, UpnpConfig::default()).ok()?;
    let cp = ControlPoint::start(&client_node, ControlPointConfig::default()).ok()?;
    world.run_for(Duration::from_millis(10)); // initial announcements
    let t0 = world.now();
    let (first, _all) = cp.search(&world, SearchTarget::device_urn("clock", 1));
    world.run_for(Duration::from_secs(5));
    let hit_at: Completion<SimTime> = Completion::new();
    if let Some(d) = first.take() {
        hit_at.complete(d.last_seen);
    }
    Some(hit_at.take()? - t0)
}

/// Figs. 8/9: response time through INDISS, parameterized by deployment,
/// direction and cache warmth. Returns the client's waiting time.
pub fn bridged(
    seed: u64,
    deployment: Deployment,
    direction: Direction,
    warm: bool,
) -> Option<Duration> {
    let world = World::new(seed);
    let service_node = world.add_node("service-host");
    let client_node = world.add_node("client-host");
    let indiss_node = match deployment {
        Deployment::ServiceSide => service_node.clone(),
        Deployment::ClientSide => client_node.clone(),
        Deployment::Gateway => world.add_node("gateway"),
    };
    let _indiss = Indiss::deploy(&indiss_node, IndissConfig::slp_upnp()).ok()?;

    match direction {
        Direction::SlpToUpnp => {
            let _clock = ClockDevice::start(&service_node, UpnpConfig::default()).ok()?;
            let ua = UserAgent::start(&client_node, SlpConfig::default()).ok()?;
            world.run_for(Duration::from_millis(10));
            if warm {
                let (_f, d) = ua.find_services(&world, "service:clock", "");
                world.run_for(Duration::from_secs(2));
                d.take()?;
            }
            let (_first, done) = ua.find_services(&world, "service:clock", "");
            world.run_for(Duration::from_secs(5));
            done.take()?.response_time()
        }
        Direction::UpnpToSlp => {
            let sa = ServiceAgent::start(&service_node, SlpConfig::default()).ok()?;
            sa.register(
                Registration::new(
                    "service:clock://10.0.0.1:4005/service/timer",
                    AttributeList::parse("(friendlyName=SLP Clock)").ok()?,
                )
                .ok()?,
            );
            let cp = ControlPoint::start(&client_node, ControlPointConfig::default()).ok()?;
            world.run_for(Duration::from_millis(10));
            if warm {
                let (_f, all) = cp.search(&world, SearchTarget::device_urn("clock", 1));
                world.run_for(Duration::from_secs(2));
                all.take()?;
            }
            let t0 = world.now();
            let (first, _all) = cp.search(&world, SearchTarget::device_urn("clock", 1));
            world.run_for(Duration::from_secs(5));
            Some(first.take()?.last_seen - t0)
        }
    }
}

/// The dual-stack baseline (Table 2's no-INDISS alternative): the client
/// hosts *both* native stacks and uses the service's own protocol — so
/// response time equals the native path, at twice the footprint.
pub fn dual_stack_upnp(seed: u64) -> Option<Duration> {
    // Identical wire behaviour to native UPnP; the cost difference is
    // footprint (see the table2 binary), not latency.
    native_upnp(seed)
}

/// Result of the Fig. 6 adaptation scenario.
#[derive(Debug, Clone)]
pub struct AdaptationOutcome {
    /// Virtual time at which INDISS switched to the active mode, if ever.
    pub went_active_at: Option<SimTime>,
    /// Virtual time at which the passive SLP listener first heard the
    /// (translated) advertisement of the UPnP service, if ever.
    pub discovered_at: Option<SimTime>,
    /// Mode transition log.
    pub mode_log: Vec<(SimTime, DiscoveryMode)>,
}

/// Fig. 6: a passive SLP client, a passive UPnP service (announcements
/// only) and INDISS on the service side. Without the traffic-threshold
/// switch the client can never discover the service; with it, INDISS
/// re-advertises.
///
/// `background_traffic_bps` injects chatter between two extra nodes to
/// keep the network busy (above-threshold ⇒ INDISS stays passive).
pub fn adaptation(seed: u64, background_traffic_bps: u64) -> AdaptationOutcome {
    let world = World::new(seed);
    let service_node = world.add_node("upnp-device");
    let client_node = world.add_node("passive-slp-client");
    let _clock = ClockDevice::start(&service_node, UpnpConfig::default()).expect("clock");
    let indiss = Indiss::deploy(
        &service_node,
        IndissConfig::slp_upnp().with_adaptation(AdaptationPolicy {
            threshold_bytes_per_sec: 400.0,
            window: Duration::from_secs(2),
            check_interval: Duration::from_secs(2),
        }),
    )
    .expect("indiss");

    // The passive SLP client: listens on the SLP group, never sends.
    let listener = client_node.udp_bind(SLP_PORT).expect("bind");
    listener.join_multicast(SLP_MULTICAST_GROUP).expect("join");
    let heard: Completion<SimTime> = Completion::new();
    let heard2 = heard.clone();
    listener.on_receive(move |w, dgram| {
        if let Ok(msg) = indiss_slp::Message::decode(&dgram.payload) {
            if let indiss_slp::Body::SaAdvert(sa) = &msg.body {
                if sa.attrs.contains("clock") {
                    heard2.complete(w.now());
                }
            }
        }
    });

    // Optional background chatter to hold traffic above the threshold.
    if background_traffic_bps > 0 {
        let a = world.add_node("chatter-a");
        let b = world.add_node("chatter-b");
        let tx = a.udp_bind_ephemeral().expect("bind");
        let _rx = b.udp_bind(9000).expect("bind");
        let dst = SocketAddrV4::new(b.addr(), 9000);
        let payload = vec![0u8; 200];
        let interval =
            Duration::from_secs_f64(payload.len() as f64 / background_traffic_bps as f64);
        fn tick(
            world: &World,
            tx: indiss_net::UdpSocket,
            dst: SocketAddrV4,
            payload: Vec<u8>,
            interval: Duration,
        ) {
            let _ = tx.send_to(&payload, dst);
            let w2 = world.clone();
            world.schedule_in(interval, move |w| {
                let _ = &w2;
                tick(w, tx, dst, payload, interval);
            });
        }
        tick(&world, tx, dst, payload, interval);
    }

    world.run_for(Duration::from_secs(30));
    let mode_log = indiss.mode_log();
    let went_active_at =
        mode_log.iter().find(|(_, m)| *m == DiscoveryMode::Active).map(|(t, _)| *t);
    AdaptationOutcome { went_active_at, discovered_at: heard.take(), mode_log }
}

/// Collected traffic counters for the "no additional traffic" claim
/// (§4.3): bytes on the wire with and without INDISS for one discovery.
pub fn traffic_overhead(seed: u64) -> (u64, u64) {
    // Without INDISS: native SLP discovery.
    let without = {
        let world = World::new(seed);
        let service_node = world.add_node("svc");
        let client_node = world.add_node("cli");
        let sa = ServiceAgent::start(&service_node, SlpConfig::default()).expect("sa");
        sa.register(
            Registration::new("service:clock://10.0.0.1:4005", AttributeList::new()).expect("reg"),
        );
        let ua = UserAgent::start(&client_node, SlpConfig::default()).expect("ua");
        let (_f, d) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(2));
        let _ = d.take();
        world.meter_snapshot().total_bytes()
    };
    // With INDISS on the service side: the SLP leg is identical; the UPnP
    // leg is local to the service host (loopback is unmetered).
    let with = {
        let world = World::new(seed);
        let service_node = world.add_node("svc");
        let client_node = world.add_node("cli");
        let _clock = ClockDevice::start(&service_node, UpnpConfig::default()).expect("clock");
        let _indiss = Indiss::deploy(&service_node, IndissConfig::slp_upnp()).expect("indiss");
        let ua = UserAgent::start(&client_node, SlpConfig::default()).expect("ua");
        let (_f, d) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(2));
        let _ = d.take();
        world.meter_snapshot().total_bytes()
    };
    (without, with)
}

/// Event-count trace of the Fig. 4 clock scenario, for the per-step
/// narrative (returns the SLP request's parsed event names).
pub fn fig4_event_names() -> Vec<&'static str> {
    use indiss_core::{ParsedMessage, SlpUnit, SlpUnitConfig, Unit};
    let world = World::new(1);
    let node = world.add_node("indiss");
    let unit = SlpUnit::new(&node, SlpUnitConfig::default()).expect("unit");
    let msg = indiss_slp::Message::new(
        indiss_slp::Header::new(indiss_slp::FunctionId::SrvRqst, 1, "en"),
        indiss_slp::Body::SrvRqst(indiss_slp::SrvRqst {
            prlist: String::new(),
            service_type: "service:clock".into(),
            scopes: "DEFAULT".into(),
            predicate: String::new(),
            spi: String::new(),
        }),
    );
    let dgram = indiss_net::Datagram {
        src: "10.0.0.9:40000".parse().expect("addr"),
        dst: SocketAddrV4::new(SLP_MULTICAST_GROUP, SLP_PORT),
        payload: msg.encode().expect("encode"),
    };
    match unit.parse(&world, &dgram) {
        ParsedMessage::Request(stream) => stream.names().collect(),
        other => panic!("unexpected {other:?}"),
    }
}

/// Convenience used by several binaries: collect every deployment ×
/// direction combination's cold median.
pub fn location_matrix(
    seeds: std::ops::Range<u64>,
) -> Vec<(Deployment, Direction, crate::stats::Summary)> {
    let mut out = Vec::new();
    for deployment in [Deployment::ClientSide, Deployment::ServiceSide, Deployment::Gateway] {
        for direction in [Direction::SlpToUpnp, Direction::UpnpToSlp] {
            let summary = crate::stats::summarize(seeds.clone(), |seed| {
                bridged(seed, deployment, direction, false)
            });
            out.push((deployment, direction, summary));
        }
    }
    out
}

/// Result of the registry churn scenario.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// Advertisements injected across all three SDPs.
    pub adverts_sent: usize,
    /// Advertisements the runtime recorded.
    pub adverts_recorded: u64,
    /// Highest number of live records observed at any sampling instant.
    pub peak_records: usize,
    /// Records still alive after every TTL elapsed.
    pub final_records: usize,
    /// The configured registry capacity bound.
    pub record_capacity: usize,
    /// Records dropped by TTL expiry.
    pub records_expired: u64,
    /// Records dropped by the capacity bound.
    pub records_evicted: u64,
    /// Response-cache entries dropped by the LRU bound.
    pub cache_evictions: u64,
    /// Warm (cache-hit) probe latency before the churn.
    pub warm_hit_before: Option<Duration>,
    /// Warm (cache-hit) probe latency after the churn.
    pub warm_hit_after: Option<Duration>,
    /// Bytes of interned symbol data before the flood.
    pub interned_bytes_before: usize,
    /// Bytes of interned symbol data after the flood, the final TTL
    /// reclamation and a [`indiss_core::Symbol::collect`] — the GC'd interner must
    /// keep this near the pre-churn level instead of retaining every
    /// network-derived type/USN/URL string the flood minted.
    pub interned_bytes_after: usize,
    /// Interner entries the final explicit collection reclaimed (the
    /// amortized watermark GC reclaims continuously as well).
    pub interner_reclaimed: usize,
    /// The bounded-memory verdict, settled through the same
    /// [`indiss_core::MemoryBudget`] helper the scenario engine's soak
    /// mode uses (one definition of "bounded", shared by both).
    pub memory: indiss_core::MemorySettlement,
}

/// Registry churn: floods a gateway INDISS with `services` short-lived
/// advertisements spread across all three SDPs (SLP `SrvReg`s, SSDP
/// `NOTIFY`s and Jini registrations), while probing the warm cache-hit
/// path before and after.
///
/// The scenario exists to pin down the scaling properties of the
/// [`indiss_core::ServiceRegistry`]: memory must stay bounded (records at
/// or below the configured capacity at every instant, and all TTL'd
/// records reclaimed at the end) and the cache-hit latency must not
/// degrade with churn.
pub fn registry_churn(seed: u64, services: usize) -> ChurnOutcome {
    use std::cell::RefCell;
    use std::rc::Rc;

    let record_capacity = 1024;
    // The slack covers the steady vocabulary, the bounded response
    // cache's surviving entries, and symbols concurrently running
    // tests keep alive.
    let budget = indiss_core::MemoryBudget::capture(128 * 1024);
    let world = World::new(seed);
    let gateway = world.add_node("gateway");
    let indiss = Indiss::deploy(
        &gateway,
        IndissConfig::all_protocols()
            .with_registry_capacity(record_capacity)
            .with_cache_capacity(64)
            .with_advert_ttl(Duration::from_secs(15)),
    )
    .expect("indiss");
    let registry = indiss.registry();

    // Warm-probe helper: a cache entry + one SLP discovery answered from it.
    let probe_client = world.add_node("probe-client");
    let probe_ua = UserAgent::start(&probe_client, SlpConfig::default()).expect("ua");
    let probe = |world: &World| -> Option<Duration> {
        indiss.warm_cache(
            "churn-probe",
            indiss_core::EventStream::framed(vec![
                indiss_core::Event::ServiceResponse,
                indiss_core::Event::ResOk,
                indiss_core::Event::ServiceType("churn-probe".into()),
                indiss_core::Event::ResTtl(60),
                indiss_core::Event::ResServUrl("soap://10.9.9.9:4005/ctl".into()),
            ]),
        );
        let (_f, done) = probe_ua.find_services(world, "service:churn-probe", "");
        world.run_for(Duration::from_secs(1));
        done.take()?.response_time()
    };

    let warm_hit_before = probe(&world);

    // Live-record sampler (tracks the peak during the churn).
    let peak: Rc<RefCell<usize>> = Rc::new(RefCell::new(registry.record_count()));
    {
        let registry = registry.clone();
        let peak = Rc::clone(&peak);
        fn sample(world: &World, registry: indiss_core::ServiceRegistry, peak: Rc<RefCell<usize>>) {
            let live = registry.record_count();
            let mut p = peak.borrow_mut();
            if live > *p {
                *p = live;
            }
            drop(p);
            world.schedule_in(Duration::from_millis(250), move |w| sample(w, registry, peak));
        }
        sample(&world, registry.clone(), peak);
    }

    // The flood: three sender stacks, adverts spread over ~40 s with
    // 10 s TTLs, so records churn through the registry several times.
    let window = Duration::from_secs(40);
    let slp_share = services / 3;
    let ssdp_share = services / 3;
    let jini_share = services - slp_share - ssdp_share;

    let slp_node = world.add_node("slp-flood");
    let slp_socket = slp_node.udp_bind_ephemeral().expect("socket");
    for i in 0..slp_share {
        let at = window.mul_f64(i as f64 / slp_share.max(1) as f64);
        let socket = slp_socket.clone();
        world.schedule_in(at, move |_| {
            let url = format!("service:churnslp{i}://10.1.0.1:{}", 1024 + (i % 50_000));
            let msg = indiss_slp::Message::new(
                indiss_slp::Header::new(
                    indiss_slp::FunctionId::SrvReg,
                    (i % 60_000) as u16,
                    indiss_slp::DEFAULT_LANG,
                ),
                indiss_slp::Body::SrvReg(indiss_slp::SrvReg {
                    entry: indiss_slp::UrlEntry::new(url, 10),
                    service_type: format!("service:churnslp{i}"),
                    scopes: "DEFAULT".into(),
                    attrs: String::new(),
                }),
            );
            let _ = socket.send_to(
                &msg.encode().expect("encodable"),
                SocketAddrV4::new(SLP_MULTICAST_GROUP, SLP_PORT),
            );
        });
    }

    let ssdp_node = world.add_node("ssdp-flood");
    let ssdp_socket = ssdp_node.udp_bind_ephemeral().expect("socket");
    for i in 0..ssdp_share {
        let at = window.mul_f64(i as f64 / ssdp_share.max(1) as f64);
        let socket = ssdp_socket.clone();
        world.schedule_in(at, move |_| {
            let notify = indiss_ssdp::Notify {
                nt: SearchTarget::device_urn(&format!("churnupnp{i}"), 1),
                nts: indiss_ssdp::NotifySubType::Alive,
                usn: format!("uuid:churn-{i}::urn:schemas-upnp-org:device:churnupnp{i}:1"),
                location: None,
                server: "churn/1.0".into(),
                max_age: 10,
            };
            let _ = socket.send_to(
                &notify.to_bytes(),
                SocketAddrV4::new(indiss_ssdp::SSDP_MULTICAST_GROUP, indiss_ssdp::SSDP_PORT),
            );
        });
    }

    let jini_node = world.add_node("jini-flood");
    let jini_agent = indiss_jini::JiniAgent::start(
        &jini_node,
        indiss_jini::JiniConfig { lease_secs: 10, ..indiss_jini::JiniConfig::default() },
    )
    .expect("agent");
    for i in 0..jini_share {
        let at = window.mul_f64(i as f64 / jini_share.max(1) as f64);
        let agent = jini_agent.clone();
        world.schedule_in(at, move |_| {
            agent.register(indiss_jini::ServiceItem {
                service_id: i as u64,
                service_type: format!("churnjini{i}"),
                endpoint: format!("10.2.0.1:{}", 1024 + (i % 50_000)),
                attributes: Vec::new(),
            });
        });
    }

    world.run_for(window + Duration::from_secs(5));
    let warm_hit_after = probe(&world);

    // Let every remaining TTL elapse (longest is the 15 s default bound),
    // so the sweep timers can reclaim the store.
    world.run_for(Duration::from_secs(25));

    let stats = indiss.stats();
    let peak_records = *peak.borrow();
    let final_records = registry.record_count();
    // Every churned record is gone; whatever symbols only they kept
    // alive are now collectable.
    let memory = budget.settle();
    ChurnOutcome {
        adverts_sent: services,
        adverts_recorded: stats.adverts_recorded,
        peak_records,
        final_records,
        record_capacity,
        records_expired: stats.records_expired,
        records_evicted: stats.records_evicted,
        cache_evictions: stats.cache_evictions,
        warm_hit_before,
        warm_hit_after,
        interned_bytes_before: memory.interned_before,
        interned_bytes_after: memory.interned_after,
        interner_reclaimed: memory.reclaimed_entries,
        memory,
    }
}

/// Result of the request-storm scenario.
#[derive(Debug, Clone)]
pub struct StormOutcome {
    /// Discovery requests issued by all clients across all SDPs.
    pub requests_sent: usize,
    /// Warm-hit (cache-answered) SLP probe latencies, sorted.
    pub warm_hit_latencies: Vec<Duration>,
    /// p50 of the warm-hit latencies.
    pub warm_hit_p50: Option<Duration>,
    /// p99 of the warm-hit latencies.
    pub warm_hit_p99: Option<Duration>,
    /// Requests answered from the response cache.
    pub cache_hits: u64,
    /// Requests absorbed by the negative cache (absent types).
    pub negative_hits: u64,
    /// Requests that actually fanned out to foreign units.
    pub requests_bridged: u64,
    /// Requests dropped by the suppression window.
    pub requests_suppressed: u64,
    /// Total allocator traffic during the storm (whole simulation:
    /// native stacks, wire codecs and INDISS together).
    pub storm_bytes_allocated: u64,
    /// `storm_bytes_allocated / requests_sent` — a whole-system context
    /// number, not the pipeline metric (that is
    /// [`warm_hit_pipeline_bytes`]).
    pub storm_bytes_per_request: u64,
}

fn percentile(sorted: &[Duration], p: f64) -> Option<Duration> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Request storm: `clients` SLP clients (plus one UPnP control point,
/// one Jini client and one DNS-SD descriptor-protocol client) hammer a
/// single four-protocol gateway for `rounds` rounds with a mix of
/// warm-hit ("clock", answered from the response cache after the first
/// round), miss ("printer" via the SLP unit, "scanner" via the
/// descriptor unit's native DNS-SD service) and absent-type queries
/// (persistent per client, absorbed by the negative cache). Reports
/// warm-hit p50/p99 latency, the gateway's hit counters and the
/// allocator traffic of the whole storm.
pub fn request_storm(seed: u64, clients: usize, rounds: usize) -> StormOutcome {
    use indiss_core::{DescriptorClient, DescriptorService, SdpDescriptor};

    let world = World::new(seed);
    let gateway = world.add_node("gateway");
    let service_host = world.add_node("clock-host");
    let indiss = Indiss::deploy(
        &gateway,
        IndissConfig::all_protocols()
            .with_descriptor(SdpDescriptor::dns_sd())
            .with_cache_ttl(Duration::from_secs(600))
            .with_negative_ttl(Duration::from_secs(600)),
    )
    .expect("indiss");
    let _clock = ClockDevice::start(&service_host, UpnpConfig::default()).expect("clock");
    let slp_host = world.add_node("printer-host");
    let sa = ServiceAgent::start(&slp_host, SlpConfig::default()).expect("sa");
    sa.register(
        Registration::new("service:printer:lpr://10.0.3.1:515", AttributeList::new()).expect("reg"),
    );
    // The fourth protocol's native service, generated from the descriptor.
    let dnssd_host = world.add_node("scanner-host");
    let dnssd_service =
        DescriptorService::start(&dnssd_host, SdpDescriptor::dns_sd()).expect("dnssd service");
    dnssd_service.register("scanner", "scan://10.0.4.1:6566/sane");
    world.run_for(Duration::from_millis(50)); // initial announcements

    let uas: Vec<UserAgent> = (0..clients.max(1))
        .map(|i| {
            let node = world.add_node(&format!("slp-client-{i}"));
            UserAgent::start(&node, SlpConfig::default()).expect("ua")
        })
        .collect();
    let cp_node = world.add_node("upnp-client");
    let cp = ControlPoint::start(&cp_node, ControlPointConfig::default()).expect("cp");
    let jini_node = world.add_node("jini-client");
    let jini = indiss_jini::JiniAgent::start(&jini_node, indiss_jini::JiniConfig::default())
        .expect("jini client");
    let dnssd_client_node = world.add_node("dnssd-client");
    let dnssd =
        DescriptorClient::start(&dnssd_client_node, SdpDescriptor::dns_sd()).expect("dnssd client");

    // Round 0 warms the caches (not measured).
    let mut requests_sent = 0usize;
    let mut warm_hit_latencies: Vec<Duration> = Vec::new();
    let before_bytes = crate::alloc::allocated_bytes();
    for round in 0..rounds.max(1) {
        let mut pending = Vec::new();
        for (i, ua) in uas.iter().enumerate() {
            let (_f, done) = ua.find_services(&world, "service:clock", "");
            pending.push(done);
            requests_sent += 1;
            // A persistent absent type per client: round 0 fans out and
            // arms the negative cache, every later round is a negative
            // hit instead of a fan-out.
            let (_f, _d) = ua.find_services(&world, &format!("service:ghost{i}"), "");
            requests_sent += 1;
        }
        let (_f, _all) = cp.search(&world, SearchTarget::device_urn("printer", 1));
        requests_sent += 1;
        let _found = jini.lookup("clock");
        requests_sent += 1;
        // The DNS-SD client mixes a warm hit, a descriptor-unit-served
        // miss and a persistent absent type, like the built-in clients.
        let (_f, _d) = dnssd.query(&world, "clock");
        let (_f, _d) = dnssd.query(&world, "ghostdnssd");
        requests_sent += 2;
        // One SLP client per round crosses into the fourth protocol.
        let (_f, _d) = uas[0].find_services(&world, "service:scanner", "");
        requests_sent += 1;
        world.run_for(Duration::from_secs(1));
        if round > 0 {
            for done in pending {
                if let Some(rt) = done.take().and_then(|o| o.response_time()) {
                    warm_hit_latencies.push(rt);
                }
            }
        }
    }
    let storm_bytes_allocated = crate::alloc::allocated_bytes() - before_bytes;
    warm_hit_latencies.sort();

    let stats = indiss.stats();
    StormOutcome {
        requests_sent,
        warm_hit_p50: percentile(&warm_hit_latencies, 0.50),
        warm_hit_p99: percentile(&warm_hit_latencies, 0.99),
        warm_hit_latencies,
        cache_hits: stats.cache_hits,
        negative_hits: stats.negative_hits,
        requests_bridged: stats.requests_bridged,
        requests_suppressed: stats.requests_suppressed,
        storm_bytes_allocated,
        storm_bytes_per_request: storm_bytes_allocated / requests_sent.max(1) as u64,
    }
}

/// Bytes of allocator traffic per warm-hit bridged request, measured on
/// the event pipeline alone: parse the native request into an event
/// stream, answer it from the registry's response cache, and clone the
/// response once more for delivery — exactly the work the runtime's
/// warm/deliver path performs before native composition takes over.
///
/// Wire encoding and the simulated network are deliberately excluded:
/// they cost the same with or without INDISS's event layer, and the
/// paper's lightweightness claim (§4.3) is about the translation
/// machinery itself.
pub fn warm_hit_pipeline_bytes(iters: u64) -> u64 {
    use indiss_core::{
        Event, EventStream, ParsedMessage, RegistryConfig, ServiceRegistry, SlpUnit, SlpUnitConfig,
        Unit,
    };
    assert!(iters > 0);
    let world = World::new(11);
    let gateway = world.add_node("gateway");
    let unit = SlpUnit::new(&gateway, SlpUnitConfig::default()).expect("unit");
    let registry = ServiceRegistry::new(RegistryConfig {
        cache_ttl: Duration::from_secs(3600),
        ..RegistryConfig::default()
    });
    unit.bind_registry(&registry);
    let now = world.now();
    registry.warm(
        "clock",
        EventStream::framed(vec![
            Event::ServiceResponse,
            Event::ResOk,
            Event::ServiceType("clock".into()),
            Event::ResTtl(1800),
            Event::ResServUrl("soap://10.0.0.2:4004/service/timer/control".into()),
            Event::ResAttr { tag: "friendlyName".into(), value: "CyberGarage Clock Device".into() },
        ]),
        now,
    );
    let msg = indiss_slp::Message::new(
        indiss_slp::Header::new(indiss_slp::FunctionId::SrvRqst, 7, "en"),
        indiss_slp::Body::SrvRqst(indiss_slp::SrvRqst {
            prlist: String::new(),
            service_type: "service:clock".into(),
            scopes: "DEFAULT".into(),
            predicate: String::new(),
            spi: String::new(),
        }),
    );
    let dgram = indiss_net::Datagram {
        src: "10.0.0.9:40000".parse().expect("addr"),
        dst: SocketAddrV4::new(SLP_MULTICAST_GROUP, SLP_PORT),
        payload: msg.encode().expect("encode"),
    };
    let round = |dgram: &indiss_net::Datagram| {
        let ParsedMessage::Request(request) = unit.parse(&world, dgram) else {
            panic!("expected request");
        };
        let response = registry.cached_response("clock", now).expect("warm");
        let delivered = response.clone(); // the runtime's deliver step
        std::hint::black_box((request, delivered));
    };
    round(&dgram); // warm-up: interner + cache recency are steady state
    let (_, bytes) = crate::alloc::allocated_during(|| {
        for _ in 0..iters {
            round(&dgram);
        }
    });
    bytes / iters
}

/// Counts how many SLP multicast requests it takes to saturate a
/// `Collector` with responses — used as a smoke workload generator for
/// the Criterion benches.
pub fn smoke_workload(seed: u64, services: usize) -> usize {
    let world = World::new(seed);
    let client = world.add_node("client");
    let ua = UserAgent::start(&client, SlpConfig::default()).expect("ua");
    let found: Collector<String> = Collector::new();
    for i in 0..services {
        let node = world.add_node(&format!("svc{i}"));
        let sa = ServiceAgent::start(&node, SlpConfig::default()).expect("sa");
        sa.register(
            Registration::new(
                &format!("service:printer://10.0.9.{}:515", i + 1),
                AttributeList::new(),
            )
            .expect("reg"),
        );
    }
    let (_f, done) = ua.find_services(&world, "service:printer", "");
    world.run_for(Duration::from_secs(2));
    let urls = done.take().map(|o| o.urls).unwrap_or_default();
    for u in urls {
        found.push(u.url);
    }
    found.len()
}

/// Outcome of the real-socket warm-hit measurement
/// ([`udp_warm_hit`]).
#[derive(Debug, Clone)]
pub struct UdpStormOutcome {
    /// Requests sent over the loopback socket (per phase: the
    /// one-in-flight and pipelined phases each send this many).
    pub requests: u64,
    /// Replies that arrived back during the one-in-flight phase.
    pub replies: u64,
    /// p50 of the request → reply round trip, observed on the wire.
    pub p50: Option<Duration>,
    /// p99 of the round trip.
    pub p99: Option<Duration>,
    /// Replies per second with exactly **one request in flight** — this
    /// is `1 / mean RTT`, a *latency* summary, not a saturation number
    /// (its old name, `sequential_rps`, invited exactly that misread).
    /// Compare [`UdpStormOutcome::pipelined_rps`] for delivered
    /// throughput under concurrency.
    pub one_in_flight_rps: f64,
    /// Replies received during the pipelined phase.
    pub pipelined_replies: u64,
    /// Replies per second with [`UdpStormOutcome::pipeline_depth`]
    /// requests kept in flight — what the gateway actually sustains
    /// when the client does not serialize on each round trip.
    pub pipelined_rps: f64,
    /// In-flight window of the pipelined phase.
    pub pipeline_depth: usize,
}

/// Real-socket warm-hit latency: a [`indiss_core::NetDriver`] gateway on
/// a loopback [`indiss_net::UdpTransport`] (ports shifted by
/// `port_offset`), its registry warmed for `distinct_types` types, and a
/// client socket sending `requests` pre-encoded SLP `SrvRqst`s in two
/// phases: first one at a time (timing each wire round trip: OS socket
/// → recv thread → worker lane (decode → parse → classify → compose) →
/// OS socket back), then again with [`UdpStormOutcome::pipeline_depth`]
/// requests kept in flight, which measures delivered throughput rather
/// than `1 / RTT`.
///
/// This is the §4.3 best case measured on actual sockets, the row
/// recorded next to the simulated curve in `BENCH_storm.json`. Returns
/// `None` when the environment forbids binding the (offset) ports — the
/// caller should log the skip, not fail.
pub fn udp_warm_hit(
    requests: u64,
    distinct_types: usize,
    port_offset: u16,
) -> Option<UdpStormOutcome> {
    use indiss_core::{Event, EventStream, NetDriver, SdpProtocol};
    use std::sync::mpsc;
    use std::sync::Arc;
    use std::time::Instant;

    let distinct_types = distinct_types.max(1);
    let config = IndissConfig::builder()
        .slp()
        .cache_ttl(Duration::from_secs(3600))
        .shards(16)
        .workers(4)
        .transport(indiss_net::TransportKind::Udp)
        .port_offset(port_offset)
        .build();
    let driver = match NetDriver::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("udp_warm_hit: skipped (cannot bind loopback sockets: {e})");
            return None;
        }
    };
    let slp_addr = driver.channel_addr(SdpProtocol::Slp)?;
    let now = driver.now();
    let registry = driver.registry();
    let mut wires: Vec<Vec<u8>> = Vec::with_capacity(distinct_types);
    for i in 0..distinct_types {
        let ty = format!("udpstorm-{i}");
        registry.warm(
            ty.as_str(),
            EventStream::framed(vec![
                Event::ServiceResponse,
                Event::ResOk,
                Event::ServiceType(ty.as_str().into()),
                Event::ResTtl(1800),
                Event::ResServUrl(format!("soap://10.0.0.2:4004/{ty}/control")),
            ]),
            now,
        );
        let msg = indiss_slp::Message::new(
            indiss_slp::Header::new(
                indiss_slp::FunctionId::SrvRqst,
                (i % 60_000) as u16,
                indiss_slp::DEFAULT_LANG,
            ),
            indiss_slp::Body::SrvRqst(indiss_slp::SrvRqst {
                prlist: String::new(),
                service_type: format!("service:{ty}"),
                scopes: "DEFAULT".into(),
                predicate: String::new(),
                spi: String::new(),
            }),
        );
        wires.push(msg.encode().expect("encodable"));
    }

    let (tx, rx) = mpsc::channel::<()>();
    let transport = driver.transport();
    let client = transport
        .bind_client(Arc::new(move |_dgram| {
            let _ = tx.send(());
        }))
        .ok()?;

    let mut latencies: Vec<Duration> = Vec::with_capacity(requests as usize);
    let mut replies = 0u64;
    let started = Instant::now();
    for r in 0..requests {
        // A reply that straggled in after a previous timeout must not
        // be paired with this request — drain it first so every
        // recorded latency really times its own round trip.
        while rx.try_recv().is_ok() {}
        let wire = &wires[(r as usize) % distinct_types];
        let sent = Instant::now();
        if client.send_to(wire, slp_addr).is_err() {
            continue;
        }
        if rx.recv_timeout(Duration::from_secs(2)).is_ok() {
            latencies.push(sent.elapsed());
            replies += 1;
        }
    }
    let elapsed = started.elapsed().max(Duration::from_nanos(1));

    // Phase 2: the same storm with a fixed pipeline of requests in
    // flight. Loss-tolerant: a timed-out window is written off (UDP
    // under load may drop) so the phase always terminates.
    const DEPTH: usize = 8;
    while rx.try_recv().is_ok() {}
    let mut p_sent = 0u64;
    let mut p_replies = 0u64;
    let mut in_flight = 0usize;
    let p_started = Instant::now();
    let mut p_last_reply = p_started;
    loop {
        while in_flight < DEPTH && p_sent < requests {
            let wire = &wires[(p_sent as usize) % distinct_types];
            if client.send_to(wire, slp_addr).is_ok() {
                in_flight += 1;
            }
            p_sent += 1;
        }
        if in_flight == 0 && p_sent >= requests {
            break;
        }
        match rx.recv_timeout(Duration::from_millis(250)) {
            Ok(()) => {
                p_replies += 1;
                // Saturating: a straggler from a written-off window may
                // arrive after the count was zeroed.
                in_flight = in_flight.saturating_sub(1);
                p_last_reply = Instant::now();
            }
            Err(_) => {
                in_flight = 0; // written off as lost
                if p_sent >= requests {
                    break;
                }
            }
        }
    }
    let p_elapsed = p_last_reply.duration_since(p_started).max(Duration::from_nanos(1));

    driver.shutdown();
    latencies.sort();
    Some(UdpStormOutcome {
        requests,
        replies,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        one_in_flight_rps: replies as f64 / elapsed.as_secs_f64(),
        pipelined_replies: p_replies,
        pipelined_rps: p_replies as f64 / p_elapsed.as_secs_f64(),
        pipeline_depth: DEPTH,
    })
}

/// Outcome of the batched-engine saturation storm
/// ([`udp_batched_storm`]).
#[derive(Debug, Clone)]
pub struct BatchedStormOutcome {
    /// Requests pushed onto the wire.
    pub requests: u64,
    /// Replies that arrived back on the client's batched socket.
    pub replies: u64,
    /// First send → last reply.
    pub elapsed: Duration,
    /// `replies / elapsed` — delivered warm-hit throughput.
    pub throughput_rps: f64,
    /// The engine's own counters (reactor wakeups, recv-batch
    /// histogram, `sendmmsg` flushes, EAGAINs).
    pub io: indiss_net::IoStats,
}

/// Warm-hit *saturation* on the batched I/O engine: a
/// [`indiss_core::NetDriver`] gateway on a loopback
/// [`indiss_net::BatchedTransport`] (the self-built epoll reactor with
/// `recvmmsg`/`sendmmsg` batching where the platform has them), its
/// registry warmed for `distinct_types` types, flooded by a windowed
/// closed-loop client: up to 512 requests in flight, pushed in
/// 64-datagram `send_batch` bursts, replies counted on a batched client
/// socket. Loss-tolerant by construction — a stalled window is written
/// off after 250 ms, because a UDP flood on a small host *will* shed
/// the odd datagram and the storm must keep flowing regardless.
///
/// This is the number the `udp_batched` row in `BENCH_storm.json`
/// gates on: end-to-end replies per second through reactor → per-lane
/// run queue → worker (decode → parse → epoch-snapshot classify →
/// compose) → batched flush. Returns `None` when the environment
/// forbids binding the (offset) ports.
pub fn udp_batched_storm(
    requests: u64,
    distinct_types: usize,
    port_offset: u16,
) -> Option<BatchedStormOutcome> {
    use indiss_core::{Event, EventStream, NetDriver, SdpProtocol};
    use indiss_net::{BatchedTransport, Transport};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    let distinct_types = distinct_types.max(1);
    let transport = Arc::new(BatchedTransport::with_offset(port_offset));
    // One SLP channel feeds one worker lane, so extra workers would
    // only idle; shards still spread the epoch fast path's hits.
    let config = IndissConfig::builder()
        .slp()
        .cache_ttl(Duration::from_secs(3600))
        .shards(16)
        .workers(1)
        .build();
    let driver = match NetDriver::builder(config)
        .transport(Arc::clone(&transport) as Arc<dyn Transport>)
        .start()
    {
        Ok(d) => d,
        Err(e) => {
            eprintln!("udp_batched_storm: skipped (cannot bind loopback sockets: {e})");
            return None;
        }
    };
    let slp_addr = driver.channel_addr(SdpProtocol::Slp)?;
    let now = driver.now();
    let registry = driver.registry();
    let mut wires: Vec<Vec<u8>> = Vec::with_capacity(distinct_types);
    for i in 0..distinct_types {
        let ty = format!("batchstorm-{i}");
        registry.warm(
            ty.as_str(),
            EventStream::framed(vec![
                Event::ServiceResponse,
                Event::ResOk,
                Event::ServiceType(ty.as_str().into()),
                Event::ResTtl(1800),
                Event::ResServUrl(format!("soap://10.0.0.2:4004/{ty}/control")),
            ]),
            now,
        );
        let msg = indiss_slp::Message::new(
            indiss_slp::Header::new(
                indiss_slp::FunctionId::SrvRqst,
                (i % 60_000) as u16,
                indiss_slp::DEFAULT_LANG,
            ),
            indiss_slp::Body::SrvRqst(indiss_slp::SrvRqst {
                prlist: String::new(),
                service_type: format!("service:{ty}"),
                scopes: "DEFAULT".into(),
                predicate: String::new(),
                spi: String::new(),
            }),
        );
        wires.push(msg.encode().expect("encodable"));
    }

    let replies = Arc::new(AtomicU64::new(0));
    let replies_sink = Arc::clone(&replies);
    let client = transport
        .bind_client_batched(Arc::new(move |batch: Vec<indiss_net::Datagram>| {
            replies_sink.fetch_add(batch.len() as u64, Ordering::Relaxed);
        }))
        .ok()?;

    const WINDOW: u64 = 512;
    const BURST: usize = 64;
    let started = Instant::now();
    let mut last_reply_at = started;
    let mut seen_replies = 0u64;
    let mut written_off = 0u64;
    let mut sent = 0u64;
    while sent < requests {
        let got = replies.load(Ordering::Relaxed);
        if got != seen_replies {
            seen_replies = got;
            last_reply_at = Instant::now();
        }
        let outstanding = sent.saturating_sub(got + written_off);
        if outstanding + BURST as u64 > WINDOW {
            if last_reply_at.elapsed() > Duration::from_millis(250) {
                // The window stalled: those datagrams are gone. Write
                // them off so the storm keeps flowing.
                written_off += outstanding;
            } else {
                // Window full and the gateway is working: yield the
                // core to the reactor and the worker.
                std::thread::sleep(Duration::from_micros(50));
            }
            continue;
        }
        let burst_len = BURST.min((requests - sent) as usize);
        let burst: Vec<(Vec<u8>, SocketAddrV4)> = (0..burst_len)
            .map(|i| (wires[(sent as usize + i) % distinct_types].clone(), slp_addr))
            .collect();
        let pushed = client.send_batch(&burst);
        if pushed == 0 {
            std::thread::sleep(Duration::from_micros(50));
            continue;
        }
        sent += pushed as u64;
    }
    // Drain stragglers until the reply stream goes quiet.
    loop {
        let got = replies.load(Ordering::Relaxed);
        if got != seen_replies {
            seen_replies = got;
            last_reply_at = Instant::now();
        }
        if got + written_off >= sent || last_reply_at.elapsed() > Duration::from_millis(250) {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let elapsed = last_reply_at.duration_since(started).max(Duration::from_nanos(1));
    let io = transport.io_stats().unwrap_or_default();
    driver.shutdown();
    let replies = replies.load(Ordering::Relaxed);
    Some(BatchedStormOutcome {
        requests: sent,
        replies,
        elapsed,
        throughput_rps: replies as f64 / elapsed.as_secs_f64(),
        io,
    })
}

/// One point of the multi-threaded warm-hit scaling curve.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Worker threads serving the gateway.
    pub workers: usize,
    /// Requests processed.
    pub requests: u64,
    /// Wall-clock time from first submission to full drain.
    pub elapsed: Duration,
    /// `requests / elapsed`, in requests per second.
    pub throughput_rps: f64,
    /// Cache hits observed (must equal `requests`: the storm is all
    /// warm).
    pub cache_hits: u64,
}

/// Multi-threaded warm-hit throughput: `total_requests` pre-encoded SLP
/// `SrvRqst`s for `distinct_types` warmed types are pushed through a
/// [`indiss_core::ThreadedGateway`] with `workers` threads, and the
/// wall-clock drain time is measured.
///
/// Each request runs its whole pipeline on the worker owning its type's
/// registry shard: wire decode + Fig. 4 parse
/// ([`indiss_core::parse_slp_request`] — the deployed unit's own
/// parser), the shared warm-path classification (a shard-locked cache
/// hit), the delivery clone of the shared response buffer, and then
/// `io_wait` of blocking time standing in for the synchronous socket
/// round (reply transmit + kernel) a worker pays per request in a real
/// deployment. With `io_wait` > 0 the curve measures how well workers
/// overlap that blocking time — the regime a 1-core host can still
/// demonstrate; with `io_wait == 0` it measures pure CPU scaling of the
/// sharded warm path, which needs as many physical cores as workers to
/// show gains. Either way there is no cross-shard coordination: types
/// spread over all shards, so nothing serializes but the per-shard
/// locks.
pub fn warm_hit_scaling(
    workers: usize,
    total_requests: u64,
    distinct_types: usize,
    io_wait: Duration,
) -> ScalingPoint {
    warm_hit_point(
        workers,
        total_requests,
        distinct_types,
        io_wait,
        indiss_core::Tracer::disabled(),
    )
}

/// The [`warm_hit_scaling`] measurement with an explicit span recorder:
/// the pipeline records the same `decode`/`classify`/`deliver` spans,
/// per-protocol end-to-end histogram samples and per-chunk `job` spans
/// the wire front-end does, so a tracing-on vs tracing-off pair of runs
/// measures exactly the observability layer's hot-path cost.
fn warm_hit_point(
    workers: usize,
    total_requests: u64,
    distinct_types: usize,
    io_wait: Duration,
    tracer: indiss_core::Tracer,
) -> ScalingPoint {
    use indiss_core::{
        parse_slp_request, Event, EventStream, Phase, RegistryConfig, ThreadedGateway, WarmDecision,
    };
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    let distinct_types = distinct_types.max(1);
    let config = RegistryConfig {
        cache_ttl: Duration::from_secs(3600),
        shards: 16,
        ..RegistryConfig::default()
    };
    let gateway = ThreadedGateway::with_tracer(config, workers, tracer.clone());
    let registry = gateway.registry();
    let warmed_at = SimTime::ZERO;
    let now = SimTime::from_secs(1);

    // Pre-encode one native SrvRqst per type and warm its response.
    let src: SocketAddrV4 = "10.0.0.9:40000".parse().expect("addr");
    let mut requests: Vec<(usize, Arc<[u8]>)> = Vec::with_capacity(distinct_types);
    for i in 0..distinct_types {
        let ty = format!("storm-type-{i}");
        registry.warm(
            ty.as_str(),
            EventStream::framed(vec![
                Event::ServiceResponse,
                Event::ResOk,
                Event::ServiceType(ty.as_str().into()),
                Event::ResTtl(1800),
                Event::ResServUrl(format!("soap://10.0.0.2:4004/{ty}/control")),
            ]),
            warmed_at,
        );
        let msg = indiss_slp::Message::new(
            indiss_slp::Header::new(indiss_slp::FunctionId::SrvRqst, (i % 60_000) as u16, "en"),
            indiss_slp::Body::SrvRqst(indiss_slp::SrvRqst {
                prlist: String::new(),
                service_type: format!("service:{ty}"),
                scopes: "DEFAULT".into(),
                predicate: String::new(),
                spi: String::new(),
            }),
        );
        let lane = gateway.lane_of(ty.as_str());
        requests.push((lane, msg.encode().expect("encodable").into()));
    }

    // Submission is *chunked* — ~CHUNK requests per pool job, the same
    // one-job-per-batch hand-off the batched wire front-end does — so
    // the measurement exercises worker throughput, not the submitting
    // thread's per-job enqueue cost. Every request still runs its own
    // full pipeline (and pays its own io_wait) inside the job.
    const CHUNK: usize = 32;
    let shard_count = 16usize; // matches `config.shards` above
    let core = gateway.core();
    let hits = Arc::new(AtomicU64::new(0));
    let submit_chunk = |lane: usize, chunk: Vec<Arc<[u8]>>| {
        let core = core.clone();
        let hits = Arc::clone(&hits);
        let tracer = tracer.clone();
        gateway.submit_on_lane(lane, move || {
            // Same sampling contract as the wire front-end: the first
            // request of each chunk gets per-phase spans plus the
            // per-protocol end-to-end sample; the rest pay only an
            // untaken branch (no clock reads).
            for (i, payload) in chunk.into_iter().enumerate() {
                let trace_phases = i == 0;
                let e2e_start = if trace_phases { tracer.stamp() } else { SimTime::ZERO };
                let request =
                    parse_slp_request(&payload, src, true).expect("pre-encoded SrvRqst parses");
                if trace_phases {
                    tracer.record(lane, Phase::Decode, e2e_start);
                }
                let classify_start = if trace_phases { tracer.stamp() } else { SimTime::ZERO };
                let decision = core.classify(indiss_core::SdpProtocol::Slp, &request, now);
                if trace_phases {
                    tracer.record(lane, Phase::Classify, classify_start);
                }
                let WarmDecision::CacheHit(response) = decision else {
                    panic!("storm is all-warm, got {decision:?}");
                };
                let deliver_start = if trace_phases { tracer.stamp() } else { SimTime::ZERO };
                std::hint::black_box(response.clone()); // the deliver step
                if trace_phases {
                    tracer.record(lane, Phase::Deliver, deliver_start);
                }
                if !io_wait.is_zero() {
                    std::thread::sleep(io_wait); // synchronous reply transmit
                }
                if trace_phases {
                    tracer.record_protocol(lane, 427, e2e_start, tracer.stamp());
                }
                hits.fetch_add(1, Ordering::Relaxed);
            }
        });
    };
    let mut pending: Vec<Vec<Arc<[u8]>>> = vec![Vec::new(); shard_count];
    let started = Instant::now();
    for r in 0..total_requests {
        let (lane, payload) = requests[(r as usize) % distinct_types].clone();
        let buf = &mut pending[lane % shard_count];
        buf.push(payload);
        if buf.len() >= CHUNK {
            submit_chunk(lane, std::mem::take(buf));
        }
    }
    for (lane, buf) in pending.into_iter().enumerate() {
        if !buf.is_empty() {
            submit_chunk(lane, buf);
        }
    }
    gateway.join();
    let elapsed = started.elapsed().max(Duration::from_nanos(1));
    ScalingPoint {
        workers: gateway.workers(),
        requests: total_requests,
        elapsed,
        throughput_rps: total_requests as f64 / elapsed.as_secs_f64(),
        cache_hits: hits.load(Ordering::Relaxed),
    }
}

/// Outcome of the tracing-overhead measurement ([`trace_overhead`]):
/// tracing-off vs tracing-on warm-hit throughput plus the exported
/// trace, so one row both gates the hot-path cost and proves the
/// export pipeline works end to end.
#[derive(Debug, Clone)]
pub struct TraceOverheadOutcome {
    /// Requests each measured run pushed through the gateway.
    pub requests: u64,
    /// Best-of-N warm-hit throughput with the tracer disabled.
    pub baseline_rps: f64,
    /// Best-of-N warm-hit throughput with the tracer recording
    /// decode/classify/deliver/job spans and per-protocol histograms.
    pub traced_rps: f64,
    /// `traced_rps / baseline_rps` — the CI gate demands ≥ 0.95.
    pub ratio: f64,
    /// Spans the traced runs recorded (ring capacity bounds what is
    /// *kept*; this counts what was written).
    pub spans_recorded: u64,
    /// Spans overwritten by ring wrap during the traced runs.
    pub spans_dropped: u64,
    /// Events in the exported trace (validated by
    /// [`indiss_core::validate_chrome_trace`]).
    pub trace_events: usize,
    /// The exported Chrome/Perfetto `trace.json` from the last traced
    /// run.
    pub trace_json: String,
}

/// Measures what span recording costs on the warm path: the same
/// chunked all-warm storm as [`warm_hit_scaling`], run `rounds` times
/// with tracing off and `rounds` times with tracing on (interleaved
/// off/on to share thermal/scheduler drift), best wall-clock of each
/// side compared. The traced side's export is validated before the
/// outcome is returned, so a "fast" tracer that records garbage cannot
/// pass the gate.
pub fn trace_overhead(workers: usize, total_requests: u64, rounds: usize) -> TraceOverheadOutcome {
    use indiss_core::validate_chrome_trace;

    let rounds = rounds.max(1);
    const TYPES: usize = 64;
    let mut baseline_rps = 0f64;
    let mut traced_rps = 0f64;
    let mut spans_recorded = 0u64;
    let mut spans_dropped = 0u64;
    let mut trace_json = String::new();
    for _ in 0..rounds {
        let off = warm_hit_point(
            workers,
            total_requests,
            TYPES,
            Duration::ZERO,
            indiss_core::Tracer::disabled(),
        );
        assert_eq!(off.cache_hits, total_requests, "storm is all-warm");
        baseline_rps = baseline_rps.max(off.throughput_rps);

        // Ring capacity is sized well below the span volume on purpose:
        // the measured cost includes steady-state overwrite, the mode a
        // long-lived gateway actually runs in.
        let tracer = indiss_core::Tracer::new(
            4096,
            workers.max(1),
            &[427],
            std::sync::Arc::new(indiss_core::WallClock::new()),
        );
        let on = warm_hit_point(workers, total_requests, TYPES, Duration::ZERO, tracer.clone());
        assert_eq!(on.cache_hits, total_requests, "storm is all-warm");
        traced_rps = traced_rps.max(on.throughput_rps);
        spans_recorded = tracer.spans_recorded();
        spans_dropped = tracer.spans_dropped();
        trace_json = indiss_core::chrome_trace_json(&tracer.snapshot());
    }
    let trace_events = validate_chrome_trace(&trace_json).expect("exported trace validates");
    assert!(trace_events > 0, "the traced storm recorded spans");
    TraceOverheadOutcome {
        requests: total_requests,
        baseline_rps,
        traced_rps,
        ratio: traced_rps / baseline_rps.max(f64::MIN_POSITIVE),
        spans_recorded,
        spans_dropped,
        trace_events,
        trace_json,
    }
}

/// Outcome of the hostile-world storm ([`hostile_world`]): a
/// fault-injected gateway run plus everything the `--hostile` gate
/// compares across same-seed replays.
#[derive(Debug, Clone)]
pub struct HostileOutcome {
    /// Distinct warm-hit requests the client tried to complete.
    pub requests: u64,
    /// Requests for which at least one matching reply arrived within
    /// the retransmit budget.
    pub delivered: u64,
    /// `delivered / requests` — the ≥ 80 % gate under 10 % loss + 10 %
    /// reorder in both directions.
    pub delivery_rate: f64,
    /// Retransmissions the client's per-query state machine issued.
    pub retransmits: u64,
    /// Total datagrams the client lane delivered (replies, duplicates
    /// and reorder-flushed stragglers included).
    pub datagrams_heard: u64,
    /// FNV-1a fold over every heard payload in arrival order: the
    /// replay fingerprint two same-seed runs must agree on.
    pub digest: u64,
    /// The injected-fault counters, which must also replay exactly.
    pub faults: indiss_net::FaultStats,
}

/// The hostile-world storm: a warm [`indiss_core::NetDriver`] gateway
/// behind a [`indiss_net::FaultTransport`] running
/// [`indiss_net::FaultPlan::hostile`] (10 % drop + 10 % swap-with-next
/// reorder on every lane, requests and replies alike), hammered by a
/// client whose per-query retransmit state machine mirrors the
/// runtime's [`indiss_core::BridgeStats`] tracker: send, wait
/// `timeout`, retransmit up to `retries` times, give up.
///
/// Everything is deterministic by construction — the fault plan draws
/// from `(seed, lane, arrival index)` and the client runs strictly one
/// request in flight — so two calls with the same `seed` must return
/// the same [`HostileOutcome::digest`] and the same fault counters;
/// the wall-clock timeout only fires when a fault actually swallowed
/// or stalled a datagram, never as a race against the warm path's
/// microsecond processing.
pub fn hostile_world(seed: u64, requests: u64, distinct_types: usize) -> HostileOutcome {
    use indiss_core::{Event, EventStream, NetDriver, SdpProtocol};
    use indiss_net::{Datagram, FaultPlan, FaultTransport, SimTransport, Transport};
    use std::sync::mpsc;
    use std::sync::Arc;

    // Generous against scheduler noise, small against total runtime:
    // a warm hit over SimTransport completes in microseconds, so a
    // timeout only ever means a dropped/stashed datagram.
    const ATTEMPT_TIMEOUT: Duration = Duration::from_millis(100);
    const RETRIES: u32 = 3;

    let distinct_types = distinct_types.max(1);
    let transport: Arc<dyn Transport> =
        Arc::new(FaultTransport::wrap(Arc::new(SimTransport::new()), FaultPlan::hostile(seed)));
    let driver = NetDriver::builder(
        IndissConfig::builder().slp().cache_ttl(Duration::from_secs(3600)).build(),
    )
    .transport(Arc::clone(&transport))
    .start()
    .expect("sim-backed driver always starts");
    let slp_addr = driver.channel_addr(SdpProtocol::Slp).expect("slp channel");
    let now = driver.now();
    let registry = driver.registry();
    let mut wires: Vec<Vec<u8>> = Vec::with_capacity(distinct_types);
    for i in 0..distinct_types {
        let ty = format!("hostile-{i}");
        registry.warm(
            ty.as_str(),
            EventStream::framed(vec![
                Event::ServiceResponse,
                Event::ResOk,
                Event::ServiceType(ty.as_str().into()),
                Event::ResTtl(1800),
                Event::ResServUrl(format!("soap://10.0.0.2:4004/{ty}/control")),
            ]),
            now,
        );
        wires.push(
            indiss_slp::Message::new(
                indiss_slp::Header::new(
                    indiss_slp::FunctionId::SrvRqst,
                    0, // rewritten per request below
                    indiss_slp::DEFAULT_LANG,
                ),
                indiss_slp::Body::SrvRqst(indiss_slp::SrvRqst {
                    prlist: String::new(),
                    service_type: format!("service:{ty}"),
                    scopes: "DEFAULT".into(),
                    predicate: String::new(),
                    spi: String::new(),
                }),
            )
            .encode()
            .expect("encodable"),
        );
    }

    let (tx, rx) = mpsc::channel::<Datagram>();
    let client = transport
        .bind_client(Arc::new(move |d: Datagram| {
            let _ = tx.send(d);
        }))
        .expect("sim client always binds");

    let mut digest = 0xCBF2_9CE4_8422_2325u64; // FNV-1a offset basis
    let mut fold = |payload: &[u8]| {
        for &b in payload {
            digest = (digest ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        digest = (digest ^ 0xFF).wrapping_mul(0x0000_0100_0000_01B3); // frame separator
    };
    let mut delivered = 0u64;
    let mut retransmits = 0u64;
    let mut heard = 0u64;
    for r in 0..requests {
        let xid = (r % 60_000) as u16;
        let mut wire = wires[(r as usize) % distinct_types].clone();
        // XID lives at header bytes 10..12 (RFC 2608 layout).
        wire[10..12].copy_from_slice(&xid.to_be_bytes());
        let mut got_reply = false;
        'attempts: for attempt in 0..=RETRIES {
            if attempt > 0 {
                retransmits += 1;
            }
            if client.send_to(&wire, slp_addr).is_err() {
                continue;
            }
            let deadline = std::time::Instant::now() + ATTEMPT_TIMEOUT;
            loop {
                let left = deadline.saturating_duration_since(std::time::Instant::now());
                let Ok(dgram) = rx.recv_timeout(left) else { break };
                heard += 1;
                fold(&dgram.payload);
                let is_mine =
                    indiss_slp::Message::decode(&dgram.payload).is_ok_and(|m| m.header.xid == xid);
                if is_mine {
                    got_reply = true;
                    break 'attempts;
                }
            }
        }
        if got_reply {
            delivered += 1;
        }
    }
    // Let reorder-stashed stragglers from the tail flush into the
    // digest, so the fingerprint covers the whole fault stream.
    while let Ok(dgram) = rx.recv_timeout(ATTEMPT_TIMEOUT) {
        heard += 1;
        fold(&dgram.payload);
    }
    let faults = transport.io_stats().expect("fault transport reports").faults;
    driver.shutdown();
    HostileOutcome {
        requests,
        delivered,
        delivery_rate: delivered as f64 / requests.max(1) as f64,
        retransmits,
        datagrams_heard: heard,
        digest,
        faults,
    }
}

/// Outcome of the federated-mesh convergence storm
/// ([`mesh_convergence`]): how many gossip rounds a full mesh of
/// gateways needed to agree on one registry content digest, and whether
/// every foreign record became a locally served *remote* cache hit.
/// Derives `Eq` so the `--mesh` gate can compare two same-seed runs
/// whole.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshOutcome {
    /// Gateways in the full mesh.
    pub gateways: usize,
    /// Service records registered (spread round-robin across origins).
    pub records: u64,
    /// Gossip rounds until every content digest agreed.
    pub rounds_to_converge: u64,
    /// Whether the mesh converged within the round cap at all.
    pub converged: bool,
    /// Foreign-type requests answered from a local warmed cache.
    pub remote_hits: u64,
    /// `records * (gateways - 1)` — every record, at every non-origin.
    pub expected_remote_hits: u64,
    /// Total records applied mesh-wide (must equal the expected hits:
    /// each foreign record lands exactly once per gateway).
    pub records_applied: u64,
    /// The shared registry content digest all gateways agreed on.
    pub digest: u64,
}

/// The mesh convergence storm: `gateways` nodes in a full mesh over one
/// deterministic [`indiss_net::SimTransport`] bus, `records` services
/// registered round-robin across them, anti-entropy digest gossip until
/// every [`indiss_core::ServiceRegistry::content_digest`] agrees.
///
/// The scenario is a pure function of its arguments — `seed` only
/// flavours the service names so the digest is seed-dependent — and the
/// `--mesh` gate runs it twice to pin that down.
pub fn mesh_convergence(seed: u64, gateways: usize, records: u64) -> MeshOutcome {
    use indiss_core::{
        Event, EventStream, MeshConfig, MeshNode, RegistryConfig, SdpProtocol, ServiceRegistry,
    };
    use indiss_net::{SimTransport, Transport};
    use std::sync::Arc;

    let gateways = gateways.max(2);
    let bus: Arc<dyn Transport> = Arc::new(SimTransport::new());
    let ports: Vec<u16> = (0..gateways as u16).map(|i| 7100 + i).collect();
    let nodes: Vec<(ServiceRegistry, MeshNode)> = ports
        .iter()
        .map(|&port| {
            let registry =
                ServiceRegistry::new(RegistryConfig { shards: 4, ..RegistryConfig::default() });
            let mesh = MeshNode::new(
                registry.clone(),
                Arc::clone(&bus),
                MeshConfig { port, peers: ports.clone(), ..MeshConfig::default() },
            );
            mesh.start().expect("sim mesh always binds");
            (registry, mesh)
        })
        .collect();

    let t0 = SimTime::from_secs(1);
    let type_name = |r: u64| format!("mesh-{seed:08x}-{r}");
    for r in 0..records {
        let origin = (r as usize) % gateways;
        let ty = type_name(r);
        let advert = EventStream::framed(vec![
            Event::ServiceAlive,
            Event::ServiceType(ty.as_str().into()),
            Event::ResServUrl(format!("slp://10.0.0.{origin}/{ty}")),
            Event::ResTtl(3600),
        ]);
        nodes[origin].0.record_advert(SdpProtocol::Slp, &advert, t0);
    }

    // Gossip until every content digest agrees. The cap sits well above
    // the expected two rounds so a convergence regression fails the
    // gate loudly instead of spinning.
    let mut rounds_to_converge = 0u64;
    let mut converged = false;
    for round in 1..=8u64 {
        let now = SimTime::from_secs(round);
        for (_, mesh) in &nodes {
            mesh.run_round(now);
        }
        rounds_to_converge = round;
        let d0 = nodes[0].0.content_digest(now);
        if nodes.iter().all(|(reg, _)| reg.content_digest(now) == d0) {
            converged = true;
            break;
        }
    }

    // Every gateway must now answer every *foreign* type from its own
    // warmed cache — a remote hit, served without re-fan-out.
    let probe_at = SimTime::from_secs(rounds_to_converge);
    let mut remote_hits = 0u64;
    for r in 0..records {
        let origin = (r as usize) % gateways;
        let ty = type_name(r);
        for (g, (reg, _)) in nodes.iter().enumerate() {
            if g != origin && reg.cached_response(ty.as_str(), probe_at).is_some() {
                remote_hits += 1;
            }
        }
    }

    MeshOutcome {
        gateways,
        records,
        rounds_to_converge,
        converged,
        remote_hits,
        expected_remote_hits: records * (gateways as u64 - 1),
        records_applied: nodes.iter().map(|(_, m)| m.stats().records_applied).sum(),
        digest: nodes[0].0.content_digest(probe_at),
    }
}
