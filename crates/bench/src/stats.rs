//! Small statistics helpers for the evaluation harness.
//!
//! The paper reports "the median of 30 successful tests to avoid a mean
//! skewed by a single high or low value" (§4.3); [`summarize`] implements
//! exactly that methodology over a set of seeded trials.

use std::time::Duration;

/// Summary of a set of trials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    /// Number of successful trials.
    pub trials: usize,
    /// Median (the paper's headline statistic).
    pub median: Duration,
    /// Minimum observed.
    pub min: Duration,
    /// Maximum observed.
    pub max: Duration,
}

impl Summary {
    /// Median in fractional milliseconds, as the paper's tables print it.
    pub fn median_ms(&self) -> f64 {
        self.median.as_secs_f64() * 1e3
    }
}

/// Computes the median of a slice (interpolating even-length inputs by
/// taking the lower middle, as a physical measurement table would).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median(samples: &mut [Duration]) -> Duration {
    assert!(!samples.is_empty(), "median of empty sample set");
    samples.sort();
    samples[(samples.len() - 1) / 2]
}

/// Runs `trial` for each seed, collects successful durations, and
/// summarizes. Failed trials (`None`) are excluded, mirroring the paper's
/// "30 *successful* tests".
pub fn summarize<F: FnMut(u64) -> Option<Duration>>(
    seeds: std::ops::Range<u64>,
    mut trial: F,
) -> Summary {
    let mut samples: Vec<Duration> = seeds.filter_map(&mut trial).collect();
    assert!(!samples.is_empty(), "no successful trials");
    let min = *samples.iter().min().expect("nonempty");
    let max = *samples.iter().max().expect("nonempty");
    let med = median(&mut samples);
    Summary { trials: samples.len(), median: med, min, max }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_set() {
        let mut v =
            vec![Duration::from_millis(3), Duration::from_millis(1), Duration::from_millis(2)];
        assert_eq!(median(&mut v), Duration::from_millis(2));
    }

    #[test]
    fn median_resists_outliers() {
        let mut v =
            vec![Duration::from_millis(1), Duration::from_millis(1), Duration::from_secs(100)];
        assert_eq!(median(&mut v), Duration::from_millis(1));
    }

    #[test]
    fn summarize_skips_failures() {
        let s = summarize(0..10, |seed| {
            if seed % 2 == 0 {
                Some(Duration::from_millis(seed + 1))
            } else {
                None
            }
        });
        assert_eq!(s.trials, 5);
        assert_eq!(s.min, Duration::from_millis(1));
        assert_eq!(s.max, Duration::from_millis(9));
        assert_eq!(s.median, Duration::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "no successful trials")]
    fn summarize_panics_with_no_successes() {
        summarize(0..3, |_| None);
    }
}
