//! # indiss-bench — evaluation harness for the INDISS reproduction
//!
//! Regenerates every quantitative result of the paper's §4:
//!
//! | Paper result | Binary | Library entry |
//! |---|---|---|
//! | Table 2 (size requirements) | `table2` | [`size::table2`] |
//! | Fig. 7 (native response times) | `fig7` | [`scenarios::native_slp`], [`scenarios::native_upnp`] |
//! | Fig. 8 (INDISS on the service side) | `fig8` | [`scenarios::bridged`] |
//! | Fig. 9 (INDISS on the client side) | `fig9` | [`scenarios::bridged`] |
//! | Fig. 6 (traffic-threshold adaptation) | `fig6_adaptation` | [`scenarios::adaptation`] |
//! | §4.3 "no additional traffic" | `traffic` | [`scenarios::traffic_overhead`] |
//! | location × direction sweep (ablation) | `location_matrix` | [`scenarios::location_matrix`] |
//!
//! All response-time numbers are medians of 30 seeded virtual-time trials
//! (the paper's §4.3 methodology). Criterion benches (`cargo bench`)
//! additionally measure the wall-clock cost of the event-translation
//! pipeline itself.

pub mod alloc;
pub mod scenarios;
pub mod size;
pub mod stats;
pub mod worlds;

/// Byte accounting for every binary and test in this crate; see
/// [`alloc`].
#[global_allocator]
static COUNTING_ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

/// Seeds used by every median-of-30 measurement, mirroring §4.3.
pub const TRIAL_SEEDS: std::ops::Range<u64> = 1..31;

/// Formats a duration the way the paper's tables do (fractional ms).
pub fn fmt_ms(d: std::time::Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms < 1.0 {
        format!("{ms:.2} ms")
    } else {
        format!("{ms:.1} ms")
    }
}

/// Prints one measurement row: label, reproduction value, paper value.
pub fn print_row(label: &str, ours: &stats::Summary, paper: &str) {
    println!(
        "  {label:<44} {:>9}   (min {:>9}, max {:>9}, n={})   paper: {paper}",
        fmt_ms(ours.median),
        fmt_ms(ours.min),
        fmt_ms(ours.max),
        ours.trials,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ms_scales() {
        assert_eq!(fmt_ms(std::time::Duration::from_micros(120)), "0.12 ms");
        assert_eq!(fmt_ms(std::time::Duration::from_millis(40)), "40.0 ms");
    }

    /// Smoke-check the whole evaluation surface with a handful of seeds so
    /// `cargo test` catches scenario regressions without the full sweep.
    #[test]
    fn scenarios_produce_paper_shaped_results() {
        use scenarios::{bridged, native_slp, native_upnp, Deployment, Direction};
        let slp = stats::summarize(1..4, native_slp);
        let upnp = stats::summarize(1..4, native_upnp);
        assert!(slp.median < std::time::Duration::from_millis(2), "SLP fast: {slp:?}");
        assert!(
            upnp.median > std::time::Duration::from_millis(30)
                && upnp.median < std::time::Duration::from_millis(55),
            "UPnP ≈ 40 ms: {upnp:?}"
        );
        let svc = stats::summarize(1..4, |s| {
            bridged(s, Deployment::ServiceSide, Direction::SlpToUpnp, false)
        });
        assert!(
            svc.median > upnp.median,
            "bridged > native UPnP (two local rounds): {svc:?} vs {upnp:?}"
        );
        let cli = stats::summarize(1..4, |s| {
            bridged(s, Deployment::ClientSide, Direction::SlpToUpnp, false)
        });
        assert!(
            cli.median > svc.median,
            "client side pays the network crossings: {cli:?} vs {svc:?}"
        );
    }

    #[test]
    fn warm_cache_hits_the_papers_best_case() {
        use scenarios::{bridged, Deployment, Direction};
        let warm = stats::summarize(1..4, |s| {
            bridged(s, Deployment::ClientSide, Direction::UpnpToSlp, true)
        });
        // Paper: 0.12 ms. Ours must be sub-millisecond.
        assert!(
            warm.median < std::time::Duration::from_millis(1),
            "warm best case sub-ms: {warm:?}"
        );
    }

    #[test]
    fn fig4_trace_matches_paper() {
        let names = scenarios::fig4_event_names();
        assert_eq!(*names.first().unwrap(), "SDP_C_START");
        assert_eq!(*names.last().unwrap(), "SDP_C_STOP");
        for expected in [
            "SDP_NET_MULTICAST",
            "SDP_NET_SOURCE_ADDR",
            "SDP_SERVICE_REQUEST",
            "SDP_REQ_VERSION",
            "SDP_REQ_SCOPE",
            "SDP_REQ_PREDICATE",
            "SDP_REQ_ID",
            "SDP_SERVICE_TYPE",
        ] {
            assert!(names.contains(&expected), "{expected} missing from {names:?}");
        }
    }

    /// The acceptance bar for the registry subsystem: ≥ 5,000 short-lived
    /// registrations across all three SDPs, with memory bounded by the
    /// configured capacity at every instant, full reclamation once TTLs
    /// elapse, and no cache-hit latency degradation under churn.
    #[test]
    fn registry_churn_stays_bounded_at_scale() {
        let outcome = scenarios::registry_churn(5, 5_100);
        assert!(outcome.adverts_sent >= 5_000);
        assert!(outcome.adverts_recorded >= 5_000, "nearly every advert recorded: {outcome:?}");
        assert!(
            outcome.peak_records <= outcome.record_capacity,
            "capacity bound held at every sample: {outcome:?}"
        );
        assert!(outcome.peak_records > 0, "the flood actually filled the registry");
        assert_eq!(outcome.final_records, 0, "all TTL'd records reclaimed: {outcome:?}");
        assert!(
            outcome.records_expired + outcome.records_evicted >= 5_000,
            "records left via expiry or eviction: {outcome:?}"
        );
        let before = outcome.warm_hit_before.expect("warm probe before churn");
        let after = outcome.warm_hit_after.expect("warm probe after churn");
        assert!(
            after <= before * 3,
            "cache-hit latency stable under churn: before={before:?} after={after:?}"
        );
        // The GC'd interner: ~5,100 distinct type names, URLs and USNs
        // (roughly 300 KB of string data) flowed through the pipeline,
        // and all their records are gone — the interner must be back
        // near its pre-churn size, not retaining them for the process
        // lifetime. The slack covers the steady vocabulary, the bounded
        // response cache's surviving entries, and symbols other
        // concurrently running tests keep alive.
        assert!(
            outcome.memory.within_budget(),
            "interned symbol data must stay bounded under churn: {} -> {} bytes ({} entries \
             reclaimed by the final collect)",
            outcome.interned_bytes_before,
            outcome.interned_bytes_after,
            outcome.interner_reclaimed,
        );
    }

    /// The multi-threaded warm path answers every request from the
    /// shared sharded registry, from whichever worker owns the type's
    /// shard (throughput ratios are the `request_storm` binary's
    /// business — under a loaded test runner only the counts are
    /// stable).
    #[test]
    fn warm_hit_scaling_answers_everything_from_the_cache() {
        for workers in [1, 4] {
            let point =
                scenarios::warm_hit_scaling(workers, 300, 16, std::time::Duration::from_micros(20));
            assert_eq!(point.workers, workers);
            assert_eq!(point.cache_hits, 300, "all-warm storm: {point:?}");
            assert!(point.throughput_rps > 0.0);
        }
    }

    /// The acceptance bar for the zero-copy event pipeline: a warm-hit
    /// bridged request must allocate at least 5× fewer bytes than the
    /// pre-refactor pipeline (3399 B/request, measured with this same
    /// probe before `EventStream` became a shared buffer), and the
    /// request storm must exercise both caches.
    #[test]
    fn request_storm_hits_caches_and_pipeline_stays_lean() {
        let per_request = scenarios::warm_hit_pipeline_bytes(5_000);
        assert!(
            per_request * 5 <= 3399,
            "warm-hit pipeline must stay ≥5× below the 3399 B pre-refactor \
             baseline, measured {per_request} B/request"
        );

        let outcome = scenarios::request_storm(7, 4, 6);
        assert!(outcome.cache_hits >= 20, "clock queries answered warm: {outcome:?}");
        assert!(
            outcome.negative_hits >= 4 * 5,
            "persistent absent types absorbed by the negative cache: {outcome:?}"
        );
        assert!(
            outcome.requests_bridged < outcome.requests_sent as u64,
            "most of the storm never fans out: {outcome:?}"
        );
        let p50 = outcome.warm_hit_p50.expect("warm latencies measured");
        let p99 = outcome.warm_hit_p99.expect("warm latencies measured");
        assert!(p50 <= p99);
        assert!(
            p99 < std::time::Duration::from_millis(5),
            "warm hits stay in the paper's sub-5ms regime: {outcome:?}"
        );
    }

    #[test]
    fn no_additional_network_traffic_with_service_side_indiss() {
        let (without, with) = scenarios::traffic_overhead(5);
        // The UPnP leg is loopback on the service host; the SLP leg is the
        // same as native. INDISS adds the AttrRqst/AttrRply round the SLP
        // unit issues, so allow a modest margin, not a blow-up.
        assert!(
            with <= without * 3,
            "traffic with INDISS ({with}) should stay in the native regime ({without})"
        );
    }
}
