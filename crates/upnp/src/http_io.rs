//! HTTP over the simulated TCP transport: a tiny server and client.
//!
//! UPnP devices serve their description document and control endpoint over
//! plain HTTP/1.1; control points (and the INDISS UPnP unit, §2.4 of the
//! paper) fetch with GET and invoke with POST. Messages are delimited on
//! the byte stream with [`indiss_http::message_len`], so segmented
//! delivery is handled correctly.

use std::cell::RefCell;
use std::net::{Ipv4Addr, SocketAddrV4};
use std::rc::Rc;
use std::time::Duration;

use indiss_http::{message_len, Request, Response};
use indiss_net::{Completion, NetResult, Node, TcpListener, World};

/// Handler invoked per request; returns the response to send.
pub type HttpHandler = Rc<dyn Fn(&World, &Request) -> Response>;

/// A minimal HTTP/1.1 server: one request per connection (the UPnP stacks
/// of the paper's era used non-persistent connections).
pub struct HttpServer {
    listener: TcpListener,
}

impl HttpServer {
    /// Starts serving on `node:port`. `processing_delay` models the
    /// stack's per-request handling cost (Cyberlink's was large; see
    /// `UpnpConfig`), applied between full request receipt and response.
    ///
    /// # Errors
    ///
    /// Network errors if the TCP port is taken.
    pub fn start(
        node: &Node,
        port: u16,
        processing_delay: Duration,
        handler: HttpHandler,
    ) -> NetResult<HttpServer> {
        let listener = node.tcp_listen(port)?;
        listener.on_accept(move |_, stream| {
            let buffer: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
            let handler = Rc::clone(&handler);
            let stream_out = stream.clone();
            stream.on_receive(move |world, bytes| {
                let mut buf = buffer.borrow_mut();
                buf.extend_from_slice(&bytes);
                let Some(len) = message_len(&buf) else {
                    return; // need more segments
                };
                let raw: Vec<u8> = buf.drain(..len).collect();
                drop(buf);
                let response = match Request::parse(&raw) {
                    Ok(req) => handler(world, &req),
                    Err(_) => Response::new(400),
                };
                let out = stream_out.clone();
                world.schedule_in(processing_delay, move |_| {
                    let _ = out.send(&response.serialize());
                    out.close();
                });
            });
        });
        Ok(HttpServer { listener })
    }

    /// The address being served.
    ///
    /// # Errors
    ///
    /// [`indiss_net::NetError::SocketClosed`] after [`HttpServer::stop`].
    pub fn local_addr(&self) -> NetResult<SocketAddrV4> {
        self.listener.local_addr()
    }

    /// Stops accepting connections.
    pub fn stop(&self) {
        self.listener.close();
    }
}

/// Parses an `http://host:port/path` URL into address and path.
///
/// Returns `None` for non-http schemes, unparsable hosts, or bad ports.
/// The default port is 80 and the default path `/`.
pub fn parse_http_url(url: &str) -> Option<(SocketAddrV4, String)> {
    let rest = url.strip_prefix("http://")?;
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], rest[i..].to_owned()),
        None => (rest, "/".to_owned()),
    };
    let (host, port) = match authority.rsplit_once(':') {
        Some((h, p)) => (h, p.parse::<u16>().ok()?),
        None => (authority, 80),
    };
    let ip: Ipv4Addr = host.parse().ok()?;
    Some((SocketAddrV4::new(ip, port), path))
}

/// Issues one HTTP request over a fresh connection; the completion holds
/// the parsed response, or `None` on connection failure.
///
/// The response may arrive in multiple TCP segments; they are reassembled
/// here.
pub fn http_request(
    node: &Node,
    addr: SocketAddrV4,
    request: Request,
) -> Completion<Option<Response>> {
    let done: Completion<Option<Response>> = Completion::new();
    let done_cb = done.clone();
    node.tcp_connect(addr, move |_, stream| {
        let stream = match stream {
            Ok(s) => s,
            Err(_) => {
                done_cb.complete(None);
                return;
            }
        };
        let buffer: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        let done_data = done_cb.clone();
        let stream_for_close = stream.clone();
        stream.on_receive(move |_, bytes| {
            let mut buf = buffer.borrow_mut();
            buf.extend_from_slice(&bytes);
            if let Some(len) = message_len(&buf) {
                let raw: Vec<u8> = buf.drain(..len).collect();
                drop(buf);
                done_data.complete(Response::parse(&raw).ok());
                stream_for_close.close();
            }
        });
        let done_close = done_cb.clone();
        stream.on_close(move |_| {
            // Server closed before a full message: report failure.
            done_close.complete(None);
        });
        let _ = stream.send(&request.serialize());
    });
    done
}

/// Convenience: `GET` a URL and return the parsed response.
///
/// The completion holds `None` when the URL is unparsable or the
/// connection failed.
pub fn http_get(node: &Node, url: &str) -> Completion<Option<Response>> {
    let Some((addr, path)) = parse_http_url(url) else {
        let done = Completion::new();
        done.complete(None);
        return done;
    };
    let mut req = Request::new(indiss_http::Method::Get, path);
    req.headers.insert("HOST", addr.to_string());
    http_request(node, addr, req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use indiss_http::Method;
    use indiss_net::World;

    fn spawn_echo_server(node: &Node, port: u16, delay: Duration) -> HttpServer {
        HttpServer::start(
            node,
            port,
            delay,
            Rc::new(|_, req: &Request| {
                let mut resp = Response::ok();
                resp.body = format!("you asked for {}", req.target).into_bytes();
                resp
            }),
        )
        .unwrap()
    }

    #[test]
    fn get_roundtrip() {
        let world = World::new(2);
        let server_node = world.add_node("server");
        let client_node = world.add_node("client");
        let _server = spawn_echo_server(&server_node, 4004, Duration::from_millis(1));
        let url = format!("http://{}:4004/description.xml", server_node.addr());
        let done = http_get(&client_node, &url);
        world.run_until_idle();
        let resp = done.take().unwrap().expect("got response");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"you asked for /description.xml");
    }

    #[test]
    fn connection_refused_reports_none() {
        let world = World::new(2);
        let server_node = world.add_node("server");
        let client_node = world.add_node("client");
        let url = format!("http://{}:4004/x", server_node.addr());
        let done = http_get(&client_node, &url);
        world.run_until_idle();
        assert_eq!(done.take().unwrap(), None);
    }

    #[test]
    fn bad_url_reports_none_immediately() {
        let world = World::new(2);
        let client = world.add_node("client");
        let done = http_get(&client, "ftp://nope");
        assert_eq!(done.take().unwrap(), None);
        let _ = world;
    }

    #[test]
    fn processing_delay_is_respected() {
        let world = World::new(2);
        let server_node = world.add_node("server");
        let client_node = world.add_node("client");
        let _server = spawn_echo_server(&server_node, 80, Duration::from_millis(20));
        let url = format!("http://{}:80/", server_node.addr());
        let t0 = world.now();
        let done = http_get(&client_node, &url);
        world.run_until_idle();
        assert!(done.take().unwrap().is_some());
        let elapsed = world.now() - t0;
        assert!(elapsed >= Duration::from_millis(20), "elapsed {elapsed:?}");
    }

    #[test]
    fn url_parsing() {
        let (addr, path) = parse_http_url("http://10.0.0.2:4004/description.xml").unwrap();
        assert_eq!(addr, SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, 2), 4004));
        assert_eq!(path, "/description.xml");
        let (addr, path) = parse_http_url("http://10.0.0.2").unwrap();
        assert_eq!(addr.port(), 80);
        assert_eq!(path, "/");
        assert!(parse_http_url("https://10.0.0.2/").is_none());
        assert!(parse_http_url("http://not-an-ip/").is_none());
    }

    #[test]
    fn post_roundtrip() {
        let world = World::new(2);
        let server_node = world.add_node("server");
        let client_node = world.add_node("client");
        let _server = HttpServer::start(
            &server_node,
            4005,
            Duration::from_millis(1),
            Rc::new(|_, req: &Request| {
                assert_eq!(req.method, Method::Post);
                let mut resp = Response::ok();
                resp.body = req.body.clone();
                resp
            }),
        )
        .unwrap();
        let mut req = Request::new(Method::Post, "/control");
        req.body = b"<soap/>".to_vec();
        let addr = SocketAddrV4::new(server_node.addr(), 4005);
        let done = http_request(&client_node, addr, req);
        world.run_until_idle();
        assert_eq!(done.take().unwrap().unwrap().body, b"<soap/>");
    }
}
