//! UPnP device: SSDP advertisement + description/control HTTP server.

use std::cell::RefCell;
use std::collections::HashMap;
use std::net::SocketAddrV4;
use std::rc::Rc;
use std::time::Duration;

use indiss_http::{Request, Response};
use indiss_net::{Datagram, NetResult, Node, UdpSocket, World};
#[cfg(test)]
use indiss_ssdp::MSearch;
use indiss_ssdp::{
    Notify, NotifySubType, SearchResponse, SearchTarget, SsdpMessage, SSDP_MULTICAST_GROUP,
    SSDP_PORT,
};

use crate::description::DeviceDescription;
use crate::http_io::HttpServer;
use crate::soap::{SoapAction, SoapResponse};

/// Tuning knobs for a device, calibrated to the paper's testbed.
///
/// The paper measures a native UPnP search at ~40 ms on a 10 Mb/s LAN
/// (Fig. 7) — dominated by the Cyberlink stack's handling of the M-SEARCH,
/// not the wire. `ssdp_processing` models that cost; `http_processing`
/// models the description/control server's per-request cost, sized so the
/// two-round INDISS translation lands near the paper's 65 ms (Fig. 8).
#[derive(Debug, Clone)]
pub struct UpnpConfig {
    /// Delay between receiving an M-SEARCH and sending the response.
    pub ssdp_processing: Duration,
    /// HTTP server per-request processing delay.
    pub http_processing: Duration,
    /// TCP port of the description/control server.
    pub description_port: u16,
    /// Interval between periodic `ssdp:alive` bursts.
    pub notify_interval: Duration,
    /// Advertised validity (CACHE-CONTROL max-age).
    pub max_age: u32,
    /// Whether to add the random `[0, MX]` response jitter. The paper's
    /// Fig. 4 search uses `MX: 0`, so this matters only for larger MX.
    pub respect_mx: bool,
    /// `SERVER:` banner.
    pub server_banner: String,
}

impl Default for UpnpConfig {
    fn default() -> Self {
        UpnpConfig {
            ssdp_processing: Duration::from_micros(38_500),
            http_processing: Duration::from_micros(23_000),
            description_port: 4004,
            notify_interval: Duration::from_secs(300),
            max_age: 1800,
            respect_mx: true,
            server_banner: "UPnP/1.0 indiss-upnp/0.1".to_owned(),
        }
    }
}

/// SOAP action handler: `(world, call) -> response`.
pub type ActionHandler = Rc<dyn Fn(&World, &SoapAction) -> SoapResponse>;

/// One registered action: `(service id, action name)` plus its handler.
type ActionEntry = ((String, String), ActionHandler);

struct DeviceInner {
    node: Node,
    ssdp: UdpSocket,
    config: UpnpConfig,
    description: DeviceDescription,
    actions: HashMap<(String, String), ActionHandler>,
    running: bool,
}

/// A running UPnP device.
///
/// Joins `239.255.255.250:1900`, answers matching `M-SEARCH`es, sends
/// periodic `ssdp:alive` notifications, serves `GET /description.xml` and
/// `POST` control over TCP.
#[derive(Clone)]
pub struct UpnpDevice {
    inner: Rc<RefCell<DeviceInner>>,
    server: Rc<HttpServer>,
}

impl UpnpDevice {
    /// Starts a device on `node` with the given description.
    ///
    /// # Errors
    ///
    /// Network errors from binding SSDP (shared) or the TCP port.
    pub fn start(
        node: &Node,
        description: DeviceDescription,
        config: UpnpConfig,
    ) -> NetResult<UpnpDevice> {
        let ssdp = node.udp_bind_shared(SSDP_PORT)?;
        ssdp.join_multicast(SSDP_MULTICAST_GROUP)?;
        let inner = Rc::new(RefCell::new(DeviceInner {
            node: node.clone(),
            ssdp: ssdp.clone(),
            config: config.clone(),
            description,
            actions: HashMap::new(),
            running: true,
        }));

        // HTTP side: description document + SOAP control dispatch.
        let http_inner = Rc::clone(&inner);
        let server = HttpServer::start(
            node,
            config.description_port,
            config.http_processing,
            Rc::new(move |world, req| Self::handle_http(&http_inner, world, req)),
        )?;

        let device = UpnpDevice { inner, server: Rc::new(server) };
        let handler = device.clone();
        ssdp.on_receive(move |world, dgram| handler.handle_ssdp(world, dgram));

        // Announce immediately, then periodically.
        let announcer = device.clone();
        node.world().schedule_in(Duration::ZERO, move |w| announcer.announce_and_reschedule(w));
        Ok(device)
    }

    /// Registers a SOAP action handler for `(service_type, action)`.
    pub fn register_action<F>(&self, service_type: &str, action: &str, f: F)
    where
        F: Fn(&World, &SoapAction) -> SoapResponse + 'static,
    {
        self.inner
            .borrow_mut()
            .actions
            .insert((service_type.to_owned(), action.to_owned()), Rc::new(f));
    }

    /// The device's description document URL.
    pub fn location(&self) -> String {
        let inner = self.inner.borrow();
        format!("http://{}:{}/description.xml", inner.node.addr(), inner.config.description_port)
    }

    /// The device's description.
    pub fn description(&self) -> DeviceDescription {
        self.inner.borrow().description.clone()
    }

    /// Sends `ssdp:byebye` for all targets and stops answering.
    pub fn shutdown(&self) {
        let (targets, usn_base, socket) = {
            let mut inner = self.inner.borrow_mut();
            inner.running = false;
            (targets_of(&inner.description), inner.description.udn.clone(), inner.ssdp.clone())
        };
        for nt in targets {
            let bye = Notify {
                usn: usn_for(&usn_base, &nt),
                nt,
                nts: NotifySubType::ByeBye,
                location: None,
                server: String::new(),
                max_age: 0,
            };
            let _ =
                socket.send_to(&bye.to_bytes(), SocketAddrV4::new(SSDP_MULTICAST_GROUP, SSDP_PORT));
        }
        self.server.stop();
    }

    /// Multicasts one round of `ssdp:alive` notifications (one per target,
    /// as UPnP-DA requires).
    pub fn announce(&self) {
        let (targets, usn_base, location, server_banner, max_age, socket, running) = {
            let inner = self.inner.borrow();
            (
                targets_of(&inner.description),
                inner.description.udn.clone(),
                self.location(),
                inner.config.server_banner.clone(),
                inner.config.max_age,
                inner.ssdp.clone(),
                inner.running,
            )
        };
        if !running {
            return;
        }
        for nt in targets {
            let alive = Notify {
                usn: usn_for(&usn_base, &nt),
                nt,
                nts: NotifySubType::Alive,
                location: Some(location.clone()),
                server: server_banner.clone(),
                max_age,
            };
            let _ = socket
                .send_to(&alive.to_bytes(), SocketAddrV4::new(SSDP_MULTICAST_GROUP, SSDP_PORT));
        }
    }

    fn announce_and_reschedule(&self, world: &World) {
        if !self.inner.borrow().running {
            return;
        }
        self.announce();
        let interval = self.inner.borrow().config.notify_interval;
        let this = self.clone();
        world.schedule_in(interval, move |w| this.announce_and_reschedule(w));
    }

    fn handle_ssdp(&self, world: &World, dgram: Datagram) {
        if !self.inner.borrow().running {
            return;
        }
        let Ok(SsdpMessage::MSearch(search)) = SsdpMessage::parse(&dgram.payload) else {
            return; // devices ignore NOTIFYs and non-SSDP traffic
        };
        let matches: Vec<SearchTarget> = {
            let inner = self.inner.borrow();
            targets_of(&inner.description)
                .into_iter()
                .filter(|offered| search.st.matches(offered))
                .collect()
        };
        if matches.is_empty() {
            return; // silent on no match, per UPnP-DA
        }
        // Respond with the *searched* target as ST (UPnP-DA §1.3.3), after
        // the stack's processing delay plus optional MX jitter.
        let (delay, usn_base, location, banner, max_age, socket) = {
            let inner = self.inner.borrow();
            let mut d = inner.config.ssdp_processing;
            if inner.config.respect_mx && search.mx > 0 {
                d += world.sample_jitter(Duration::from_secs(u64::from(search.mx)));
            }
            (
                d,
                inner.description.udn.clone(),
                self.location(),
                inner.config.server_banner.clone(),
                inner.config.max_age,
                inner.ssdp.clone(),
            )
        };
        let st =
            if search.st == SearchTarget::All { matches[0].clone() } else { search.st.clone() };
        let response =
            SearchResponse { usn: usn_for(&usn_base, &st), st, location, server: banner, max_age };
        world.schedule_in(delay, move |_| {
            let _ = socket.send_to(&response.to_bytes(), dgram.src);
        });
    }

    fn handle_http(inner: &Rc<RefCell<DeviceInner>>, world: &World, req: &Request) -> Response {
        let (description, actions): (DeviceDescription, Vec<ActionEntry>) = {
            let i = inner.borrow();
            (
                i.description.clone(),
                i.actions.iter().map(|(k, v)| (k.clone(), Rc::clone(v))).collect(),
            )
        };
        match req.method {
            indiss_http::Method::Get if req.target == "/description.xml" => {
                let mut resp = Response::ok();
                resp.headers.insert("Content-Type", "text/xml");
                resp.body = description.to_xml().into_bytes();
                resp
            }
            indiss_http::Method::Get => {
                // SCPD documents: serve a stub for known services.
                if description.services.iter().any(|s| s.scpd_url == req.target) {
                    let mut resp = Response::ok();
                    resp.headers.insert("Content-Type", "text/xml");
                    resp.body = b"<?xml version=\"1.0\"?><scpd/>".to_vec();
                    resp
                } else {
                    Response::new(404)
                }
            }
            indiss_http::Method::Post => {
                let Some(service) =
                    description.services.iter().find(|s| s.control_url == req.target)
                else {
                    return Response::new(404);
                };
                let Some(call) = std::str::from_utf8(&req.body).ok().and_then(SoapAction::parse)
                else {
                    return Response::new(400);
                };
                let key = (service.service_type.clone(), call.action.clone());
                match actions.iter().find(|(k, _)| *k == key) {
                    Some((_, handler)) => {
                        let soap = handler(world, &call);
                        let mut resp = Response::ok();
                        resp.headers.insert("Content-Type", "text/xml");
                        resp.headers.insert("EXT", "");
                        resp.body = soap.to_xml().into_bytes();
                        resp
                    }
                    None => Response::new(500),
                }
            }
            _ => Response::new(400),
        }
    }
}

/// All notification targets a device advertises (UPnP-DA §1.1.2):
/// root device, its UUID, the device type, and each service type.
fn targets_of(desc: &DeviceDescription) -> Vec<SearchTarget> {
    let mut out = vec![SearchTarget::RootDevice];
    let uuid = desc.udn.strip_prefix("uuid:").unwrap_or(&desc.udn);
    out.push(SearchTarget::Uuid(uuid.to_owned()));
    if let Ok(t) = desc.device_type.parse::<SearchTarget>() {
        out.push(t);
    }
    for s in &desc.services {
        if let Ok(t) = s.service_type.parse::<SearchTarget>() {
            out.push(t);
        }
    }
    out
}

/// USN for a target: `uuid:X::<target>` (or just `uuid:X` for the UUID
/// target itself).
fn usn_for(udn: &str, target: &SearchTarget) -> String {
    let uuid = udn.strip_prefix("uuid:").unwrap_or(udn);
    match target {
        SearchTarget::Uuid(_) => format!("uuid:{uuid}"),
        other => format!("uuid:{uuid}::{other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::description::ServiceDescription;
    use indiss_net::{Collector, World};

    fn clock_desc() -> DeviceDescription {
        DeviceDescription {
            device_type: "urn:schemas-upnp-org:device:clock:1".into(),
            friendly_name: "Test Clock".into(),
            manufacturer: "indiss".into(),
            manufacturer_url: String::new(),
            model_description: String::new(),
            model_name: "Clock".into(),
            model_number: "1".into(),
            model_url: String::new(),
            udn: "uuid:test-clock".into(),
            services: vec![ServiceDescription::conventional("timer", 1)],
        }
    }

    #[test]
    fn device_answers_matching_msearch() {
        let world = World::new(11);
        let dev_node = world.add_node("device");
        let cp_node = world.add_node("cp");
        let _dev = UpnpDevice::start(&dev_node, clock_desc(), UpnpConfig::default()).unwrap();
        let sock = cp_node.udp_bind_ephemeral().unwrap();
        let hits: Collector<SsdpMessage> = Collector::new();
        let hits2 = hits.clone();
        sock.on_receive(move |_, d| {
            if let Ok(m) = SsdpMessage::parse(&d.payload) {
                hits2.push(m);
            }
        });
        let search = MSearch::new(SearchTarget::device_urn("clock", 1), 0);
        sock.send_to(&search.to_bytes(), SocketAddrV4::new(SSDP_MULTICAST_GROUP, SSDP_PORT))
            .unwrap();
        world.run_for(Duration::from_secs(1));
        let responses = hits.snapshot();
        assert_eq!(responses.len(), 1);
        match &responses[0] {
            SsdpMessage::Response(r) => {
                assert!(r.location.ends_with("/description.xml"));
                assert_eq!(r.st, SearchTarget::device_urn("clock", 1));
                assert!(r.usn.contains("test-clock"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn device_silent_on_mismatched_search() {
        let world = World::new(11);
        let dev_node = world.add_node("device");
        let cp_node = world.add_node("cp");
        let _dev = UpnpDevice::start(&dev_node, clock_desc(), UpnpConfig::default()).unwrap();
        let sock = cp_node.udp_bind_ephemeral().unwrap();
        let hits: Collector<()> = Collector::new();
        let hits2 = hits.clone();
        sock.on_receive(move |_, _| hits2.push(()));
        let search = MSearch::new(SearchTarget::device_urn("printer", 1), 0);
        sock.send_to(&search.to_bytes(), SocketAddrV4::new(SSDP_MULTICAST_GROUP, SSDP_PORT))
            .unwrap();
        world.run_for(Duration::from_secs(1));
        assert!(hits.is_empty());
    }

    #[test]
    fn device_advertises_all_targets_on_start() {
        let world = World::new(11);
        let dev_node = world.add_node("device");
        let listen_node = world.add_node("listener");
        let sock = listen_node.udp_bind(SSDP_PORT).unwrap();
        sock.join_multicast(SSDP_MULTICAST_GROUP).unwrap();
        let notifies: Collector<Notify> = Collector::new();
        let n2 = notifies.clone();
        sock.on_receive(move |_, d| {
            if let Ok(SsdpMessage::Notify(n)) = SsdpMessage::parse(&d.payload) {
                n2.push(n);
            }
        });
        let _dev = UpnpDevice::start(&dev_node, clock_desc(), UpnpConfig::default()).unwrap();
        world.run_for(Duration::from_secs(1));
        let alive = notifies.snapshot();
        // rootdevice + uuid + device type + 1 service = 4 targets.
        assert_eq!(alive.len(), 4);
        assert!(alive.iter().all(|n| n.nts == NotifySubType::Alive));
        assert!(alive.iter().any(|n| n.nt == SearchTarget::RootDevice));
    }

    #[test]
    fn shutdown_sends_byebye_and_stops_answers() {
        let world = World::new(11);
        let dev_node = world.add_node("device");
        let listen_node = world.add_node("listener");
        let dev = UpnpDevice::start(&dev_node, clock_desc(), UpnpConfig::default()).unwrap();
        world.run_for(Duration::from_secs(1));

        let sock = listen_node.udp_bind(SSDP_PORT).unwrap();
        sock.join_multicast(SSDP_MULTICAST_GROUP).unwrap();
        let byes: Collector<Notify> = Collector::new();
        let b2 = byes.clone();
        sock.on_receive(move |_, d| {
            if let Ok(SsdpMessage::Notify(n)) = SsdpMessage::parse(&d.payload) {
                if n.nts == NotifySubType::ByeBye {
                    b2.push(n);
                }
            }
        });
        dev.shutdown();
        world.run_for(Duration::from_secs(1));
        assert_eq!(byes.len(), 4);

        // And no more M-SEARCH answers.
        let probe = listen_node.udp_bind_ephemeral().unwrap();
        let hits: Collector<()> = Collector::new();
        let h2 = hits.clone();
        probe.on_receive(move |_, _| h2.push(()));
        probe
            .send_to(
                &MSearch::new(SearchTarget::All, 0).to_bytes(),
                SocketAddrV4::new(SSDP_MULTICAST_GROUP, SSDP_PORT),
            )
            .unwrap();
        world.run_for(Duration::from_secs(1));
        assert!(hits.is_empty());
    }

    #[test]
    fn native_search_latency_matches_paper_regime() {
        // Fig. 7: UPnP→UPnP ≈ 40 ms. Our calibrated device must land
        // within a sensible band of that.
        let world = World::new(13);
        let dev_node = world.add_node("device");
        let cp_node = world.add_node("cp");
        let _dev = UpnpDevice::start(&dev_node, clock_desc(), UpnpConfig::default()).unwrap();
        world.run_for(Duration::from_secs(1)); // let announcements settle
        let sock = cp_node.udp_bind_ephemeral().unwrap();
        let t0 = world.now();
        let reply_at: indiss_net::Completion<indiss_net::SimTime> = indiss_net::Completion::new();
        let r2 = reply_at.clone();
        sock.on_receive(move |w, _| r2.complete(w.now()));
        sock.send_to(
            &MSearch::new(SearchTarget::device_urn("clock", 1), 0).to_bytes(),
            SocketAddrV4::new(SSDP_MULTICAST_GROUP, SSDP_PORT),
        )
        .unwrap();
        world.run_for(Duration::from_secs(2));
        let rt = reply_at.take().expect("answered") - t0;
        assert!(rt > Duration::from_millis(30) && rt < Duration::from_millis(55), "{rt:?}");
    }
}
