//! The paper's running example: a CyberGarage-style UPnP clock device.
//!
//! §2.4 and Fig. 4 of the INDISS paper use a clock device hosted by the
//! Cyberlink for Java stack. This module reproduces it: same description
//! fields (`CyberGarage Clock Device`, `CyberUPnP Clock Device`, model
//! `Clock` 1.0), a `timer` service at `/service/timer/control`, and a
//! `GetTime` SOAP action that reports the simulation clock.

use indiss_net::{NetResult, Node};

use crate::description::{DeviceDescription, ServiceDescription};
use crate::device::{UpnpConfig, UpnpDevice};
use crate::soap::SoapResponse;

/// Service type URN of the clock's timer service.
pub const TIMER_SERVICE: &str = "urn:schemas-upnp-org:service:timer:1";

/// Device type URN of the clock.
pub const CLOCK_DEVICE_TYPE: &str = "urn:schemas-upnp-org:device:clock:1";

/// A running clock device (thin wrapper over [`UpnpDevice`]).
#[derive(Clone)]
pub struct ClockDevice {
    device: UpnpDevice,
}

impl ClockDevice {
    /// Starts the clock on `node`.
    ///
    /// # Errors
    ///
    /// Network errors from the underlying [`UpnpDevice::start`].
    pub fn start(node: &Node, config: UpnpConfig) -> NetResult<ClockDevice> {
        let device = UpnpDevice::start(node, Self::description_for(node), config)?;
        device.register_action(TIMER_SERVICE, "GetTime", |world, _call| {
            let total_secs = world.now().as_secs_f64() as u64;
            let (h, m, s) = (total_secs / 3600 % 24, total_secs / 60 % 60, total_secs % 60);
            SoapResponse::new("GetTime", TIMER_SERVICE)
                .with_arg("CurrentTime", &format!("{h:02}:{m:02}:{s:02}"))
        });
        Ok(ClockDevice { device })
    }

    /// The paper's clock description, parameterized by host address so the
    /// UDN stays unique when several clocks run in one world.
    pub fn description_for(node: &Node) -> DeviceDescription {
        DeviceDescription {
            device_type: CLOCK_DEVICE_TYPE.to_owned(),
            friendly_name: "CyberGarage Clock Device".to_owned(),
            manufacturer: "CyberGarage".to_owned(),
            manufacturer_url: "http://www.cybergarage.org".to_owned(),
            model_description: "CyberUPnP Clock Device".to_owned(),
            model_name: "Clock".to_owned(),
            model_number: "1.0".to_owned(),
            model_url: "http://www.cybergarage.org".to_owned(),
            udn: format!("uuid:ClockDevice-{}", node.addr()),
            services: vec![ServiceDescription::conventional("timer", 1)],
        }
    }

    /// The underlying device (for shutdown, location, etc.).
    pub fn device(&self) -> &UpnpDevice {
        &self.device
    }

    /// Description document URL.
    pub fn location(&self) -> String {
        self.device.location()
    }

    /// Stops the clock with `ssdp:byebye`.
    pub fn shutdown(&self) {
        self.device.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control_point::{ControlPoint, ControlPointConfig};
    use crate::soap::SoapAction;
    use indiss_net::World;
    use indiss_ssdp::SearchTarget;
    use std::time::Duration;

    #[test]
    fn clock_is_discoverable_and_tells_time() {
        let world = World::new(31);
        let clock_node = world.add_node("clock");
        let cp_node = world.add_node("cp");
        let clock = ClockDevice::start(&clock_node, UpnpConfig::default()).unwrap();
        let cp = ControlPoint::start(&cp_node, ControlPointConfig::default()).unwrap();
        world.run_for(Duration::from_secs(1));

        let described = cp.discover_described(&world, SearchTarget::device_urn("clock", 1));
        world.run_for(Duration::from_secs(3));
        let (_, desc) = described.take().unwrap().expect("clock described");
        assert_eq!(desc.friendly_name, "CyberGarage Clock Device");
        assert_eq!(desc.model_description, "CyberUPnP Clock Device");

        let base = clock.location().replace("/description.xml", "");
        let control_url = format!("{base}{}", desc.services[0].control_url);
        let resp = cp.invoke(&world, &control_url, &SoapAction::new("GetTime", TIMER_SERVICE));
        world.run_for(Duration::from_secs(2));
        let soap = resp.take().unwrap().expect("time told");
        let time = soap.arg("CurrentTime").unwrap();
        assert_eq!(time.len(), 8, "HH:MM:SS, got {time}");
    }

    #[test]
    fn descriptions_are_unique_per_node() {
        let world = World::new(31);
        let a = world.add_node("a");
        let b = world.add_node("b");
        assert_ne!(ClockDevice::description_for(&a).udn, ClockDevice::description_for(&b).udn);
    }
}
