//! UPnP control point: active search, passive NOTIFY cache, description
//! fetch and SOAP invocation.

use std::cell::RefCell;
use std::net::SocketAddrV4;
use std::rc::Rc;
use std::time::Duration;

use indiss_http::{Method, Request};
use indiss_net::{Collector, Completion, Datagram, NetResult, Node, SimTime, UdpSocket, World};
use indiss_ssdp::{
    MSearch, NotifySubType, SearchResponse, SearchTarget, SsdpMessage, SSDP_MULTICAST_GROUP,
    SSDP_PORT,
};

use crate::description::DeviceDescription;
use crate::http_io::{http_request, parse_http_url};
use crate::soap::{SoapAction, SoapResponse};

/// A device known to the control point (from a search response or an
/// `ssdp:alive`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnownDevice {
    /// Matching target.
    pub st: SearchTarget,
    /// Unique service name.
    pub usn: String,
    /// Description URL.
    pub location: String,
    /// Server banner.
    pub server: String,
    /// When it was last heard from.
    pub last_seen: SimTime,
}

/// Control-point tuning.
#[derive(Debug, Clone)]
pub struct ControlPointConfig {
    /// MX value sent in searches (the paper uses 0 for minimal latency).
    pub mx: u8,
    /// How long a search round collects responses before completing.
    pub search_window: Duration,
    /// Simulated cost of parsing a description document (the client-side
    /// XML handling the paper attributes some of UPnP's latency to).
    pub parse_delay: Duration,
}

impl Default for ControlPointConfig {
    fn default() -> Self {
        ControlPointConfig {
            mx: 0,
            search_window: Duration::from_millis(120),
            parse_delay: Duration::from_millis(2),
        }
    }
}

struct CpInner {
    node: Node,
    /// Ephemeral socket from which M-SEARCHes are sent and on which the
    /// unicast responses arrive.
    search_socket: UdpSocket,
    config: ControlPointConfig,
    cache: Vec<KnownDevice>,
    /// Active search collector, if a search round is open.
    active: Option<(SearchTarget, Collector<KnownDevice>, Completion<KnownDevice>)>,
}

/// A UPnP control point.
#[derive(Clone)]
pub struct ControlPoint {
    inner: Rc<RefCell<CpInner>>,
}

impl ControlPoint {
    /// Starts a control point on `node`, passively listening for NOTIFYs.
    ///
    /// # Errors
    ///
    /// Network errors from socket binds.
    pub fn start(node: &Node, config: ControlPointConfig) -> NetResult<ControlPoint> {
        let search_socket = node.udp_bind_ephemeral()?;
        let notify_socket = node.udp_bind_shared(SSDP_PORT)?;
        notify_socket.join_multicast(SSDP_MULTICAST_GROUP)?;
        let cp = ControlPoint {
            inner: Rc::new(RefCell::new(CpInner {
                node: node.clone(),
                search_socket: search_socket.clone(),
                config,
                cache: Vec::new(),
                active: None,
            })),
        };
        let on_response = cp.clone();
        search_socket.on_receive(move |world, dgram| on_response.handle_response(world, dgram));
        let on_notify = cp.clone();
        notify_socket.on_receive(move |world, dgram| on_notify.handle_notify(world, dgram));
        Ok(cp)
    }

    /// Issues an `M-SEARCH` for `target`.
    ///
    /// Returns `(first, all)`: `first` completes with the first matching
    /// response (the paper's response-time metric); `all` with everything
    /// heard within the search window.
    pub fn search(
        &self,
        world: &World,
        target: SearchTarget,
    ) -> (Completion<KnownDevice>, Completion<Vec<KnownDevice>>) {
        let first: Completion<KnownDevice> = Completion::new();
        let done: Completion<Vec<KnownDevice>> = Completion::new();
        let collector: Collector<KnownDevice> = Collector::new();
        let (wire, window) = {
            let mut inner = self.inner.borrow_mut();
            inner.active = Some((target.clone(), collector.clone(), first.clone()));
            let m = MSearch::new(target, inner.config.mx);
            (m.to_bytes(), inner.config.search_window)
        };
        let socket = self.inner.borrow().search_socket.clone();
        let _ = socket.send_to(&wire, SocketAddrV4::new(SSDP_MULTICAST_GROUP, SSDP_PORT));
        let this = self.clone();
        let done2 = done.clone();
        world.schedule_in(window, move |_| {
            this.inner.borrow_mut().active = None;
            done2.complete(collector.drain());
        });
        (first, done)
    }

    /// Fetches and parses a device description from its `LOCATION` URL.
    ///
    /// The completion yields `None` on connection failure or malformed
    /// XML. Parsing cost is modelled by `parse_delay`.
    pub fn fetch_description(
        &self,
        world: &World,
        location: &str,
    ) -> Completion<Option<DeviceDescription>> {
        let out: Completion<Option<DeviceDescription>> = Completion::new();
        let (node, parse_delay) = {
            let inner = self.inner.borrow();
            (inner.node.clone(), inner.config.parse_delay)
        };
        let fetched = crate::http_io::http_get(&node, location);
        let out2 = out.clone();
        let world2 = world.clone();
        fetched.subscribe(move |resp| {
            let parsed = resp
                .filter(|r| r.is_success())
                .and_then(|r| String::from_utf8(r.body).ok())
                .and_then(|xml| DeviceDescription::from_xml(&xml).ok());
            // Model the XML parse cost before the result becomes usable.
            world2.schedule_in(parse_delay, move |_| out2.complete(parsed));
        });
        out
    }

    /// Convenience: search for `target`, then fetch the first responder's
    /// description. Completes with `None` if nothing answered in the
    /// window or the fetch failed.
    pub fn discover_described(
        &self,
        world: &World,
        target: SearchTarget,
    ) -> Completion<Option<(KnownDevice, DeviceDescription)>> {
        let out: Completion<Option<(KnownDevice, DeviceDescription)>> = Completion::new();
        let (first, all) = self.search(world, target);
        let this = self.clone();
        let world2 = world.clone();
        let out2 = out.clone();
        first.subscribe(move |hit: KnownDevice| {
            let described = this.fetch_description(&world2, &hit.location);
            let out3 = out2.clone();
            described.subscribe(move |desc| {
                out3.complete(desc.map(|d| (hit.clone(), d)));
            });
        });
        // If the window closes with no first responder, resolve None.
        let out4 = out.clone();
        all.subscribe(move |hits: Vec<KnownDevice>| {
            if hits.is_empty() {
                out4.complete(None);
            }
        });
        out
    }

    /// Invokes a SOAP action against a control URL (`http://…` absolute).
    ///
    /// The completion yields the parsed response, or `None` on transport
    /// or SOAP failure.
    pub fn invoke(
        &self,
        world: &World,
        control_url: &str,
        call: &SoapAction,
    ) -> Completion<Option<SoapResponse>> {
        let out: Completion<Option<SoapResponse>> = Completion::new();
        let Some((addr, path)) = parse_http_url(control_url) else {
            out.complete(None);
            return out;
        };
        let mut req = Request::new(Method::Post, path);
        req.headers.insert("HOST", addr.to_string());
        req.headers.insert("Content-Type", "text/xml; charset=\"utf-8\"");
        req.headers.insert("SOAPACTION", call.soapaction_header());
        req.body = call.to_xml().into_bytes();
        let node = self.inner.borrow().node.clone();
        let resp = http_request(&node, addr, req);
        let out2 = out.clone();
        resp.subscribe(move |r| {
            let parsed = r
                .filter(|r| r.is_success())
                .and_then(|r| String::from_utf8(r.body).ok())
                .and_then(|xml| SoapResponse::parse(&xml));
            out2.complete(parsed);
        });
        let _ = world;
        out
    }

    /// Devices currently known from passive notifications and searches.
    pub fn known_devices(&self) -> Vec<KnownDevice> {
        self.inner.borrow().cache.clone()
    }

    fn handle_response(&self, world: &World, dgram: Datagram) {
        let Ok(SsdpMessage::Response(resp)) = SsdpMessage::parse(&dgram.payload) else {
            return;
        };
        let device = known_from_response(&resp, world.now());
        // Collect what to fire, then release the borrow: completing `first`
        // runs subscribers synchronously, and they may call back into us.
        let fire = {
            let mut inner = self.inner.borrow_mut();
            upsert(&mut inner.cache, device.clone());
            match &inner.active {
                Some((target, collector, first))
                    if target.matches(&resp.st) || resp.st.matches(target) =>
                {
                    collector.push(device.clone());
                    Some(first.clone())
                }
                _ => None,
            }
        };
        if let Some(first) = fire {
            first.complete(device);
        }
    }

    fn handle_notify(&self, world: &World, dgram: Datagram) {
        let Ok(SsdpMessage::Notify(n)) = SsdpMessage::parse(&dgram.payload) else {
            return;
        };
        let mut inner = self.inner.borrow_mut();
        match n.nts {
            NotifySubType::Alive | NotifySubType::Update => {
                if let Some(location) = n.location {
                    upsert(
                        &mut inner.cache,
                        KnownDevice {
                            st: n.nt,
                            usn: n.usn,
                            location,
                            server: n.server,
                            last_seen: world.now(),
                        },
                    );
                }
            }
            NotifySubType::ByeBye => {
                inner.cache.retain(|d| d.usn != n.usn);
            }
        }
    }
}

fn known_from_response(resp: &SearchResponse, now: SimTime) -> KnownDevice {
    KnownDevice {
        st: resp.st.clone(),
        usn: resp.usn.clone(),
        location: resp.location.clone(),
        server: resp.server.clone(),
        last_seen: now,
    }
}

fn upsert(cache: &mut Vec<KnownDevice>, device: KnownDevice) {
    match cache.iter_mut().find(|d| d.usn == device.usn) {
        Some(existing) => *existing = device,
        None => cache.push(device),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::description::{DeviceDescription, ServiceDescription};
    use crate::device::{UpnpConfig, UpnpDevice};

    fn clock_desc() -> DeviceDescription {
        DeviceDescription {
            device_type: "urn:schemas-upnp-org:device:clock:1".into(),
            friendly_name: "Clock".into(),
            manufacturer: "indiss".into(),
            manufacturer_url: String::new(),
            model_description: String::new(),
            model_name: "Clock".into(),
            model_number: "1".into(),
            model_url: String::new(),
            udn: "uuid:clock-1".into(),
            services: vec![ServiceDescription::conventional("timer", 1)],
        }
    }

    fn setup() -> (World, ControlPoint, UpnpDevice) {
        let world = World::new(21);
        let dev_node = world.add_node("device");
        let cp_node = world.add_node("cp");
        let dev = UpnpDevice::start(&dev_node, clock_desc(), UpnpConfig::default()).unwrap();
        let cp = ControlPoint::start(&cp_node, ControlPointConfig::default()).unwrap();
        (world, cp, dev)
    }

    #[test]
    fn active_search_finds_device() {
        let (world, cp, _dev) = setup();
        world.run_for(Duration::from_secs(1));
        let (first, all) = cp.search(&world, SearchTarget::device_urn("clock", 1));
        world.run_for(Duration::from_secs(2));
        assert!(first.is_complete());
        let hits = all.take().unwrap();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].location.ends_with("/description.xml"));
    }

    #[test]
    fn passive_cache_from_alive_and_byebye() {
        let (world, cp, dev) = setup();
        world.run_for(Duration::from_secs(1));
        // The initial announcement advertises 4 targets; the cache keys on
        // USN so it holds 4 entries for one device.
        assert!(!cp.known_devices().is_empty());
        dev.shutdown();
        world.run_for(Duration::from_secs(1));
        assert!(cp.known_devices().is_empty(), "byebye cleared the cache");
    }

    #[test]
    fn description_fetch_after_search() {
        let (world, cp, _dev) = setup();
        world.run_for(Duration::from_secs(1));
        let described = cp.discover_described(&world, SearchTarget::device_urn("clock", 1));
        world.run_for(Duration::from_secs(3));
        let (hit, desc) = described.take().unwrap().expect("described");
        assert_eq!(desc.friendly_name, "Clock");
        assert!(hit.usn.contains("clock-1"));
        assert_eq!(desc.services[0].control_url, "/service/timer/control");
    }

    #[test]
    fn discover_nothing_resolves_none() {
        let world = World::new(22);
        let cp_node = world.add_node("cp");
        let cp = ControlPoint::start(&cp_node, ControlPointConfig::default()).unwrap();
        let described = cp.discover_described(&world, SearchTarget::device_urn("printer", 1));
        world.run_for(Duration::from_secs(2));
        assert_eq!(described.take(), Some(None));
    }

    #[test]
    fn soap_invocation_roundtrip() {
        let (world, cp, dev) = setup();
        dev.register_action("urn:schemas-upnp-org:service:timer:1", "GetTime", |world, _call| {
            SoapResponse::new("GetTime", "urn:schemas-upnp-org:service:timer:1")
                .with_arg("CurrentTime", &format!("{}", world.now()))
        });
        world.run_for(Duration::from_secs(1));
        let dev_addr = dev.location().replace("/description.xml", "");
        let control_url = format!("{dev_addr}/service/timer/control");
        let call = SoapAction::new("GetTime", "urn:schemas-upnp-org:service:timer:1");
        let resp = cp.invoke(&world, &control_url, &call);
        world.run_for(Duration::from_secs(2));
        let soap = resp.take().unwrap().expect("soap ok");
        assert_eq!(soap.action, "GetTime");
        assert!(soap.arg("CurrentTime").is_some());
    }

    #[test]
    fn unknown_action_fails_cleanly() {
        let (world, cp, dev) = setup();
        world.run_for(Duration::from_secs(1));
        let dev_addr = dev.location().replace("/description.xml", "");
        let control_url = format!("{dev_addr}/service/timer/control");
        let call = SoapAction::new("Explode", "urn:schemas-upnp-org:service:timer:1");
        let resp = cp.invoke(&world, &control_url, &call);
        world.run_for(Duration::from_secs(2));
        assert_eq!(resp.take(), Some(None));
    }
}
