//! SOAP-lite control envelopes (UPnP Device Architecture §3).
//!
//! The paper's Fig. 4 SrvRply hands the SLP client a
//! `service:clock:soap://…/service/timer/control` URL — the control
//! endpoint where actions like `GetTime` are POSTed as SOAP envelopes.
//! Only the envelope subset UPnP control needs is implemented.

use indiss_xml::Element;

const ENVELOPE_NS: &str = "http://schemas.xmlsoap.org/soap/envelope/";

/// A SOAP action call: name, service type URN, and arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoapAction {
    /// Action name, e.g. `GetTime`.
    pub action: String,
    /// Service type URN the action belongs to.
    pub service_type: String,
    /// Arguments as (name, value) pairs, in order.
    pub args: Vec<(String, String)>,
}

impl SoapAction {
    /// Creates a call with no arguments.
    pub fn new(action: &str, service_type: &str) -> Self {
        SoapAction {
            action: action.to_owned(),
            service_type: service_type.to_owned(),
            args: Vec::new(),
        }
    }

    /// Adds an argument, returning `self` for chaining.
    pub fn with_arg(mut self, name: &str, value: &str) -> Self {
        self.args.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Serializes the request envelope.
    pub fn to_xml(&self) -> String {
        envelope(&format!("u:{}", self.action), &self.service_type, &self.args)
    }

    /// The `SOAPACTION:` header value for the HTTP POST.
    pub fn soapaction_header(&self) -> String {
        format!("\"{}#{}\"", self.service_type, self.action)
    }

    /// Parses a request envelope.
    ///
    /// Returns `None` when the document is not a SOAP envelope containing
    /// exactly one action element.
    pub fn parse(xml: &str) -> Option<SoapAction> {
        let root = Element::parse(xml).ok()?;
        if root.local_name() != "Envelope" {
            return None;
        }
        let body = root.child("Body")?;
        let action_elem = body.child_elements().next()?;
        let service_type = action_elem
            .attributes()
            .iter()
            .find(|(n, _)| n.starts_with("xmlns"))
            .map(|(_, v)| v.clone())
            .unwrap_or_default();
        let args = action_elem
            .child_elements()
            .map(|e| (e.local_name().to_owned(), e.text().trim().to_owned()))
            .collect();
        Some(SoapAction { action: action_elem.local_name().to_owned(), service_type, args })
    }
}

/// A SOAP action response: `<u:{Action}Response>` with output arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoapResponse {
    /// The action this responds to.
    pub action: String,
    /// Service type URN.
    pub service_type: String,
    /// Output arguments.
    pub args: Vec<(String, String)>,
}

impl SoapResponse {
    /// Creates a response for `action`.
    pub fn new(action: &str, service_type: &str) -> Self {
        SoapResponse {
            action: action.to_owned(),
            service_type: service_type.to_owned(),
            args: Vec::new(),
        }
    }

    /// Adds an output argument, returning `self` for chaining.
    pub fn with_arg(mut self, name: &str, value: &str) -> Self {
        self.args.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Serializes the response envelope.
    pub fn to_xml(&self) -> String {
        envelope(&format!("u:{}Response", self.action), &self.service_type, &self.args)
    }

    /// Parses a response envelope; the action name has its `Response`
    /// suffix stripped.
    pub fn parse(xml: &str) -> Option<SoapResponse> {
        let call = SoapAction::parse(xml)?;
        let action = call.action.strip_suffix("Response")?.to_owned();
        Some(SoapResponse { action, service_type: call.service_type, args: call.args })
    }

    /// Looks up an output argument by name.
    pub fn arg(&self, name: &str) -> Option<&str> {
        self.args.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

fn envelope(qualified_action: &str, service_type: &str, args: &[(String, String)]) -> String {
    let mut action = Element::new(qualified_action).with_attr("xmlns:u", service_type);
    for (name, value) in args {
        action = action.with_text_child(name.clone(), value.clone());
    }
    Element::new("s:Envelope")
        .with_attr("xmlns:s", ENVELOPE_NS)
        .with_attr("s:encodingStyle", "http://schemas.xmlsoap.org/soap/encoding/")
        .with_child(Element::new("s:Body").with_child(action))
        .to_document()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TIMER: &str = "urn:schemas-upnp-org:service:timer:1";

    #[test]
    fn action_roundtrip() {
        let call = SoapAction::new("SetTime", TIMER).with_arg("NewTime", "12:00:00");
        let back = SoapAction::parse(&call.to_xml()).unwrap();
        assert_eq!(back.action, "SetTime");
        assert_eq!(back.service_type, TIMER);
        assert_eq!(back.args, vec![("NewTime".to_owned(), "12:00:00".to_owned())]);
    }

    #[test]
    fn response_roundtrip() {
        let resp = SoapResponse::new("GetTime", TIMER).with_arg("CurrentTime", "08:30:15");
        let back = SoapResponse::parse(&resp.to_xml()).unwrap();
        assert_eq!(back.action, "GetTime");
        assert_eq!(back.arg("CurrentTime"), Some("08:30:15"));
    }

    #[test]
    fn soapaction_header_format() {
        let call = SoapAction::new("GetTime", TIMER);
        assert_eq!(call.soapaction_header(), "\"urn:schemas-upnp-org:service:timer:1#GetTime\"");
    }

    #[test]
    fn non_envelope_rejected() {
        assert!(SoapAction::parse("<root/>").is_none());
        assert!(SoapResponse::parse("<root/>").is_none());
    }

    #[test]
    fn request_is_not_a_response() {
        let call = SoapAction::new("GetTime", TIMER);
        assert!(SoapResponse::parse(&call.to_xml()).is_none());
    }
}
