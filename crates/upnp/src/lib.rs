//! # indiss-upnp — UPnP Device Architecture subset
//!
//! The "Cyberlink for Java" role of the INDISS paper: a native UPnP stack
//! with SSDP discovery, XML device descriptions served over HTTP/TCP,
//! SOAP-lite control, plus the paper's CyberGarage-style clock device.
//!
//! The discovery *process* this crate implements is exactly the one the
//! INDISS UPnP unit must drive in §2.4:
//!
//! 1. multicast `M-SEARCH` → unicast `200 OK` with `LOCATION:`;
//! 2. `GET description.xml` over TCP;
//! 3. parse the XML for `friendlyName`, control URLs, etc.
//!
//! Latency defaults are calibrated so the native search lands near the
//! paper's 40 ms (Fig. 7); see [`UpnpConfig`].
//!
//! ```
//! use indiss_net::World;
//! use indiss_upnp::{ClockDevice, ControlPoint, ControlPointConfig, UpnpConfig};
//! use indiss_ssdp::SearchTarget;
//! use std::time::Duration;
//!
//! let world = World::new(1);
//! let device_node = world.add_node("clock");
//! let cp_node = world.add_node("control-point");
//! let _clock = ClockDevice::start(&device_node, UpnpConfig::default())?;
//! let cp = ControlPoint::start(&cp_node, ControlPointConfig::default())?;
//! let found = cp.discover_described(&world, SearchTarget::device_urn("clock", 1));
//! world.run_for(Duration::from_secs(3));
//! let (_hit, desc) = found.take().unwrap().expect("clock found");
//! assert_eq!(desc.friendly_name, "CyberGarage Clock Device");
//! # Ok::<(), indiss_net::NetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod control_point;
mod description;
mod device;
mod http_io;
mod soap;

pub use clock::{ClockDevice, CLOCK_DEVICE_TYPE, TIMER_SERVICE};
pub use control_point::{ControlPoint, ControlPointConfig, KnownDevice};
pub use description::{DeviceDescription, ServiceDescription};
pub use device::{ActionHandler, UpnpConfig, UpnpDevice};
pub use http_io::{http_get, http_request, parse_http_url, HttpHandler, HttpServer};
pub use soap::{SoapAction, SoapResponse};
