//! UPnP device and service descriptions (UPnP Device Architecture §2).
//!
//! The description document is the XML a control point GETs from the
//! `LOCATION:` URL of a discovery response. The INDISS paper's §2.4 walks
//! through exactly this: the UPnP unit fetches `description.xml`, switches
//! its parser to XML, and converts fields like `friendlyName` and
//! `modelDescription` into `SDP_RES_ATTR` events for the SLP composer.

use indiss_xml::Element;

/// Description of one service within a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDescription {
    /// Service type URN, e.g. `urn:schemas-upnp-org:service:timer:1`.
    pub service_type: String,
    /// Service identifier, e.g. `urn:upnp-org:serviceId:timer`.
    pub service_id: String,
    /// SOAP control URL (path on the device's HTTP server).
    pub control_url: String,
    /// Eventing URL (unused here, kept for fidelity).
    pub event_sub_url: String,
    /// Service description (SCPD) URL.
    pub scpd_url: String,
}

impl ServiceDescription {
    /// Creates a service description with conventional URLs derived from
    /// the service name.
    pub fn conventional(name: &str, version: u32) -> Self {
        ServiceDescription {
            service_type: format!("urn:schemas-upnp-org:service:{name}:{version}"),
            service_id: format!("urn:upnp-org:serviceId:{name}"),
            control_url: format!("/service/{name}/control"),
            event_sub_url: format!("/service/{name}/event"),
            scpd_url: format!("/service/{name}/scpd.xml"),
        }
    }
}

/// A UPnP device description document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceDescription {
    /// Device type URN, e.g. `urn:schemas-upnp-org:device:clock:1`.
    pub device_type: String,
    /// Human-readable name (the paper's `CyberGarage Clock Device`).
    pub friendly_name: String,
    /// Manufacturer name.
    pub manufacturer: String,
    /// Manufacturer URL.
    pub manufacturer_url: String,
    /// Model description.
    pub model_description: String,
    /// Model name.
    pub model_name: String,
    /// Model number.
    pub model_number: String,
    /// Model URL.
    pub model_url: String,
    /// Unique device name, `uuid:…`.
    pub udn: String,
    /// Embedded services.
    pub services: Vec<ServiceDescription>,
}

impl DeviceDescription {
    /// Serializes to the standard description document.
    pub fn to_xml(&self) -> String {
        let mut service_list = Element::new("serviceList");
        for s in &self.services {
            service_list.push_child(
                Element::new("service")
                    .with_text_child("serviceType", &s.service_type)
                    .with_text_child("serviceId", &s.service_id)
                    .with_text_child("controlURL", &s.control_url)
                    .with_text_child("eventSubURL", &s.event_sub_url)
                    .with_text_child("SCPDURL", &s.scpd_url),
            );
        }
        let device = Element::new("device")
            .with_text_child("deviceType", &self.device_type)
            .with_text_child("friendlyName", &self.friendly_name)
            .with_text_child("manufacturer", &self.manufacturer)
            .with_text_child("manufacturerURL", &self.manufacturer_url)
            .with_text_child("modelDescription", &self.model_description)
            .with_text_child("modelName", &self.model_name)
            .with_text_child("modelNumber", &self.model_number)
            .with_text_child("modelURL", &self.model_url)
            .with_text_child("UDN", &self.udn)
            .with_child(service_list);
        let root = Element::new("root")
            .with_attr("xmlns", "urn:schemas-upnp-org:device-1-0")
            .with_child(
                Element::new("specVersion")
                    .with_text_child("major", "1")
                    .with_text_child("minor", "0"),
            )
            .with_child(device);
        root.to_document()
    }

    /// Parses a description document.
    ///
    /// # Errors
    ///
    /// [`indiss_xml::XmlError`] for malformed XML; missing fields default
    /// to empty strings (real-world documents are frequently sloppy, and
    /// INDISS must tolerate them).
    pub fn from_xml(xml: &str) -> Result<DeviceDescription, indiss_xml::XmlError> {
        let root = Element::parse(xml)?;
        let device = root.child("device").unwrap_or(&root);
        let text = |name: &str| device.child_text(name).unwrap_or_default().to_owned();
        let mut services = Vec::new();
        if let Some(list) = device.child("serviceList") {
            for s in list.children_named("service") {
                let stext = |name: &str| s.child_text(name).unwrap_or_default().to_owned();
                services.push(ServiceDescription {
                    service_type: stext("serviceType"),
                    service_id: stext("serviceId"),
                    control_url: stext("controlURL"),
                    event_sub_url: stext("eventSubURL"),
                    scpd_url: stext("SCPDURL"),
                });
            }
        }
        Ok(DeviceDescription {
            device_type: text("deviceType"),
            friendly_name: text("friendlyName"),
            manufacturer: text("manufacturer"),
            manufacturer_url: text("manufacturerURL"),
            model_description: text("modelDescription"),
            model_name: text("modelName"),
            model_number: text("modelNumber"),
            model_url: text("modelURL"),
            udn: text("UDN"),
            services,
        })
    }

    /// The short device-type name from the URN, e.g. `clock` from
    /// `urn:schemas-upnp-org:device:clock:1`.
    pub fn short_type(&self) -> &str {
        let mut parts = self.device_type.split(':');
        // urn : schemas-upnp-org : device : NAME : version
        parts.nth(3).unwrap_or(&self.device_type)
    }

    /// Key/value pairs a bridge would expose as attributes, in document
    /// order — the source of the paper's `SDP_RES_ATTR` events.
    pub fn attribute_pairs(&self) -> Vec<(&'static str, String)> {
        vec![
            ("friendlyName", self.friendly_name.clone()),
            ("manufacturer", self.manufacturer.clone()),
            ("manufacturerURL", self.manufacturer_url.clone()),
            ("modelDescription", self.model_description.clone()),
            ("modelName", self.model_name.clone()),
            ("modelNumber", self.model_number.clone()),
            ("modelURL", self.model_url.clone()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock_description() -> DeviceDescription {
        DeviceDescription {
            device_type: "urn:schemas-upnp-org:device:clock:1".into(),
            friendly_name: "CyberGarage Clock Device".into(),
            manufacturer: "CyberGarage".into(),
            manufacturer_url: "http://www.cybergarage.org".into(),
            model_description: "CyberUPnP Clock Device".into(),
            model_name: "Clock".into(),
            model_number: "1.0".into(),
            model_url: "http://www.cybergarage.org".into(),
            udn: "uuid:ClockDevice".into(),
            services: vec![ServiceDescription::conventional("timer", 1)],
        }
    }

    #[test]
    fn xml_roundtrip() {
        let desc = clock_description();
        let xml = desc.to_xml();
        let back = DeviceDescription::from_xml(&xml).unwrap();
        assert_eq!(back, desc);
    }

    #[test]
    fn short_type_extraction() {
        assert_eq!(clock_description().short_type(), "clock");
    }

    #[test]
    fn conventional_service_urls() {
        let s = ServiceDescription::conventional("timer", 1);
        assert_eq!(s.control_url, "/service/timer/control");
        assert_eq!(s.service_type, "urn:schemas-upnp-org:service:timer:1");
    }

    #[test]
    fn sloppy_document_tolerated() {
        let desc = DeviceDescription::from_xml("<root><device></device></root>").unwrap();
        assert_eq!(desc.friendly_name, "");
        assert!(desc.services.is_empty());
    }

    #[test]
    fn attribute_pairs_match_paper_fields() {
        let pairs = clock_description().attribute_pairs();
        let keys: Vec<_> = pairs.iter().map(|(k, _)| *k).collect();
        // The paper's Fig. 4 SrvRply lists friendlyName, modelDescription,
        // manufacturerURL, modelName, modelNumber, modelURL.
        for expected in
            ["friendlyName", "modelDescription", "manufacturerURL", "modelName", "modelNumber"]
        {
            assert!(keys.contains(&expected), "{expected} missing");
        }
    }
}
