//! Property-based tests of the SLP wire codec, URL grammar, attribute
//! lists and predicate filters.

use proptest::prelude::*;

use indiss_slp::{
    Attribute, AttributeList, Body, Filter, Header, Message, ServiceType, ServiceUrl, SrvAck,
    SrvRply, SrvRqst, UrlEntry,
};

/// A string valid inside SLP's length-prefixed fields and free of the
/// list/structure metacharacters of the textual grammars.
fn slp_token() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9][a-zA-Z0-9_.-]{0,30}"
}

fn arb_url_entry() -> impl Strategy<Value = UrlEntry> {
    (slp_token(), slp_token(), 1u16..=u16::MAX)
        .prop_map(|(ty, host, lifetime)| UrlEntry::new(format!("service:{ty}://{host}"), lifetime))
}

proptest! {
    /// Every SrvRqst round-trips through the binary codec.
    #[test]
    fn srv_rqst_roundtrips(
        prlist in slp_token(),
        ty in slp_token(),
        scopes in slp_token(),
        xid in any::<u16>(),
    ) {
        let msg = Message::new(
            Header::new(indiss_slp::FunctionId::SrvRqst, xid, "en"),
            Body::SrvRqst(SrvRqst {
                prlist,
                service_type: format!("service:{ty}"),
                scopes,
                predicate: String::new(),
                spi: String::new(),
            }),
        );
        let wire = msg.encode().unwrap();
        prop_assert_eq!(Message::decode(&wire).unwrap(), msg);
    }

    /// SrvRply with arbitrary URL entry sets round-trips.
    #[test]
    fn srv_rply_roundtrips(
        urls in proptest::collection::vec(arb_url_entry(), 0..8),
        error in any::<u16>(),
        xid in any::<u16>(),
    ) {
        let msg = Message::new(
            Header::new(indiss_slp::FunctionId::SrvRply, xid, "en"),
            Body::SrvRply(SrvRply { error, urls }),
        );
        let wire = msg.encode().unwrap();
        prop_assert_eq!(Message::decode(&wire).unwrap(), msg);
    }

    /// The decoder never panics on arbitrary bytes — it returns an error
    /// or a message, but must not crash or loop.
    #[test]
    fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
    }

    /// Decoding a truncation of a valid message never panics and never
    /// yields a message (the length field must catch it).
    #[test]
    fn truncations_are_rejected(
        xid in any::<u16>(),
        cut in 1usize..16,
    ) {
        let msg = Message::new(
            Header::new(indiss_slp::FunctionId::SrvAck, xid, "en"),
            Body::SrvAck(SrvAck { error: 0 }),
        );
        let wire = msg.encode().unwrap();
        let cut = cut.min(wire.len());
        prop_assert!(Message::decode(&wire[..wire.len() - cut]).is_err());
    }

    /// Service URLs render and re-parse to the same value.
    #[test]
    fn service_urls_roundtrip(
        ty in slp_token(),
        concrete in proptest::option::of(slp_token()),
        host in slp_token(),
        port in proptest::option::of(1u16..=u16::MAX),
        path in proptest::option::of("[a-z0-9/]{1,20}"),
    ) {
        let t = match concrete {
            Some(c) => ServiceType::with_concrete(&ty, &c),
            None => ServiceType::simple(&ty),
        };
        let url = ServiceUrl::new(t, &host, port, &path.map(|p| format!("/{p}")).unwrap_or_default());
        let text = url.to_string();
        prop_assert_eq!(ServiceUrl::parse(&text).unwrap(), url);
    }

    /// Attribute lists render and re-parse to the same value, including
    /// values with reserved characters (escaped on the wire).
    #[test]
    fn attribute_lists_roundtrip(
        attrs in proptest::collection::vec(
            (slp_token(), proptest::collection::vec("[ -~&&[^\\\\]]{1,12}", 0..3)),
            0..6
        ),
    ) {
        let list: AttributeList = attrs
            .into_iter()
            .map(|(tag, values)| Attribute {
                tag,
                values: values.into_iter().map(|v| v.trim().to_owned())
                    .filter(|v| !v.is_empty())
                    .collect(),
            })
            .collect();
        let text = list.to_string();
        let back = AttributeList::parse(&text).unwrap();
        prop_assert_eq!(back.len(), list.len());
        for attr in list.iter() {
            if attr.values.is_empty() {
                prop_assert!(back.has_keyword(&attr.tag));
            } else {
                prop_assert_eq!(
                    back.get_all(&attr.tag).len(),
                    list.get_all(&attr.tag).len()
                );
            }
        }
    }

    /// Filter parsing is total (never panics) on printable input.
    #[test]
    fn filter_parse_is_total(s in "[ -~]{0,64}") {
        let _ = Filter::parse(&s);
    }

    /// Parsed filters render to text that re-parses to the same filter.
    #[test]
    fn filters_roundtrip(
        tag in slp_token(),
        value in slp_token(),
    ) {
        for text in [
            format!("({tag}={value})"),
            format!("({tag}=*)"),
            format!("({tag}>={value})"),
            format!("(&({tag}={value})(!({tag}=zzz)))"),
        ] {
            let f = Filter::parse(&text).unwrap();
            prop_assert_eq!(Filter::parse(&f.to_string()).unwrap(), f);
        }
    }

    /// Equality filters match exactly the lists that contain the value.
    #[test]
    fn equality_semantics(tag in slp_token(), value in slp_token(), other in slp_token()) {
        prop_assume!(!value.eq_ignore_ascii_case(&other));
        let f = Filter::parse(&format!("({tag}={value})")).unwrap();
        let matching = AttributeList::parse(&format!("({tag}={value})")).unwrap();
        let nonmatching = AttributeList::parse(&format!("({tag}={other})")).unwrap();
        prop_assert!(f.matches(&matching));
        prop_assert!(!f.matches(&nonmatching));
    }
}
