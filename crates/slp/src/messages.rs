//! SLPv2 message bodies and the top-level codec (RFC 2608 §8–§11).

use crate::consts::{ErrorCode, FunctionId};
use crate::error::{SlpError, SlpResult};
use crate::url::UrlEntry;
use crate::wire::{ByteReader, ByteWriter, Header};

/// A complete SLP message: common header plus function-specific body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// The common header.
    pub header: Header,
    /// The function-specific body.
    pub body: Body,
}

/// Function-specific message bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// Service Request (§8.1).
    SrvRqst(SrvRqst),
    /// Service Reply (§8.2).
    SrvRply(SrvRply),
    /// Service Registration (§8.3).
    SrvReg(SrvReg),
    /// Service Deregistration (§10.6).
    SrvDeReg(SrvDeReg),
    /// Service Acknowledgement (§8.4).
    SrvAck(SrvAck),
    /// Attribute Request (§10.3).
    AttrRqst(AttrRqst),
    /// Attribute Reply (§10.4).
    AttrRply(AttrRply),
    /// DA Advertisement (§8.5).
    DaAdvert(DaAdvert),
    /// Service Type Request (§10.1).
    SrvTypeRqst(SrvTypeRqst),
    /// Service Type Reply (§10.2).
    SrvTypeRply(SrvTypeRply),
    /// SA Advertisement (§8.6).
    SaAdvert(SaAdvert),
}

impl Body {
    /// The function id corresponding to this body.
    pub fn function(&self) -> FunctionId {
        match self {
            Body::SrvRqst(_) => FunctionId::SrvRqst,
            Body::SrvRply(_) => FunctionId::SrvRply,
            Body::SrvReg(_) => FunctionId::SrvReg,
            Body::SrvDeReg(_) => FunctionId::SrvDeReg,
            Body::SrvAck(_) => FunctionId::SrvAck,
            Body::AttrRqst(_) => FunctionId::AttrRqst,
            Body::AttrRply(_) => FunctionId::AttrRply,
            Body::DaAdvert(_) => FunctionId::DaAdvert,
            Body::SrvTypeRqst(_) => FunctionId::SrvTypeRqst,
            Body::SrvTypeRply(_) => FunctionId::SrvTypeRply,
            Body::SaAdvert(_) => FunctionId::SaAdvert,
        }
    }
}

/// Service Request: "find services of this type, in these scopes,
/// matching this predicate".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SrvRqst {
    /// Previous-responder list: addresses that must not answer again
    /// (multicast convergence, §6.3).
    pub prlist: String,
    /// Requested service type, e.g. `service:clock`.
    pub service_type: String,
    /// Comma-separated scope list.
    pub scopes: String,
    /// LDAPv3 predicate ([`crate::Filter`] syntax); empty matches all.
    pub predicate: String,
    /// SLP SPI (security); empty in this implementation.
    pub spi: String,
}

/// Service Reply: error code plus matched URL entries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SrvRply {
    /// Result code.
    pub error: u16,
    /// Matching URL entries.
    pub urls: Vec<UrlEntry>,
}

/// Service Registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrvReg {
    /// The URL being registered, with lifetime.
    pub entry: UrlEntry,
    /// Service type string.
    pub service_type: String,
    /// Scope list.
    pub scopes: String,
    /// Attribute list in textual form.
    pub attrs: String,
}

/// Service Deregistration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrvDeReg {
    /// Scopes to deregister from.
    pub scopes: String,
    /// The URL entry being removed.
    pub entry: UrlEntry,
    /// Attribute tags to remove (empty = the whole registration).
    pub tags: String,
}

/// Service Acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SrvAck {
    /// Result code.
    pub error: u16,
}

/// Attribute Request.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AttrRqst {
    /// Previous-responder list.
    pub prlist: String,
    /// Service URL (or service type) whose attributes are requested.
    pub url: String,
    /// Scope list.
    pub scopes: String,
    /// Comma-separated tag list filter; empty = all attributes.
    pub tags: String,
    /// SLP SPI; empty here.
    pub spi: String,
}

/// Attribute Reply.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AttrRply {
    /// Result code.
    pub error: u16,
    /// Attribute list in textual form.
    pub attrs: String,
}

/// Directory Agent Advertisement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaAdvert {
    /// Result code (0 in unsolicited adverts).
    pub error: u16,
    /// DA stateless boot timestamp (0 = going down, §8.5).
    pub boot_timestamp: u32,
    /// The DA's `service:directory-agent://…` URL.
    pub url: String,
    /// Scopes the DA serves.
    pub scopes: String,
    /// DA attributes.
    pub attrs: String,
    /// SPI list; empty here.
    pub spi: String,
}

/// Service Type Request.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SrvTypeRqst {
    /// Previous-responder list.
    pub prlist: String,
    /// Naming authority; `None` means "all" (wire 0xFFFF).
    pub naming_authority: Option<String>,
    /// Scope list.
    pub scopes: String,
}

/// Service Type Reply.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SrvTypeRply {
    /// Result code.
    pub error: u16,
    /// Comma-separated service type list.
    pub types: String,
}

/// Service Agent Advertisement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaAdvert {
    /// The SA's `service:service-agent://…` URL.
    pub url: String,
    /// Scopes the SA serves.
    pub scopes: String,
    /// SA attributes.
    pub attrs: String,
}

impl Message {
    /// Creates a message; the header's function id is taken from the body.
    pub fn new(mut header: Header, body: Body) -> Self {
        header.function = body.function();
        Message { header, body }
    }

    /// The [`ErrorCode`] carried by reply bodies; `Ok` for requests.
    pub fn error_code(&self) -> ErrorCode {
        let raw = match &self.body {
            Body::SrvRply(b) => b.error,
            Body::SrvAck(b) => b.error,
            Body::AttrRply(b) => b.error,
            Body::DaAdvert(b) => b.error,
            Body::SrvTypeRply(b) => b.error,
            _ => 0,
        };
        ErrorCode::from_u16(raw)
    }

    /// Encodes the full message to wire bytes.
    ///
    /// # Errors
    ///
    /// [`SlpError::FieldOverflow`] when a string exceeds its field.
    pub fn encode(&self) -> SlpResult<Vec<u8>> {
        let mut w = ByteWriter::new();
        match &self.body {
            Body::SrvRqst(b) => {
                w.string(&b.prlist)?;
                w.string(&b.service_type)?;
                w.string(&b.scopes)?;
                w.string(&b.predicate)?;
                w.string(&b.spi)?;
            }
            Body::SrvRply(b) => {
                w.u16(b.error);
                let count = u16::try_from(b.urls.len())
                    .map_err(|_| SlpError::FieldOverflow { context: "url count" })?;
                w.u16(count);
                for entry in &b.urls {
                    entry.encode(&mut w)?;
                }
            }
            Body::SrvReg(b) => {
                b.entry.encode(&mut w)?;
                w.string(&b.service_type)?;
                w.string(&b.scopes)?;
                w.string(&b.attrs)?;
                w.u8(0); // attr auth blocks
            }
            Body::SrvDeReg(b) => {
                w.string(&b.scopes)?;
                b.entry.encode(&mut w)?;
                w.string(&b.tags)?;
            }
            Body::SrvAck(b) => {
                w.u16(b.error);
            }
            Body::AttrRqst(b) => {
                w.string(&b.prlist)?;
                w.string(&b.url)?;
                w.string(&b.scopes)?;
                w.string(&b.tags)?;
                w.string(&b.spi)?;
            }
            Body::AttrRply(b) => {
                w.u16(b.error);
                w.string(&b.attrs)?;
                w.u8(0); // attr auth blocks
            }
            Body::DaAdvert(b) => {
                w.u16(b.error);
                w.u32(b.boot_timestamp);
                w.string(&b.url)?;
                w.string(&b.scopes)?;
                w.string(&b.attrs)?;
                w.string(&b.spi)?;
                w.u8(0); // auth blocks
            }
            Body::SrvTypeRqst(b) => {
                w.string(&b.prlist)?;
                match &b.naming_authority {
                    None => {
                        w.u16(0xFFFF);
                    }
                    Some(na) => {
                        w.string(na)?;
                    }
                }
                w.string(&b.scopes)?;
            }
            Body::SrvTypeRply(b) => {
                w.u16(b.error);
                w.string(&b.types)?;
            }
            Body::SaAdvert(b) => {
                w.string(&b.url)?;
                w.string(&b.scopes)?;
                w.string(&b.attrs)?;
                w.u8(0); // auth blocks
            }
        }
        self.header.encode_with_body(&w.finish())
    }

    /// Decodes a full message from wire bytes.
    ///
    /// # Errors
    ///
    /// Any [`SlpError`] from the header or body codecs.
    pub fn decode(buf: &[u8]) -> SlpResult<Message> {
        let (header, body_bytes) = Header::decode(buf)?;
        let mut r = ByteReader::new(body_bytes, "body");
        let body = match header.function {
            FunctionId::SrvRqst => Body::SrvRqst(SrvRqst {
                prlist: r.string()?,
                service_type: r.string()?,
                scopes: r.string()?,
                predicate: r.string()?,
                spi: r.string()?,
            }),
            FunctionId::SrvRply => {
                let error = r.u16()?;
                let count = r.u16()? as usize;
                let mut urls = Vec::with_capacity(count.min(64));
                for _ in 0..count {
                    urls.push(UrlEntry::decode(&mut r)?);
                }
                Body::SrvRply(SrvRply { error, urls })
            }
            FunctionId::SrvReg => {
                let entry = UrlEntry::decode(&mut r)?;
                let service_type = r.string()?;
                let scopes = r.string()?;
                let attrs = r.string()?;
                let _auths = r.u8()?;
                Body::SrvReg(SrvReg { entry, service_type, scopes, attrs })
            }
            FunctionId::SrvDeReg => Body::SrvDeReg(SrvDeReg {
                scopes: r.string()?,
                entry: UrlEntry::decode(&mut r)?,
                tags: r.string()?,
            }),
            FunctionId::SrvAck => Body::SrvAck(SrvAck { error: r.u16()? }),
            FunctionId::AttrRqst => Body::AttrRqst(AttrRqst {
                prlist: r.string()?,
                url: r.string()?,
                scopes: r.string()?,
                tags: r.string()?,
                spi: r.string()?,
            }),
            FunctionId::AttrRply => {
                let error = r.u16()?;
                let attrs = r.string()?;
                let _auths = r.u8()?;
                Body::AttrRply(AttrRply { error, attrs })
            }
            FunctionId::DaAdvert => {
                let error = r.u16()?;
                let boot_timestamp = r.u32()?;
                let url = r.string()?;
                let scopes = r.string()?;
                let attrs = r.string()?;
                let spi = r.string()?;
                let _auths = r.u8()?;
                Body::DaAdvert(DaAdvert { error, boot_timestamp, url, scopes, attrs, spi })
            }
            FunctionId::SrvTypeRqst => {
                let prlist = r.string()?;
                // Peek the naming-authority length to detect 0xFFFF ("all").
                let len = r.u16()?;
                let naming_authority = if len == 0xFFFF {
                    None
                } else {
                    // Cap the preallocation: `len` is attacker-supplied
                    // and may exceed the actual datagram; the loop below
                    // still bails on truncation.
                    let mut bytes = Vec::with_capacity((len as usize).min(64));
                    for _ in 0..len {
                        bytes.push(r.u8()?);
                    }
                    Some(String::from_utf8(bytes).map_err(|_| SlpError::BadString)?)
                };
                let scopes = r.string()?;
                Body::SrvTypeRqst(SrvTypeRqst { prlist, naming_authority, scopes })
            }
            FunctionId::SrvTypeRply => {
                Body::SrvTypeRply(SrvTypeRply { error: r.u16()?, types: r.string()? })
            }
            FunctionId::SaAdvert => {
                let url = r.string()?;
                let scopes = r.string()?;
                let attrs = r.string()?;
                let _auths = r.u8()?;
                Body::SaAdvert(SaAdvert { url, scopes, attrs })
            }
        };
        if r.remaining() != 0 {
            return Err(SlpError::LengthMismatch {
                declared: body_bytes.len() - r.remaining(),
                actual: body_bytes.len(),
            });
        }
        Ok(Message { header, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::{DEFAULT_LANG, FLAG_MCAST};

    fn hdr(xid: u16) -> Header {
        Header::new(FunctionId::SrvAck, xid, DEFAULT_LANG)
    }

    fn roundtrip(body: Body) {
        let msg = Message::new(hdr(7), body);
        let wire = msg.encode().unwrap();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn srv_rqst_roundtrip() {
        roundtrip(Body::SrvRqst(SrvRqst {
            prlist: "10.0.0.1".into(),
            service_type: "service:clock".into(),
            scopes: "DEFAULT".into(),
            predicate: "(location=paris)".into(),
            spi: String::new(),
        }));
    }

    #[test]
    fn srv_rply_roundtrip() {
        roundtrip(Body::SrvRply(SrvRply {
            error: 0,
            urls: vec![
                UrlEntry::new("service:clock:soap://10.0.0.2:4005/ctl", 1800),
                UrlEntry::new("service:clock://10.0.0.3", 60),
            ],
        }));
    }

    #[test]
    fn srv_reg_roundtrip() {
        roundtrip(Body::SrvReg(SrvReg {
            entry: UrlEntry::new("service:printer:lpr://10.0.0.4:515", 10800),
            service_type: "service:printer:lpr".into(),
            scopes: "DEFAULT,office".into(),
            attrs: "(ppm=12),(color)".into(),
        }));
    }

    #[test]
    fn srv_dereg_roundtrip() {
        roundtrip(Body::SrvDeReg(SrvDeReg {
            scopes: "DEFAULT".into(),
            entry: UrlEntry::new("service:printer://10.0.0.4", 0),
            tags: String::new(),
        }));
    }

    #[test]
    fn srv_ack_roundtrip() {
        roundtrip(Body::SrvAck(SrvAck { error: 4 }));
    }

    #[test]
    fn attr_rqst_rply_roundtrip() {
        roundtrip(Body::AttrRqst(AttrRqst {
            prlist: String::new(),
            url: "service:clock://10.0.0.2".into(),
            scopes: "DEFAULT".into(),
            tags: "friendlyName,model".into(),
            spi: String::new(),
        }));
        roundtrip(Body::AttrRply(AttrRply {
            error: 0,
            attrs: "(friendlyName=CyberGarage Clock Device)".into(),
        }));
    }

    #[test]
    fn da_advert_roundtrip() {
        roundtrip(Body::DaAdvert(DaAdvert {
            error: 0,
            boot_timestamp: 123456,
            url: "service:directory-agent://10.0.0.5".into(),
            scopes: "DEFAULT".into(),
            attrs: String::new(),
            spi: String::new(),
        }));
    }

    #[test]
    fn srv_type_rqst_all_and_named_authority() {
        roundtrip(Body::SrvTypeRqst(SrvTypeRqst {
            prlist: String::new(),
            naming_authority: None,
            scopes: "DEFAULT".into(),
        }));
        roundtrip(Body::SrvTypeRqst(SrvTypeRqst {
            prlist: String::new(),
            naming_authority: Some("iana".into()),
            scopes: "DEFAULT".into(),
        }));
        roundtrip(Body::SrvTypeRply(SrvTypeRply {
            error: 0,
            types: "service:clock,service:printer".into(),
        }));
    }

    #[test]
    fn sa_advert_roundtrip() {
        roundtrip(Body::SaAdvert(SaAdvert {
            url: "service:service-agent://10.0.0.2".into(),
            scopes: "DEFAULT".into(),
            attrs: "(service-type=service:clock)".into(),
        }));
    }

    #[test]
    fn flags_preserved() {
        let mut header = hdr(1);
        header.flags = FLAG_MCAST;
        let msg = Message::new(header, Body::SrvAck(SrvAck { error: 0 }));
        let back = Message::decode(&msg.encode().unwrap()).unwrap();
        assert_eq!(back.header.flags, FLAG_MCAST);
    }

    #[test]
    fn error_code_accessor() {
        let msg = Message::new(hdr(1), Body::SrvAck(SrvAck { error: 4 }));
        assert_eq!(msg.error_code(), ErrorCode::ScopeNotSupported);
        let req = Message::new(hdr(1), Body::SrvRqst(SrvRqst::default()));
        assert_eq!(req.error_code(), ErrorCode::Ok);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let msg = Message::new(hdr(1), Body::SrvAck(SrvAck { error: 0 }));
        let mut wire = msg.encode().unwrap();
        // Grow the body and fix the declared length so only the body-level
        // check can catch it.
        wire.push(0xAB);
        let total = wire.len() as u32;
        wire[2..5].copy_from_slice(&total.to_be_bytes()[1..4]);
        assert!(Message::decode(&wire).is_err());
    }

    #[test]
    fn header_function_follows_body() {
        let msg = Message::new(hdr(9), Body::SrvRply(SrvRply::default()));
        assert_eq!(msg.header.function, FunctionId::SrvRply);
    }
}
