//! Service Agent: advertises registrations and answers requests.

use std::cell::RefCell;
use std::net::SocketAddrV4;
use std::rc::Rc;

use indiss_net::{Datagram, NetResult, Node, UdpSocket, World};

use crate::agent::{scopes_intersect, Registration, SlpConfig};
use crate::consts::{FunctionId, SLP_MULTICAST_GROUP, SLP_PORT};
use crate::error::SlpResult;
use crate::filter::Filter;
use crate::messages::{AttrRply, Body, Message, SaAdvert, SrvReg, SrvRply, SrvRqst, SrvTypeRply};
use crate::url::{ServiceType, UrlEntry};
use crate::wire::Header;

struct SaInner {
    node: Node,
    socket: UdpSocket,
    config: SlpConfig,
    registrations: Vec<Registration>,
    /// Known directory agent (learned from DAAdverts); registrations are
    /// forwarded there.
    da: Option<SocketAddrV4>,
    next_xid: u16,
}

/// A Service Agent bound to UDP 427 on its node, joined to the SLP
/// multicast group.
///
/// Answers `SrvRqst` (type + scope + predicate matching), `AttrRqst` and
/// `SrvTypeRqst`; forwards registrations to a DA once one is heard.
#[derive(Clone)]
pub struct ServiceAgent {
    inner: Rc<RefCell<SaInner>>,
}

impl ServiceAgent {
    /// Starts an SA on `node`.
    ///
    /// # Errors
    ///
    /// Network errors if UDP 427 is exclusively taken on this node.
    pub fn start(node: &Node, config: SlpConfig) -> NetResult<ServiceAgent> {
        let socket = node.udp_bind_shared(SLP_PORT)?;
        socket.join_multicast(SLP_MULTICAST_GROUP)?;
        let agent = ServiceAgent {
            inner: Rc::new(RefCell::new(SaInner {
                node: node.clone(),
                socket: socket.clone(),
                config,
                registrations: Vec::new(),
                da: None,
                next_xid: 1,
            })),
        };
        let handler = agent.clone();
        socket.on_receive(move |world, dgram| handler.handle_datagram(world, dgram));
        Ok(agent)
    }

    /// Adds a registration to the local table; if a DA is known, also
    /// forwards a `SrvReg` to it.
    pub fn register(&self, registration: Registration) {
        let (da, msg) = {
            let mut inner = self.inner.borrow_mut();
            let xid = inner.bump_xid();
            let msg = registration_message(&registration, xid);
            inner.registrations.push(registration);
            (inner.da, msg)
        };
        if let (Some(da), Ok(msg)) = (da, msg) {
            self.send(&msg, da);
        }
    }

    /// Removes a registration by URL; returns whether one was removed.
    pub fn deregister(&self, url: &str) -> bool {
        let mut inner = self.inner.borrow_mut();
        let before = inner.registrations.len();
        inner.registrations.retain(|r| r.url != url);
        inner.registrations.len() != before
    }

    /// Snapshot of current registrations.
    pub fn registrations(&self) -> Vec<Registration> {
        self.inner.borrow().registrations.clone()
    }

    /// The DA this SA currently forwards to, if any.
    pub fn known_da(&self) -> Option<SocketAddrV4> {
        self.inner.borrow().da
    }

    /// The node this agent runs on.
    pub fn node(&self) -> Node {
        self.inner.borrow().node.clone()
    }

    fn send(&self, msg: &Message, to: SocketAddrV4) {
        if let Ok(bytes) = msg.encode() {
            let socket = self.inner.borrow().socket.clone();
            let _ = socket.send_to(&bytes, to);
        }
    }

    fn handle_datagram(&self, world: &World, dgram: Datagram) {
        let Ok(msg) = Message::decode(&dgram.payload) else {
            return; // not SLP or malformed: ignore, as OpenSLP does
        };
        match &msg.body {
            Body::SrvRqst(req) => self.handle_srv_rqst(world, &msg.header, req, dgram.src),
            Body::AttrRqst(req) => {
                let reply = self.build_attr_reply(&msg.header, &req.url, &req.scopes);
                self.reply_after_delay(world, reply, dgram.src);
            }
            Body::SrvTypeRqst(req) => {
                let reply = self.build_srv_type_reply(&msg.header, &req.scopes);
                self.reply_after_delay(world, reply, dgram.src);
            }
            Body::DaAdvert(advert) => {
                // Learn the DA and forward all registrations (RFC 2608 §12.2).
                let da_addr = parse_da_addr(&advert.url);
                if let Some(da) = da_addr {
                    let msgs: Vec<Message> = {
                        let mut inner = self.inner.borrow_mut();
                        inner.da = Some(da);
                        let regs = inner.registrations.clone();
                        regs.iter()
                            .filter_map(|r| {
                                let xid = inner.bump_xid();
                                registration_message(r, xid).ok()
                            })
                            .collect()
                    };
                    for m in msgs {
                        self.send(&m, da);
                    }
                }
            }
            _ => {}
        }
    }

    fn handle_srv_rqst(
        &self,
        world: &World,
        header: &Header,
        req: &SrvRqst,
        requester: SocketAddrV4,
    ) {
        // Multicast convergence: do not answer if we are already listed.
        let own_addr = self.inner.borrow().node.addr().to_string();
        if req.prlist.split(',').any(|p| p.trim() == own_addr) {
            return;
        }
        let Some(reply) = self.build_srv_reply(header, req) else {
            // No match to a multicast request: stay silent (§7).
            return;
        };
        self.reply_after_delay(world, reply, requester);
    }

    /// Matches a request against the table. Returns `None` when nothing
    /// matched (multicast etiquette is to stay silent).
    fn build_srv_reply(&self, header: &Header, req: &SrvRqst) -> Option<Message> {
        let inner = self.inner.borrow();
        let stripped = req.service_type.strip_prefix("service:").unwrap_or(&req.service_type);
        let wanted = ServiceType::parse(stripped).ok()?;
        let predicate = Filter::parse(&req.predicate).ok()?;
        let urls: Vec<UrlEntry> = inner
            .registrations
            .iter()
            .filter(|r| wanted.matches(&r.service_type))
            .filter(|r| scopes_intersect(&req.scopes, &r.scopes))
            .filter(|r| predicate.matches(&r.attrs))
            .map(|r| UrlEntry::new(r.url.clone(), r.lifetime))
            .collect();
        if urls.is_empty() {
            return None;
        }
        Some(Message::new(
            Header::new(FunctionId::SrvRply, header.xid, &header.lang),
            Body::SrvRply(SrvRply { error: 0, urls }),
        ))
    }

    fn build_attr_reply(&self, header: &Header, url: &str, scopes: &str) -> Message {
        let inner = self.inner.borrow();
        let attrs = inner
            .registrations
            .iter()
            .find(|r| r.url == url && scopes_intersect(scopes, &r.scopes))
            .map(|r| r.attrs.to_string())
            .unwrap_or_default();
        Message::new(
            Header::new(FunctionId::AttrRply, header.xid, &header.lang),
            Body::AttrRply(AttrRply { error: 0, attrs }),
        )
    }

    fn build_srv_type_reply(&self, header: &Header, scopes: &str) -> Message {
        let inner = self.inner.borrow();
        let mut types: Vec<String> = inner
            .registrations
            .iter()
            .filter(|r| scopes_intersect(scopes, &r.scopes))
            .map(|r| r.service_type.to_string())
            .collect();
        types.sort();
        types.dedup();
        Message::new(
            Header::new(FunctionId::SrvTypeRply, header.xid, &header.lang),
            Body::SrvTypeRply(SrvTypeRply { error: 0, types: types.join(",") }),
        )
    }

    /// Sends a reply after the configured processing delay, modelling the
    /// agent's handling cost.
    fn reply_after_delay(&self, world: &World, reply: Message, to: SocketAddrV4) {
        let delay = self.inner.borrow().config.processing_delay;
        let this = self.clone();
        world.schedule_in(delay, move |_| this.send(&reply, to));
    }

    /// Multicasts an unsolicited `SAAdvert` (used by INDISS's active mode
    /// to make a silent SA's services visible).
    pub fn advertise(&self) -> SlpResult<()> {
        let msg = {
            let mut inner = self.inner.borrow_mut();
            let xid = inner.bump_xid();
            let url = format!("service:service-agent://{}", inner.node.addr());
            Message::new(
                Header::new(FunctionId::SaAdvert, xid, crate::consts::DEFAULT_LANG),
                Body::SaAdvert(SaAdvert {
                    url,
                    scopes: inner.config.scopes.clone(),
                    attrs: String::new(),
                }),
            )
        };
        self.send(&msg, SocketAddrV4::new(SLP_MULTICAST_GROUP, SLP_PORT));
        Ok(())
    }
}

impl SaInner {
    fn bump_xid(&mut self) -> u16 {
        let x = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1).max(1);
        x
    }
}

fn registration_message(r: &Registration, xid: u16) -> SlpResult<Message> {
    Ok(Message::new(
        Header::new(FunctionId::SrvReg, xid, crate::consts::DEFAULT_LANG),
        Body::SrvReg(SrvReg {
            entry: UrlEntry::new(r.url.clone(), r.lifetime),
            service_type: r.service_type.to_string(),
            scopes: r.scopes.clone(),
            attrs: r.attrs.to_string(),
        }),
    ))
}

fn parse_da_addr(url: &str) -> Option<SocketAddrV4> {
    // service:directory-agent://10.0.0.5
    let parsed = crate::url::ServiceUrl::parse(url).ok()?;
    let ip: std::net::Ipv4Addr = parsed.host.parse().ok()?;
    Some(SocketAddrV4::new(ip, parsed.port.unwrap_or(SLP_PORT)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttributeList;
    use indiss_net::World;

    fn reg(url: &str, attrs: &str) -> Registration {
        Registration::new(url, AttributeList::parse(attrs).unwrap()).unwrap()
    }

    #[test]
    fn sa_tracks_registrations() {
        let world = World::new(1);
        let node = world.add_node("printer");
        let sa = ServiceAgent::start(&node, SlpConfig::default()).unwrap();
        sa.register(reg("service:printer://10.0.0.1:515", "(ppm=12)"));
        assert_eq!(sa.registrations().len(), 1);
        assert!(sa.deregister("service:printer://10.0.0.1:515"));
        assert!(!sa.deregister("service:printer://10.0.0.1:515"));
    }

    #[test]
    fn two_sas_can_share_a_node() {
        // SO_REUSEADDR semantics: e.g. INDISS and a native SA co-located.
        let world = World::new(1);
        let node = world.add_node("host");
        assert!(ServiceAgent::start(&node, SlpConfig::default()).is_ok());
        assert!(ServiceAgent::start(&node, SlpConfig::default()).is_ok());
    }

    #[test]
    fn da_addr_parsing() {
        assert_eq!(
            parse_da_addr("service:directory-agent://10.0.0.5"),
            Some(SocketAddrV4::new(std::net::Ipv4Addr::new(10, 0, 0, 5), SLP_PORT))
        );
        assert_eq!(
            parse_da_addr("service:directory-agent://10.0.0.5:1427"),
            Some(SocketAddrV4::new(std::net::Ipv4Addr::new(10, 0, 0, 5), 1427))
        );
        assert_eq!(parse_da_addr("not-a-url"), None);
    }
}
