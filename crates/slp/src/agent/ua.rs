//! User Agent: issues service/attribute requests for applications.

use std::cell::RefCell;
use std::collections::HashMap;
use std::net::SocketAddrV4;
use std::rc::Rc;

use indiss_net::{Completion, Datagram, NetResult, Node, SimTime, UdpSocket, World};

use crate::agent::SlpConfig;
use crate::attrs::AttributeList;
use crate::consts::{FunctionId, DEFAULT_LANG, SLP_MULTICAST_GROUP, SLP_PORT};
use crate::messages::{AttrRqst, Body, Message, SrvRqst};
use crate::url::UrlEntry;
use crate::wire::Header;

/// Final result of one discovery round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveryOutcome {
    /// All URL entries collected before the convergence deadline.
    pub urls: Vec<UrlEntry>,
    /// Virtual time at which the *first* reply arrived, if any — the
    /// paper's response-time metric (§4.3) is `first_reply_at - started_at`.
    pub first_reply_at: Option<SimTime>,
    /// Virtual time at which the request was issued.
    pub started_at: SimTime,
}

impl DiscoveryOutcome {
    /// Response time to the first answer, the quantity Figs. 7–9 report.
    pub fn response_time(&self) -> Option<std::time::Duration> {
        self.first_reply_at.map(|t| t - self.started_at)
    }
}

enum Pending {
    Discovery {
        urls: Vec<UrlEntry>,
        first_reply_at: Option<SimTime>,
        started_at: SimTime,
        first: Completion<SimTime>,
        done: Completion<DiscoveryOutcome>,
    },
    Attributes {
        done: Completion<AttributeList>,
    },
}

struct UaInner {
    socket: UdpSocket,
    config: SlpConfig,
    /// Known DA; when set, requests go unicast there instead of multicast.
    da: Option<SocketAddrV4>,
    next_xid: u16,
    pending: HashMap<u16, Pending>,
}

/// A User Agent with an ephemeral socket for replies.
///
/// # Examples
///
/// See the crate-level docs; the flow is `find_services` → run the world →
/// inspect the returned [`Completion`]s.
#[derive(Clone)]
pub struct UserAgent {
    inner: Rc<RefCell<UaInner>>,
}

impl UserAgent {
    /// Creates a UA on `node`.
    ///
    /// # Errors
    ///
    /// Network errors from binding the reply socket.
    pub fn start(node: &Node, config: SlpConfig) -> NetResult<UserAgent> {
        let socket = node.udp_bind_ephemeral()?;
        let ua = UserAgent {
            inner: Rc::new(RefCell::new(UaInner {
                socket: socket.clone(),
                config,
                da: None,
                next_xid: 1,
                pending: HashMap::new(),
            })),
        };
        let handler = ua.clone();
        socket.on_receive(move |world, dgram| handler.handle_datagram(world, dgram));
        Ok(ua)
    }

    /// Points the UA at a directory agent; subsequent requests go unicast.
    pub fn set_da(&self, da: Option<SocketAddrV4>) {
        self.inner.borrow_mut().da = da;
    }

    /// Issues a service request.
    ///
    /// Returns `(first, done)`: `first` completes at the virtual time of
    /// the first reply; `done` completes at the convergence deadline with
    /// everything collected. Drive the [`World`] to make progress.
    pub fn find_services(
        &self,
        world: &World,
        service_type: &str,
        predicate: &str,
    ) -> (Completion<SimTime>, Completion<DiscoveryOutcome>) {
        let first = Completion::new();
        let done = Completion::new();
        let (xid, dst, wire, wait) = {
            let mut inner = self.inner.borrow_mut();
            let xid = inner.bump_xid();
            let mut header = Header::new(FunctionId::SrvRqst, xid, DEFAULT_LANG);
            let dst = match inner.da {
                Some(da) => da,
                None => {
                    header.flags = crate::consts::FLAG_MCAST;
                    SocketAddrV4::new(SLP_MULTICAST_GROUP, SLP_PORT)
                }
            };
            let msg = Message::new(
                header,
                Body::SrvRqst(SrvRqst {
                    prlist: String::new(),
                    service_type: service_type.to_owned(),
                    scopes: inner.config.scopes.clone(),
                    predicate: predicate.to_owned(),
                    spi: String::new(),
                }),
            );
            let wire = msg.encode().expect("requests are always encodable");
            inner.pending.insert(
                xid,
                Pending::Discovery {
                    urls: Vec::new(),
                    first_reply_at: None,
                    started_at: world.now(),
                    first: first.clone(),
                    done: done.clone(),
                },
            );
            (xid, dst, wire, inner.config.mcast_wait)
        };
        let socket = self.inner.borrow().socket.clone();
        let _ = socket.send_to(&wire, dst);
        // Convergence deadline: close the round and report what arrived.
        let this = self.clone();
        world.schedule_in(wait, move |_| this.finish_round(xid));
        (first, done)
    }

    /// Requests the attributes of a specific service URL.
    ///
    /// The returned completion is fulfilled with the (possibly empty)
    /// attribute list from the first reply.
    pub fn find_attributes(&self, world: &World, url: &str) -> Completion<AttributeList> {
        let done = Completion::new();
        let (dst, wire) = {
            let mut inner = self.inner.borrow_mut();
            let xid = inner.bump_xid();
            let mut header = Header::new(FunctionId::AttrRqst, xid, DEFAULT_LANG);
            let dst = match inner.da {
                Some(da) => da,
                None => {
                    header.flags = crate::consts::FLAG_MCAST;
                    SocketAddrV4::new(SLP_MULTICAST_GROUP, SLP_PORT)
                }
            };
            let msg = Message::new(
                header,
                Body::AttrRqst(AttrRqst {
                    prlist: String::new(),
                    url: url.to_owned(),
                    scopes: inner.config.scopes.clone(),
                    tags: String::new(),
                    spi: String::new(),
                }),
            );
            let wire = msg.encode().expect("requests are always encodable");
            inner.pending.insert(xid, Pending::Attributes { done: done.clone() });
            (dst, wire)
        };
        let socket = self.inner.borrow().socket.clone();
        let _ = socket.send_to(&wire, dst);
        let _ = world; // world is taken for interface symmetry with find_services
        done
    }

    fn finish_round(&self, xid: u16) {
        let entry = self.inner.borrow_mut().pending.remove(&xid);
        if let Some(Pending::Discovery { urls, first_reply_at, started_at, done, .. }) = entry {
            done.complete(DiscoveryOutcome { urls, first_reply_at, started_at });
        }
    }

    fn handle_datagram(&self, world: &World, dgram: Datagram) {
        let Ok(msg) = Message::decode(&dgram.payload) else {
            return;
        };
        let mut inner = self.inner.borrow_mut();
        let xid = msg.header.xid;
        match (&msg.body, inner.pending.get_mut(&xid)) {
            (Body::SrvRply(rply), Some(Pending::Discovery { urls, first_reply_at, first, .. }))
                if rply.error == 0 =>
            {
                if first_reply_at.is_none() {
                    *first_reply_at = Some(world.now());
                    first.complete(world.now());
                }
                urls.extend(rply.urls.iter().cloned());
            }
            (Body::AttrRply(rply), Some(Pending::Attributes { done })) => {
                if rply.error == 0 {
                    let attrs = AttributeList::parse(&rply.attrs).unwrap_or_default();
                    done.complete(attrs);
                }
                inner.pending.remove(&xid);
            }
            _ => {}
        }
    }
}

impl UaInner {
    fn bump_xid(&mut self) -> u16 {
        let x = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1).max(1);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Registration, ServiceAgent};
    use indiss_net::World;

    fn setup() -> (World, UserAgent, ServiceAgent) {
        let world = World::new(5);
        let service_node = world.add_node("service");
        let client_node = world.add_node("client");
        let sa = ServiceAgent::start(&service_node, SlpConfig::default()).unwrap();
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();
        (world, ua, sa)
    }

    #[test]
    fn ua_discovers_matching_service() {
        let (world, ua, sa) = setup();
        sa.register(
            Registration::new(
                "service:printer:lpr://10.0.0.1:515",
                AttributeList::parse("(ppm=12)").unwrap(),
            )
            .unwrap(),
        );
        let (_first, done) = ua.find_services(&world, "service:printer", "");
        world.run_until_idle();
        let outcome = done.take().expect("round finished");
        assert_eq!(outcome.urls.len(), 1);
        assert!(outcome.response_time().is_some());
    }

    #[test]
    fn predicate_filters_replies() {
        let (world, ua, sa) = setup();
        sa.register(
            Registration::new(
                "service:printer://10.0.0.1",
                AttributeList::parse("(ppm=5)").unwrap(),
            )
            .unwrap(),
        );
        let (_, done) = ua.find_services(&world, "service:printer", "(ppm>=10)");
        world.run_until_idle();
        assert!(done.take().unwrap().urls.is_empty(), "slow printer filtered out");
    }

    #[test]
    fn no_match_means_empty_outcome_without_first_reply() {
        let (world, ua, _sa) = setup();
        let (first, done) = ua.find_services(&world, "service:clock", "");
        world.run_until_idle();
        assert!(!first.is_complete());
        let outcome = done.take().unwrap();
        assert!(outcome.urls.is_empty());
        assert_eq!(outcome.response_time(), None);
    }

    #[test]
    fn native_slp_response_time_is_sub_millisecond() {
        // The paper's Fig. 7 reference: SLP→SLP ≈ 0.7 ms on a 10 Mb/s LAN.
        // Our calibrated simulation must land in the same regime (< 2 ms).
        let (world, ua, sa) = setup();
        sa.register(Registration::new("service:clock://10.0.0.1", AttributeList::new()).unwrap());
        let (_, done) = ua.find_services(&world, "service:clock", "");
        world.run_until_idle();
        let rt = done.take().unwrap().response_time().expect("got a reply");
        assert!(rt < std::time::Duration::from_millis(2), "got {rt:?}");
        assert!(rt > std::time::Duration::from_micros(100), "got {rt:?}");
    }

    #[test]
    fn attribute_request_roundtrip() {
        let (world, ua, sa) = setup();
        sa.register(
            Registration::new(
                "service:clock://10.0.0.1",
                AttributeList::parse("(friendlyName=Clock)").unwrap(),
            )
            .unwrap(),
        );
        let done = ua.find_attributes(&world, "service:clock://10.0.0.1");
        world.run_until_idle();
        let attrs = done.take().expect("reply");
        assert_eq!(attrs.get("friendlyname"), Some("Clock"));
    }

    #[test]
    fn multiple_services_collected_by_deadline() {
        let world = World::new(5);
        let client = world.add_node("client");
        let ua = UserAgent::start(&client, SlpConfig::default()).unwrap();
        for i in 0..3 {
            let n = world.add_node(&format!("printer{i}"));
            let sa = ServiceAgent::start(&n, SlpConfig::default()).unwrap();
            sa.register(
                Registration::new(
                    &format!("service:printer://10.0.0.{}", i + 10),
                    AttributeList::new(),
                )
                .unwrap(),
            );
        }
        let (_, done) = ua.find_services(&world, "service:printer", "");
        world.run_until_idle();
        assert_eq!(done.take().unwrap().urls.len(), 3);
    }
}
