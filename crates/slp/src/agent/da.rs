//! Directory Agent: the optional SLP repository.
//!
//! The paper's §2 taxonomy distinguishes repository-based from
//! repository-less discovery; the DA is SLP's repository. It multicasts
//! unsolicited `DAAdvert`s (passive DA discovery), accepts unicast
//! registrations, and answers unicast requests from its store.

use std::cell::RefCell;
use std::net::SocketAddrV4;
use std::rc::Rc;
use std::time::Duration;

use indiss_net::{Datagram, NetResult, Node, UdpSocket, World};

use crate::agent::{scopes_intersect, SlpConfig};
use crate::attrs::AttributeList;
use crate::consts::{ErrorCode, FunctionId, DEFAULT_LANG, SLP_MULTICAST_GROUP, SLP_PORT};
use crate::filter::Filter;
use crate::messages::{AttrRply, Body, DaAdvert, Message, SrvAck, SrvRply, SrvRqst, SrvTypeRply};
use crate::url::{ServiceType, UrlEntry};
use crate::wire::Header;

/// A stored registration with its absolute expiry.
#[derive(Debug, Clone)]
struct StoredReg {
    url: String,
    service_type: ServiceType,
    scopes: String,
    attrs: AttributeList,
    lifetime: u16,
    expires_at: indiss_net::SimTime,
}

struct DaInner {
    node: Node,
    socket: UdpSocket,
    config: SlpConfig,
    store: Vec<StoredReg>,
    boot_timestamp: u32,
    next_xid: u16,
    advert_interval: Duration,
    running: bool,
}

/// A Directory Agent.
#[derive(Clone)]
pub struct DirectoryAgent {
    inner: Rc<RefCell<DaInner>>,
}

impl DirectoryAgent {
    /// Starts a DA on `node`, advertising every `advert_interval`.
    ///
    /// # Errors
    ///
    /// Network errors if UDP 427 is exclusively taken on this node.
    pub fn start(
        node: &Node,
        config: SlpConfig,
        advert_interval: Duration,
    ) -> NetResult<DirectoryAgent> {
        let socket = node.udp_bind_shared(SLP_PORT)?;
        socket.join_multicast(SLP_MULTICAST_GROUP)?;
        let da = DirectoryAgent {
            inner: Rc::new(RefCell::new(DaInner {
                node: node.clone(),
                socket: socket.clone(),
                config,
                store: Vec::new(),
                boot_timestamp: 1,
                next_xid: 1,
                advert_interval,
                running: true,
            })),
        };
        let handler = da.clone();
        socket.on_receive(move |world, dgram| handler.handle_datagram(world, dgram));
        // First unsolicited advert goes out immediately; then periodically.
        let this = da.clone();
        node.world().schedule_in(Duration::ZERO, move |w| this.advertise_and_reschedule(w));
        Ok(da)
    }

    /// Stops periodic advertising (the store stays queryable).
    pub fn stop_advertising(&self) {
        self.inner.borrow_mut().running = false;
    }

    /// Number of live registrations.
    pub fn registration_count(&self) -> usize {
        self.inner.borrow().store.len()
    }

    /// The DA's own service URL.
    pub fn url(&self) -> String {
        format!("service:directory-agent://{}", self.inner.borrow().node.addr())
    }

    fn advertise_and_reschedule(&self, world: &World) {
        let (running, interval) = {
            let inner = self.inner.borrow();
            (inner.running, inner.advert_interval)
        };
        if !running {
            return;
        }
        self.multicast_advert(0);
        let this = self.clone();
        world.schedule_in(interval, move |w| this.advertise_and_reschedule(w));
    }

    fn multicast_advert(&self, reply_xid: u16) {
        let msg = {
            let mut inner = self.inner.borrow_mut();
            let xid = if reply_xid != 0 { reply_xid } else { inner.bump_xid() };
            Message::new(
                Header::new(FunctionId::DaAdvert, xid, DEFAULT_LANG),
                Body::DaAdvert(DaAdvert {
                    error: 0,
                    boot_timestamp: inner.boot_timestamp,
                    url: format!("service:directory-agent://{}", inner.node.addr()),
                    scopes: inner.config.scopes.clone(),
                    attrs: String::new(),
                    spi: String::new(),
                }),
            )
        };
        self.send(&msg, SocketAddrV4::new(SLP_MULTICAST_GROUP, SLP_PORT));
    }

    fn send(&self, msg: &Message, to: SocketAddrV4) {
        if let Ok(bytes) = msg.encode() {
            let socket = self.inner.borrow().socket.clone();
            let _ = socket.send_to(&bytes, to);
        }
    }

    fn handle_datagram(&self, world: &World, dgram: Datagram) {
        let Ok(msg) = Message::decode(&dgram.payload) else {
            return;
        };
        self.purge_expired(world);
        match &msg.body {
            Body::SrvReg(reg) => {
                let error = {
                    let mut inner = self.inner.borrow_mut();
                    match (
                        ServiceType::parse(
                            reg.service_type.strip_prefix("service:").unwrap_or(&reg.service_type),
                        ),
                        AttributeList::parse(&reg.attrs),
                    ) {
                        (Ok(service_type), Ok(attrs)) => {
                            let expires_at =
                                world.now() + Duration::from_secs(u64::from(reg.entry.lifetime));
                            inner.store.retain(|s| s.url != reg.entry.url);
                            inner.store.push(StoredReg {
                                url: reg.entry.url.clone(),
                                service_type,
                                scopes: reg.scopes.clone(),
                                attrs,
                                lifetime: reg.entry.lifetime,
                                expires_at,
                            });
                            ErrorCode::Ok
                        }
                        _ => ErrorCode::InvalidRegistration,
                    }
                };
                let ack = Message::new(
                    Header::new(FunctionId::SrvAck, msg.header.xid, &msg.header.lang),
                    Body::SrvAck(SrvAck { error: error as u16 }),
                );
                self.reply_after_delay(world, ack, dgram.src);
            }
            Body::SrvDeReg(dereg) => {
                {
                    let mut inner = self.inner.borrow_mut();
                    inner.store.retain(|s| s.url != dereg.entry.url);
                }
                let ack = Message::new(
                    Header::new(FunctionId::SrvAck, msg.header.xid, &msg.header.lang),
                    Body::SrvAck(SrvAck { error: 0 }),
                );
                self.reply_after_delay(world, ack, dgram.src);
            }
            Body::SrvRqst(req) => {
                // Active DA discovery: answer directory-agent requests with
                // a DAAdvert (RFC 2608 §8.5).
                if req.service_type.contains("directory-agent") {
                    let advert = self.build_advert_reply(msg.header.xid);
                    self.reply_after_delay(world, advert, dgram.src);
                    return;
                }
                if let Some(reply) = self.build_srv_reply(&msg.header, req) {
                    self.reply_after_delay(world, reply, dgram.src);
                } else if !dgram.is_multicast() {
                    // Unicast requests always get an answer, even if empty.
                    let empty = Message::new(
                        Header::new(FunctionId::SrvRply, msg.header.xid, &msg.header.lang),
                        Body::SrvRply(SrvRply { error: 0, urls: Vec::new() }),
                    );
                    self.reply_after_delay(world, empty, dgram.src);
                }
            }
            Body::AttrRqst(req) => {
                let inner = self.inner.borrow();
                let attrs = inner
                    .store
                    .iter()
                    .find(|s| s.url == req.url && scopes_intersect(&req.scopes, &s.scopes))
                    .map(|s| s.attrs.to_string())
                    .unwrap_or_default();
                drop(inner);
                let reply = Message::new(
                    Header::new(FunctionId::AttrRply, msg.header.xid, &msg.header.lang),
                    Body::AttrRply(AttrRply { error: 0, attrs }),
                );
                self.reply_after_delay(world, reply, dgram.src);
            }
            Body::SrvTypeRqst(req) => {
                let inner = self.inner.borrow();
                let mut types: Vec<String> = inner
                    .store
                    .iter()
                    .filter(|s| scopes_intersect(&req.scopes, &s.scopes))
                    .map(|s| s.service_type.to_string())
                    .collect();
                drop(inner);
                types.sort();
                types.dedup();
                let reply = Message::new(
                    Header::new(FunctionId::SrvTypeRply, msg.header.xid, &msg.header.lang),
                    Body::SrvTypeRply(SrvTypeRply { error: 0, types: types.join(",") }),
                );
                self.reply_after_delay(world, reply, dgram.src);
            }
            _ => {}
        }
    }

    fn build_advert_reply(&self, xid: u16) -> Message {
        let inner = self.inner.borrow();
        Message::new(
            Header::new(FunctionId::DaAdvert, xid, DEFAULT_LANG),
            Body::DaAdvert(DaAdvert {
                error: 0,
                boot_timestamp: inner.boot_timestamp,
                url: format!("service:directory-agent://{}", inner.node.addr()),
                scopes: inner.config.scopes.clone(),
                attrs: String::new(),
                spi: String::new(),
            }),
        )
    }

    fn build_srv_reply(&self, header: &Header, req: &SrvRqst) -> Option<Message> {
        let inner = self.inner.borrow();
        let stripped = req.service_type.strip_prefix("service:").unwrap_or(&req.service_type);
        let wanted = ServiceType::parse(stripped).ok()?;
        let predicate = Filter::parse(&req.predicate).ok()?;
        let urls: Vec<UrlEntry> = inner
            .store
            .iter()
            .filter(|s| wanted.matches(&s.service_type))
            .filter(|s| scopes_intersect(&req.scopes, &s.scopes))
            .filter(|s| predicate.matches(&s.attrs))
            .map(|s| UrlEntry::new(s.url.clone(), s.lifetime))
            .collect();
        if urls.is_empty() {
            return None;
        }
        Some(Message::new(
            Header::new(FunctionId::SrvRply, header.xid, &header.lang),
            Body::SrvRply(SrvRply { error: 0, urls }),
        ))
    }

    fn reply_after_delay(&self, world: &World, reply: Message, to: SocketAddrV4) {
        let delay = self.inner.borrow().config.processing_delay;
        let this = self.clone();
        world.schedule_in(delay, move |_| this.send(&reply, to));
    }

    fn purge_expired(&self, world: &World) {
        let now = world.now();
        self.inner.borrow_mut().store.retain(|s| s.expires_at > now);
    }
}

impl DaInner {
    fn bump_xid(&mut self) -> u16 {
        let x = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1).max(1);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Registration, ServiceAgent, UserAgent};

    fn world_with_da() -> (World, DirectoryAgent) {
        let world = World::new(7);
        let da_node = world.add_node("da");
        let da =
            DirectoryAgent::start(&da_node, SlpConfig::default(), Duration::from_secs(60)).unwrap();
        (world, da)
    }

    #[test]
    fn sa_registers_with_discovered_da() {
        let (world, da) = world_with_da();
        let sa_node = world.node(indiss_net::NodeId::new(0)).unwrap().world().add_node("sa");
        let sa = ServiceAgent::start(&sa_node, SlpConfig::default()).unwrap();
        sa.register(Registration::new("service:printer://10.0.0.9", AttributeList::new()).unwrap());
        // DA advert goes out at t=0; the SA hears it and forwards SrvReg.
        world.run_for(Duration::from_secs(1));
        assert!(sa.known_da().is_some());
        assert_eq!(da.registration_count(), 1);
    }

    #[test]
    fn ua_queries_da_unicast() {
        let (world, da) = world_with_da();
        let world2 = world.clone();
        let sa_node = world2.add_node("sa");
        let client_node = world2.add_node("client");
        let sa = ServiceAgent::start(&sa_node, SlpConfig::default()).unwrap();
        sa.register(Registration::new("service:clock://10.0.0.9", AttributeList::new()).unwrap());
        world.run_for(Duration::from_secs(1));
        assert_eq!(da.registration_count(), 1);

        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();
        let da_addr =
            SocketAddrV4::new(world.node(indiss_net::NodeId::new(0)).unwrap().addr(), SLP_PORT);
        ua.set_da(Some(da_addr));
        let (_, done) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(1));
        assert_eq!(done.take().unwrap().urls.len(), 1);
    }

    #[test]
    fn unicast_miss_still_gets_empty_reply() {
        let (world, _da) = world_with_da();
        let client_node = world.add_node("client");
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();
        let da_addr =
            SocketAddrV4::new(world.node(indiss_net::NodeId::new(0)).unwrap().addr(), SLP_PORT);
        ua.set_da(Some(da_addr));
        let (first, done) = ua.find_services(&world, "service:nothing", "");
        world.run_for(Duration::from_secs(1));
        // An empty SrvRply is not a "first answer" for response-time
        // purposes, but the round still completes.
        assert!(done.take().unwrap().urls.is_empty());
        let _ = first;
    }

    #[test]
    fn registrations_expire() {
        let (world, da) = world_with_da();
        let sa_node = world.add_node("sa");
        let sa = ServiceAgent::start(&sa_node, SlpConfig::default()).unwrap();
        let mut reg = Registration::new("service:clock://10.0.0.9", AttributeList::new()).unwrap();
        reg.lifetime = 1; // one second
        sa.register(reg);
        world.run_for(Duration::from_millis(100));
        assert_eq!(da.registration_count(), 1);
        // Remove the SA's own copy so only the DA could answer, then let
        // the DA-side lifetime lapse; the next message triggers a purge.
        sa.deregister("service:clock://10.0.0.9");
        world.run_for(Duration::from_secs(2));
        let client = world.add_node("client");
        let ua = UserAgent::start(&client, SlpConfig::default()).unwrap();
        let (_, done) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(1));
        assert!(done.take().unwrap().urls.is_empty(), "expired registration not returned");
    }

    #[test]
    fn active_da_discovery() {
        // A UA can find the DA by multicasting a directory-agent request.
        let (world, _da) = world_with_da();
        let client = world.add_node("client");
        let ua = UserAgent::start(&client, SlpConfig::default()).unwrap();
        // Deliberately query for the DA type; the DAAdvert reply is not a
        // SrvRply so the discovery outcome stays empty, but we can observe
        // the advert arrived by checking the trace.
        world.enable_trace();
        let (_, done) = ua.find_services(&world, "service:directory-agent", "");
        world.run_for(Duration::from_secs(1));
        let _ = done.take();
        let trace = world.trace_snapshot().unwrap();
        let das_replies =
            trace.entries().iter().filter(|e| e.dst.port() >= 40_000 && e.len > 20).count();
        assert!(das_replies >= 1, "DA answered the active discovery probe");
    }
}
