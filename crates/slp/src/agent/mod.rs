//! SLP agents on the simulated network.
//!
//! RFC 2608 defines three roles, all implemented here:
//!
//! * [`ServiceAgent`] (SA) — advertises services, answers requests;
//! * [`UserAgent`] (UA) — issues requests on behalf of applications;
//! * [`DirectoryAgent`] (DA) — the optional repository both of the above
//!   use when present (the paper's "centralized lookup service", §2).
//!
//! The paper's native-SLP baseline (Fig. 7, "SLP → SLP" = 0.7 ms) is a UA
//! multicasting a SrvRqst and an SA unicasting a SrvRply back.

mod da;
mod sa;
mod ua;

pub use da::DirectoryAgent;
pub use sa::ServiceAgent;
pub use ua::{DiscoveryOutcome, UserAgent};

use std::time::Duration;

use crate::attrs::AttributeList;
use crate::consts::{DEFAULT_LIFETIME, DEFAULT_SCOPE};
use crate::url::ServiceType;

/// Shared agent tuning knobs.
#[derive(Debug, Clone)]
pub struct SlpConfig {
    /// Scopes this agent serves / requests, comma-separated.
    pub scopes: String,
    /// Simulated per-message handling cost. OpenSLP's handling is tens of
    /// microseconds on the paper's hardware; the default reflects that.
    pub processing_delay: Duration,
    /// How long a UA waits for multicast convergence before reporting all
    /// collected results. RFC 2608's `CONFIG_MC_MAX` default is 15 s; we
    /// default to 500 ms — long enough for INDISS-bridged answers that
    /// take a UPnP description fetch (~65 ms), short enough for tests.
    /// Note the *response time* metric is unaffected: it measures the
    /// first reply's arrival, not the window.
    pub mcast_wait: Duration,
    /// Default registration lifetime, seconds.
    pub lifetime: u16,
}

impl Default for SlpConfig {
    fn default() -> Self {
        SlpConfig {
            scopes: DEFAULT_SCOPE.to_owned(),
            processing_delay: Duration::from_micros(50),
            mcast_wait: Duration::from_millis(500),
            lifetime: DEFAULT_LIFETIME,
        }
    }
}

/// One service registration held by an SA or DA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Registration {
    /// Full service URL text, e.g. `service:printer:lpr://10.0.0.4:515`.
    pub url: String,
    /// Parsed service type (for request matching).
    pub service_type: ServiceType,
    /// Scopes the service is registered in, comma-separated.
    pub scopes: String,
    /// Service attributes.
    pub attrs: AttributeList,
    /// Lifetime in seconds.
    pub lifetime: u16,
}

impl Registration {
    /// Builds a registration, parsing the type from the URL.
    ///
    /// # Errors
    ///
    /// [`crate::SlpError::BadServiceUrl`] if `url` is not a service URL.
    pub fn new(url: &str, attrs: AttributeList) -> crate::SlpResult<Registration> {
        let parsed = crate::url::ServiceUrl::parse(url)?;
        Ok(Registration {
            url: url.to_owned(),
            service_type: parsed.service_type,
            scopes: DEFAULT_SCOPE.to_owned(),
            attrs,
            lifetime: DEFAULT_LIFETIME,
        })
    }

    /// Sets the scopes, returning `self` for chaining.
    pub fn with_scopes(mut self, scopes: &str) -> Self {
        self.scopes = scopes.to_owned();
        self
    }
}

/// True when two comma-separated scope lists share at least one scope
/// (case-insensitive), per RFC 2608 §6.4.1. An empty request list means
/// "any scope".
pub(crate) fn scopes_intersect(request: &str, offer: &str) -> bool {
    if request.trim().is_empty() {
        return true;
    }
    request.split(',').any(|r| {
        let r = r.trim();
        offer.split(',').any(|o| o.trim().eq_ignore_ascii_case(r))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_intersection_rules() {
        assert!(scopes_intersect("DEFAULT", "default"));
        assert!(scopes_intersect("a,b", "c,B"));
        assert!(!scopes_intersect("a", "b,c"));
        assert!(scopes_intersect("", "anything"));
        assert!(scopes_intersect(" a ", "a"));
    }

    #[test]
    fn registration_parses_type() {
        let r =
            Registration::new("service:clock:soap://10.0.0.2:4005", AttributeList::new()).unwrap();
        assert_eq!(r.service_type, ServiceType::with_concrete("clock", "soap"));
        assert_eq!(r.scopes, "DEFAULT");
    }

    #[test]
    fn registration_rejects_bad_url() {
        assert!(Registration::new("http://x", AttributeList::new()).is_err());
    }
}
