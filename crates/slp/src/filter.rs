//! LDAPv3 search filters (RFC 2254 subset) used as SLP predicates
//! (RFC 2608 §8.1).
//!
//! Supported: conjunction `(&...)`, disjunction `(|...)`, negation `(!...)`,
//! equality `(a=v)`, presence `(a=*)`, substring `(a=pre*mid*post)`, and
//! ordering `(a>=v)` / `(a<=v)` (numeric when both sides parse as integers,
//! otherwise case-insensitive string order).

use std::fmt;

use crate::attrs::AttributeList;
use crate::error::{SlpError, SlpResult};

/// A parsed predicate filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Filter {
    /// All sub-filters must match.
    And(Vec<Filter>),
    /// At least one sub-filter must match.
    Or(Vec<Filter>),
    /// The sub-filter must not match.
    Not(Box<Filter>),
    /// Attribute present (any value, or as a keyword).
    Present(String),
    /// Attribute equals value (case-insensitive).
    Equal(String, String),
    /// Attribute matches a `*`-wildcard pattern.
    Substring(String, Vec<String>),
    /// Attribute ≥ value.
    GreaterEq(String, String),
    /// Attribute ≤ value.
    LessEq(String, String),
}

impl Filter {
    /// Parses a filter string. The empty string parses as a match-all
    /// conjunction, per SLP's "empty predicate matches everything".
    ///
    /// # Errors
    ///
    /// [`SlpError::BadFilter`] on syntax errors.
    pub fn parse(s: &str) -> SlpResult<Filter> {
        let trimmed = s.trim();
        if trimmed.is_empty() {
            return Ok(Filter::And(Vec::new()));
        }
        let mut p = Parser { input: trimmed, pos: 0 };
        let f = p.parse_filter()?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(f)
    }

    /// Evaluates the filter against an attribute list.
    pub fn matches(&self, attrs: &AttributeList) -> bool {
        match self {
            Filter::And(fs) => fs.iter().all(|f| f.matches(attrs)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(attrs)),
            Filter::Not(f) => !f.matches(attrs),
            Filter::Present(tag) => attrs.contains_tag(tag),
            Filter::Equal(tag, value) => {
                attrs.get_all(tag).iter().any(|v| v.eq_ignore_ascii_case(value))
            }
            Filter::Substring(tag, parts) => {
                attrs.get_all(tag).iter().any(|v| wildcard_match(parts, v))
            }
            Filter::GreaterEq(tag, value) => {
                attrs.get_all(tag).iter().any(|v| compare(v, value) >= std::cmp::Ordering::Equal)
            }
            Filter::LessEq(tag, value) => {
                attrs.get_all(tag).iter().any(|v| compare(v, value) <= std::cmp::Ordering::Equal)
            }
        }
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::And(fs) => {
                write!(f, "(&")?;
                for sub in fs {
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
            Filter::Or(fs) => {
                write!(f, "(|")?;
                for sub in fs {
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
            Filter::Not(sub) => write!(f, "(!{sub})"),
            Filter::Present(tag) => write!(f, "({tag}=*)"),
            Filter::Equal(tag, v) => write!(f, "({tag}={v})"),
            Filter::Substring(tag, parts) => {
                write!(f, "({tag}={})", parts.join("*"))
            }
            Filter::GreaterEq(tag, v) => write!(f, "({tag}>={v})"),
            Filter::LessEq(tag, v) => write!(f, "({tag}<={v})"),
        }
    }
}

/// Compares numerically when both sides are integers, else
/// case-insensitively as strings.
fn compare(a: &str, b: &str) -> std::cmp::Ordering {
    match (a.trim().parse::<i64>(), b.trim().parse::<i64>()) {
        (Ok(x), Ok(y)) => x.cmp(&y),
        _ => a.to_ascii_lowercase().cmp(&b.to_ascii_lowercase()),
    }
}

/// Matches `v` against wildcard parts (the text between `*`s; empty first/
/// last parts anchor the pattern ends as wildcards).
fn wildcard_match(parts: &[String], v: &str) -> bool {
    let v = v.to_ascii_lowercase();
    let mut pos = 0usize;
    for (i, part) in parts.iter().enumerate() {
        let part = part.to_ascii_lowercase();
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            if !v.starts_with(&part) {
                return false;
            }
            pos = part.len();
        } else if i == parts.len() - 1 {
            return v.len() >= pos && v[pos..].ends_with(&part);
        } else {
            match v[pos..].find(&part) {
                Some(found) => pos += found + part.len(),
                None => return false,
            }
        }
    }
    true
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> SlpError {
        SlpError::BadFilter(format!("{what} at offset {} in {:?}", self.pos, self.input))
    }

    fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(char::is_whitespace) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> SlpResult<()> {
        if self.input[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.err(&format!("expected {c:?}")))
        }
    }

    fn parse_filter(&mut self) -> SlpResult<Filter> {
        self.skip_ws();
        self.expect('(')?;
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let filter = if rest.starts_with('&') {
            self.pos += 1;
            Filter::And(self.parse_list()?)
        } else if rest.starts_with('|') {
            self.pos += 1;
            Filter::Or(self.parse_list()?)
        } else if rest.starts_with('!') {
            self.pos += 1;
            Filter::Not(Box::new(self.parse_filter()?))
        } else {
            self.parse_comparison()?
        };
        self.skip_ws();
        self.expect(')')?;
        Ok(filter)
    }

    fn parse_list(&mut self) -> SlpResult<Vec<Filter>> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.input[self.pos..].starts_with('(') {
                out.push(self.parse_filter()?);
            } else {
                break;
            }
        }
        if out.is_empty() {
            return Err(self.err("empty filter list"));
        }
        Ok(out)
    }

    fn parse_comparison(&mut self) -> SlpResult<Filter> {
        let rest = &self.input[self.pos..];
        let end = rest.find(')').ok_or_else(|| self.err("unterminated comparison"))?;
        let body = &rest[..end];
        self.pos += end; // leave ')' for the caller

        let (tag, op, value) = if let Some(i) = body.find(">=") {
            (&body[..i], ">=", &body[i + 2..])
        } else if let Some(i) = body.find("<=") {
            (&body[..i], "<=", &body[i + 2..])
        } else if let Some(i) = body.find('=') {
            (&body[..i], "=", &body[i + 1..])
        } else {
            return Err(self.err("comparison has no operator"));
        };
        let tag = tag.trim();
        if tag.is_empty() {
            return Err(self.err("empty attribute tag"));
        }
        let value = value.trim();
        Ok(match op {
            ">=" => Filter::GreaterEq(tag.to_owned(), value.to_owned()),
            "<=" => Filter::LessEq(tag.to_owned(), value.to_owned()),
            _ => {
                if value == "*" {
                    Filter::Present(tag.to_owned())
                } else if value.contains('*') {
                    Filter::Substring(tag.to_owned(), value.split('*').map(str::to_owned).collect())
                } else {
                    Filter::Equal(tag.to_owned(), value.to_owned())
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(s: &str) -> AttributeList {
        AttributeList::parse(s).unwrap()
    }

    #[test]
    fn empty_filter_matches_everything() {
        let f = Filter::parse("").unwrap();
        assert!(f.matches(&attrs("")));
        assert!(f.matches(&attrs("(a=1)")));
    }

    #[test]
    fn equality_is_case_insensitive() {
        let f = Filter::parse("(location=Office)").unwrap();
        assert!(f.matches(&attrs("(LOCATION=office)")));
        assert!(!f.matches(&attrs("(location=lab)")));
    }

    #[test]
    fn presence_matches_values_and_keywords() {
        let f = Filter::parse("(color=*)").unwrap();
        assert!(f.matches(&attrs("(color=red)")));
        assert!(f.matches(&attrs("(color)")));
        assert!(!f.matches(&attrs("(mono)")));
    }

    #[test]
    fn boolean_combinators() {
        let f = Filter::parse("(&(a=1)(|(b=2)(b=3))(!(c=4)))").unwrap();
        assert!(f.matches(&attrs("(a=1),(b=3)")));
        assert!(!f.matches(&attrs("(a=1),(b=9)")));
        assert!(!f.matches(&attrs("(a=1),(b=2),(c=4)")));
    }

    #[test]
    fn numeric_ordering() {
        let f = Filter::parse("(&(ppm>=10)(ppm<=20))").unwrap();
        assert!(f.matches(&attrs("(ppm=12)")));
        assert!(!f.matches(&attrs("(ppm=9)")));
        assert!(!f.matches(&attrs("(ppm=21)")));
        // "9" < "12" numerically even though "9" > "12" lexically.
        assert!(Filter::parse("(ppm>=9)").unwrap().matches(&attrs("(ppm=12)")));
    }

    #[test]
    fn string_ordering_when_not_numeric() {
        let f = Filter::parse("(name>=m)").unwrap();
        assert!(f.matches(&attrs("(name=printer)")));
        assert!(!f.matches(&attrs("(name=clock)")));
    }

    #[test]
    fn substring_patterns() {
        let f = Filter::parse("(model=Cyber*Clock*)").unwrap();
        assert!(f.matches(&attrs("(model=CyberGarage Clock Device)")));
        assert!(!f.matches(&attrs("(model=Garage Clock)")));
        let suffix = Filter::parse("(file=*.xml)").unwrap();
        assert!(suffix.matches(&attrs("(file=description.xml)")));
        assert!(!suffix.matches(&attrs("(file=description.txt)")));
    }

    #[test]
    fn multivalued_attributes_match_any() {
        let f = Filter::parse("(scope=b)").unwrap();
        assert!(f.matches(&attrs("(scope=a,b,c)")));
    }

    #[test]
    fn display_roundtrips() {
        for s in [
            "(a=1)",
            "(a=*)",
            "(a=x*y)",
            "(a>=5)",
            "(a<=5)",
            "(!(a=1))",
            "(&(a=1)(b=2))",
            "(|(a=1)(b=2))",
        ] {
            let f = Filter::parse(s).unwrap();
            assert_eq!(Filter::parse(&f.to_string()).unwrap(), f, "{s}");
        }
    }

    #[test]
    fn rejects_malformed() {
        for s in ["(", "(a=1", "a=1", "(&)", "(a)", "(=x)", "(a=1))"] {
            assert!(Filter::parse(s).is_err(), "{s} should fail");
        }
    }
}
