//! Attribute lists (RFC 2608 §5).
//!
//! The textual form is `(tag=value),(tag=v1,v2),keyword`. The paper's
//! Fig. 4 SrvRply carries exactly such a list
//! (`;major:"1";minor:"0";friendlyName:"..."` in its display rendering) —
//! INDISS translates UPnP description fields into "traditional SLP
//! attributes", which is what this module models.

use std::fmt;

use crate::error::{SlpError, SlpResult};

/// One attribute: a keyword (no values) or a tag with one or more values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute tag (case-preserved; comparisons fold case).
    pub tag: String,
    /// Values; empty for keyword attributes.
    pub values: Vec<String>,
}

impl Attribute {
    /// Creates a keyword attribute.
    pub fn keyword(tag: &str) -> Self {
        Attribute { tag: tag.to_owned(), values: Vec::new() }
    }

    /// Creates a single-valued attribute.
    pub fn single(tag: &str, value: &str) -> Self {
        Attribute { tag: tag.to_owned(), values: vec![value.to_owned()] }
    }

    /// Creates a multi-valued attribute.
    pub fn multi(tag: &str, values: &[&str]) -> Self {
        Attribute { tag: tag.to_owned(), values: values.iter().map(|v| (*v).to_owned()).collect() }
    }
}

/// An ordered list of attributes with case-insensitive tag lookup.
///
/// # Examples
///
/// ```
/// use indiss_slp::AttributeList;
///
/// let attrs = AttributeList::parse("(location=office),(color),(ppm=12,24)")?;
/// assert_eq!(attrs.get("LOCATION"), Some("office"));
/// assert!(attrs.has_keyword("color"));
/// assert_eq!(attrs.get_all("ppm"), vec!["12", "24"]);
/// # Ok::<(), indiss_slp::SlpError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AttributeList {
    attrs: Vec<Attribute>,
}

impl AttributeList {
    /// Creates an empty list.
    pub fn new() -> Self {
        AttributeList::default()
    }

    /// Parses the RFC 2608 textual form. An empty string is an empty list.
    ///
    /// # Errors
    ///
    /// [`SlpError::BadAttributeList`] on unbalanced parentheses or empty
    /// tags.
    pub fn parse(s: &str) -> SlpResult<AttributeList> {
        let mut attrs = Vec::new();
        let mut rest = s.trim();
        while !rest.is_empty() {
            if let Some(stripped) = rest.strip_prefix('(') {
                let close =
                    find_close(stripped).ok_or_else(|| SlpError::BadAttributeList(s.to_owned()))?;
                let inner = &stripped[..close];
                let (tag, values) = match inner.find('=') {
                    Some(eq) => {
                        let tag = inner[..eq].trim();
                        let values: Vec<String> =
                            inner[eq + 1..].split(',').map(|v| unescape_value(v.trim())).collect();
                        (tag, values)
                    }
                    None => (inner.trim(), Vec::new()),
                };
                if tag.is_empty() {
                    return Err(SlpError::BadAttributeList(s.to_owned()));
                }
                attrs.push(Attribute { tag: tag.to_owned(), values });
                rest = stripped[close + 1..].trim_start();
            } else {
                // Keyword attribute: up to the next comma.
                let end = rest.find(',').unwrap_or(rest.len());
                let tag = rest[..end].trim();
                if tag.is_empty() {
                    return Err(SlpError::BadAttributeList(s.to_owned()));
                }
                attrs.push(Attribute::keyword(tag));
                rest = rest[end..].trim_start();
            }
            rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
        }
        Ok(AttributeList { attrs })
    }

    /// Appends an attribute.
    pub fn push(&mut self, attr: Attribute) {
        self.attrs.push(attr);
    }

    /// Builder-style append of a single-valued attribute.
    pub fn with(mut self, tag: &str, value: &str) -> Self {
        self.push(Attribute::single(tag, value));
        self
    }

    /// All attributes in order.
    pub fn iter(&self) -> impl Iterator<Item = &Attribute> {
        self.attrs.iter()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// First value of the tag (case-insensitive), if any.
    pub fn get(&self, tag: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|a| a.tag.eq_ignore_ascii_case(tag))
            .and_then(|a| a.values.first())
            .map(String::as_str)
    }

    /// All values of the tag (case-insensitive).
    pub fn get_all(&self, tag: &str) -> Vec<&str> {
        self.attrs
            .iter()
            .filter(|a| a.tag.eq_ignore_ascii_case(tag))
            .flat_map(|a| a.values.iter().map(String::as_str))
            .collect()
    }

    /// True when the tag exists as a keyword (present, no values).
    pub fn has_keyword(&self, tag: &str) -> bool {
        self.attrs.iter().any(|a| a.tag.eq_ignore_ascii_case(tag) && a.values.is_empty())
    }

    /// True when the tag is present at all.
    pub fn contains_tag(&self, tag: &str) -> bool {
        self.attrs.iter().any(|a| a.tag.eq_ignore_ascii_case(tag))
    }
}

impl fmt::Display for AttributeList {
    /// Renders the canonical RFC 2608 textual form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for attr in &self.attrs {
            if !first {
                f.write_str(",")?;
            }
            first = false;
            if attr.values.is_empty() {
                f.write_str(&attr.tag)?;
            } else {
                write!(f, "({}=", attr.tag)?;
                let mut vfirst = true;
                for v in &attr.values {
                    if !vfirst {
                        f.write_str(",")?;
                    }
                    vfirst = false;
                    f.write_str(&escape_value(v))?;
                }
                f.write_str(")")?;
            }
        }
        Ok(())
    }
}

impl FromIterator<Attribute> for AttributeList {
    fn from_iter<I: IntoIterator<Item = Attribute>>(iter: I) -> Self {
        AttributeList { attrs: iter.into_iter().collect() }
    }
}

/// Finds the matching close paren index within `s` (which follows a `(`).
/// Values may contain escaped parens `\28` / `\29`, which we keep opaque.
fn find_close(s: &str) -> Option<usize> {
    s.find(')')
}

/// Escapes RFC 2608 reserved characters in a value using `\xx` hex escapes.
fn escape_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '(' => out.push_str("\\28"),
            ')' => out.push_str("\\29"),
            ',' => out.push_str("\\2c"),
            '\\' => out.push_str("\\5c"),
            other => out.push(other),
        }
    }
    out
}

/// Reverses [`escape_value`]. Invalid escapes are kept verbatim.
fn unescape_value(v: &str) -> String {
    let bytes = v.as_bytes();
    let mut out = String::with_capacity(v.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\' && i + 2 < bytes.len() + 1 && i + 3 <= bytes.len() {
            if let Ok(code) = u8::from_str_radix(&v[i + 1..i + 3], 16) {
                out.push(code as char);
                i += 3;
                continue;
            }
        }
        let c = v[i..].chars().next().expect("in bounds");
        out.push(c);
        i += c.len_utf8();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_mixed_list() {
        let l = AttributeList::parse("(a=1),keyword,(b=x,y)").unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l.get("a"), Some("1"));
        assert!(l.has_keyword("keyword"));
        assert_eq!(l.get_all("b"), vec!["x", "y"]);
    }

    #[test]
    fn empty_list() {
        let l = AttributeList::parse("").unwrap();
        assert!(l.is_empty());
        assert_eq!(l.to_string(), "");
    }

    #[test]
    fn display_roundtrips() {
        for s in ["(a=1)", "(a=1),(b=2,3)", "kw", "(a=1),kw,(c=x)"] {
            let l = AttributeList::parse(s).unwrap();
            assert_eq!(AttributeList::parse(&l.to_string()).unwrap(), l, "{s}");
        }
    }

    #[test]
    fn escaped_values_roundtrip() {
        let mut l = AttributeList::new();
        l.push(Attribute::single("desc", "a,b(c)\\d"));
        let text = l.to_string();
        let back = AttributeList::parse(&text).unwrap();
        assert_eq!(back.get("desc"), Some("a,b(c)\\d"));
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let l = AttributeList::parse("(FriendlyName=Clock)").unwrap();
        assert_eq!(l.get("friendlyname"), Some("Clock"));
        assert!(l.contains_tag("FRIENDLYNAME"));
    }

    #[test]
    fn rejects_unbalanced() {
        assert!(AttributeList::parse("(a=1").is_err());
        assert!(AttributeList::parse("(=1)").is_err());
    }

    #[test]
    fn keyword_inside_parens() {
        let l = AttributeList::parse("(color)").unwrap();
        assert!(l.has_keyword("color"));
    }

    #[test]
    fn values_are_trimmed() {
        let l = AttributeList::parse("( a = 1 , 2 )").unwrap();
        assert_eq!(l.get_all("a"), vec!["1", "2"]);
    }

    #[test]
    fn from_iterator_collects() {
        let l: AttributeList =
            vec![Attribute::keyword("x"), Attribute::single("y", "1")].into_iter().collect();
        assert_eq!(l.len(), 2);
    }
}
