//! # indiss-slp — Service Location Protocol v2
//!
//! A from-scratch SLPv2 (RFC 2608) implementation: the complete binary
//! wire codec (all eleven message types), service URLs (RFC 2609),
//! attribute lists, LDAPv3-subset predicate filters, and the three agent
//! roles (User, Service, Directory) running on the `indiss-net` simulator.
//!
//! This crate plays the role OpenSLP plays in the INDISS paper: the
//! *native* SLP stack that applications use directly, and that the INDISS
//! SLP unit parses and composes messages for.
//!
//! ## Example: native SLP discovery (the paper's Fig. 7 baseline)
//!
//! ```
//! use indiss_net::World;
//! use indiss_slp::{AttributeList, Registration, ServiceAgent, SlpConfig, UserAgent};
//!
//! let world = World::new(42);
//! let printer = world.add_node("printer");
//! let laptop = world.add_node("laptop");
//!
//! let sa = ServiceAgent::start(&printer, SlpConfig::default())?;
//! sa.register(Registration::new(
//!     "service:printer:lpr://10.0.0.1:515",
//!     AttributeList::parse("(ppm=12),(color)").unwrap(),
//! )?);
//!
//! let ua = UserAgent::start(&laptop, SlpConfig::default())?;
//! let (_first, done) = ua.find_services(&world, "service:printer", "(ppm>=10)");
//! world.run_until_idle();
//! let outcome = done.take().expect("discovery finished");
//! assert_eq!(outcome.urls.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod attrs;
mod consts;
mod error;
mod filter;
mod messages;
mod url;
mod wire;

pub use agent::{
    DirectoryAgent, DiscoveryOutcome, Registration, ServiceAgent, SlpConfig, UserAgent,
};
pub use attrs::{Attribute, AttributeList};
pub use consts::{
    ErrorCode, FunctionId, DEFAULT_LANG, DEFAULT_LIFETIME, DEFAULT_SCOPE, FLAG_FRESH, FLAG_MCAST,
    FLAG_OVERFLOW, SLP_MULTICAST_GROUP, SLP_PORT, SLP_VERSION,
};
pub use error::{SlpError, SlpResult};
pub use filter::Filter;
pub use messages::{
    AttrRply, AttrRqst, Body, DaAdvert, Message, SaAdvert, SrvAck, SrvDeReg, SrvReg, SrvRply,
    SrvRqst, SrvTypeRply, SrvTypeRqst,
};
pub use url::{ServiceType, ServiceUrl, UrlEntry};
pub use wire::{ByteReader, ByteWriter, Header};
