//! Protocol constants from RFC 2608 and IANA assignments.
//!
//! The INDISS paper's monitor component keys SDP detection off these
//! "permanent identification tags": the (multicast group, port) pair
//! assigned by IANA to each discovery protocol (paper §2.1).

use std::net::Ipv4Addr;

/// IANA-assigned SLP port (UDP and TCP).
pub const SLP_PORT: u16 = 427;

/// Administratively scoped SLP multicast group `SVRLOC`.
pub const SLP_MULTICAST_GROUP: Ipv4Addr = Ipv4Addr::new(239, 255, 255, 253);

/// Protocol version implemented (SLPv2).
pub const SLP_VERSION: u8 = 2;

/// Default scope per RFC 2608 §6.4.1.
pub const DEFAULT_SCOPE: &str = "DEFAULT";

/// Default language tag.
pub const DEFAULT_LANG: &str = "en";

/// Default URL lifetime, seconds (RFC 2608 caps at 0xFFFF).
pub const DEFAULT_LIFETIME: u16 = 10800;

/// SLP message function identifiers (RFC 2608 §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FunctionId {
    /// Service Request.
    SrvRqst = 1,
    /// Service Reply.
    SrvRply = 2,
    /// Service Registration.
    SrvReg = 3,
    /// Service Deregistration.
    SrvDeReg = 4,
    /// Service Acknowledgement.
    SrvAck = 5,
    /// Attribute Request.
    AttrRqst = 6,
    /// Attribute Reply.
    AttrRply = 7,
    /// Directory Agent Advertisement.
    DaAdvert = 8,
    /// Service Type Request.
    SrvTypeRqst = 9,
    /// Service Type Reply.
    SrvTypeRply = 10,
    /// Service Agent Advertisement.
    SaAdvert = 11,
}

impl FunctionId {
    /// Decodes a function id byte.
    pub fn from_u8(v: u8) -> Option<FunctionId> {
        Some(match v {
            1 => FunctionId::SrvRqst,
            2 => FunctionId::SrvRply,
            3 => FunctionId::SrvReg,
            4 => FunctionId::SrvDeReg,
            5 => FunctionId::SrvAck,
            6 => FunctionId::AttrRqst,
            7 => FunctionId::AttrRply,
            8 => FunctionId::DaAdvert,
            9 => FunctionId::SrvTypeRqst,
            10 => FunctionId::SrvTypeRply,
            11 => FunctionId::SaAdvert,
            _ => return None,
        })
    }
}

/// SLP error codes (RFC 2608 §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u16)]
pub enum ErrorCode {
    /// Success.
    #[default]
    Ok = 0,
    /// No registration in the requested language.
    LanguageNotSupported = 1,
    /// The message was malformed.
    ParseError = 2,
    /// Registration was rejected.
    InvalidRegistration = 3,
    /// The DA/SA does not serve the requested scope.
    ScopeNotSupported = 4,
    /// Unknown authentication block.
    AuthenticationUnknown = 5,
    /// Authentication was expected but absent.
    AuthenticationAbsent = 6,
    /// Authentication failed.
    AuthenticationFailed = 7,
    /// Unsupported protocol version.
    VersionNotSupported = 9,
    /// DA internal error.
    InternalError = 10,
    /// DA is busy; retry later.
    DaBusyNow = 11,
    /// Unsupported option.
    OptionNotUnderstood = 12,
    /// Update not allowed.
    InvalidUpdate = 13,
    /// Feature not implemented.
    NotImplemented = 14,
    /// Registration arrived at a non-DA.
    RefreshRejected = 15,
}

impl ErrorCode {
    /// Decodes an error code; unknown values map to `InternalError`.
    pub fn from_u16(v: u16) -> ErrorCode {
        match v {
            0 => ErrorCode::Ok,
            1 => ErrorCode::LanguageNotSupported,
            2 => ErrorCode::ParseError,
            3 => ErrorCode::InvalidRegistration,
            4 => ErrorCode::ScopeNotSupported,
            5 => ErrorCode::AuthenticationUnknown,
            6 => ErrorCode::AuthenticationAbsent,
            7 => ErrorCode::AuthenticationFailed,
            9 => ErrorCode::VersionNotSupported,
            11 => ErrorCode::DaBusyNow,
            12 => ErrorCode::OptionNotUnderstood,
            13 => ErrorCode::InvalidUpdate,
            14 => ErrorCode::NotImplemented,
            15 => ErrorCode::RefreshRejected,
            _ => ErrorCode::InternalError,
        }
    }
}

/// Header flag: overflow (message truncated to fit a datagram).
pub const FLAG_OVERFLOW: u16 = 0x8000;
/// Header flag: fresh registration.
pub const FLAG_FRESH: u16 = 0x4000;
/// Header flag: request was multicast.
pub const FLAG_MCAST: u16 = 0x2000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_ids_roundtrip() {
        for v in 1..=11u8 {
            let f = FunctionId::from_u8(v).unwrap();
            assert_eq!(f as u8, v);
        }
        assert_eq!(FunctionId::from_u8(0), None);
        assert_eq!(FunctionId::from_u8(12), None);
    }

    #[test]
    fn error_codes_roundtrip() {
        for v in [0u16, 1, 2, 3, 4, 5, 6, 7, 9, 11, 12, 13, 14, 15] {
            assert_eq!(ErrorCode::from_u16(v) as u16, v);
        }
        assert_eq!(ErrorCode::from_u16(999), ErrorCode::InternalError);
    }

    #[test]
    fn group_is_multicast() {
        assert!(SLP_MULTICAST_GROUP.is_multicast());
    }
}
