//! SLP codec and agent errors.

use std::fmt;

use crate::consts::ErrorCode;

/// Errors from encoding, decoding, or protocol processing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SlpError {
    /// Input ended before the structure was complete.
    Truncated {
        /// What was being decoded.
        context: &'static str,
    },
    /// The version byte was not 2.
    BadVersion(u8),
    /// Unknown function id.
    UnknownFunction(u8),
    /// The header's length field disagrees with the buffer.
    LengthMismatch {
        /// Length declared in the header.
        declared: usize,
        /// Actual buffer length.
        actual: usize,
    },
    /// A length-prefixed string is not valid UTF-8.
    BadString,
    /// A service URL could not be parsed.
    BadServiceUrl(String),
    /// An attribute list could not be parsed.
    BadAttributeList(String),
    /// A predicate filter could not be parsed.
    BadFilter(String),
    /// The peer answered with a non-zero SLP error code.
    Remote(ErrorCode),
    /// A value exceeded its wire-format field width.
    FieldOverflow {
        /// What was being encoded.
        context: &'static str,
    },
}

impl fmt::Display for SlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlpError::Truncated { context } => write!(f, "truncated message in {context}"),
            SlpError::BadVersion(v) => write!(f, "unsupported slp version {v}"),
            SlpError::UnknownFunction(v) => write!(f, "unknown function id {v}"),
            SlpError::LengthMismatch { declared, actual } => {
                write!(f, "header declares {declared} bytes but buffer has {actual}")
            }
            SlpError::BadString => write!(f, "length-prefixed string is not valid utf-8"),
            SlpError::BadServiceUrl(u) => write!(f, "invalid service url {u:?}"),
            SlpError::BadAttributeList(a) => write!(f, "invalid attribute list {a:?}"),
            SlpError::BadFilter(e) => write!(f, "invalid predicate filter: {e}"),
            SlpError::Remote(code) => write!(f, "peer returned error code {code:?}"),
            SlpError::FieldOverflow { context } => {
                write!(f, "value too large for wire field in {context}")
            }
        }
    }
}

impl std::error::Error for SlpError {}

/// Convenience alias for SLP results.
pub type SlpResult<T> = Result<T, SlpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errors = [
            SlpError::Truncated { context: "header" },
            SlpError::BadVersion(1),
            SlpError::UnknownFunction(99),
            SlpError::LengthMismatch { declared: 10, actual: 5 },
            SlpError::BadString,
            SlpError::BadServiceUrl("x".into()),
            SlpError::BadAttributeList("y".into()),
            SlpError::BadFilter("z".into()),
            SlpError::Remote(ErrorCode::ScopeNotSupported),
            SlpError::FieldOverflow { context: "url" },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
