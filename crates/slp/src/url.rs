//! Service URLs and service types (RFC 2608 §4, RFC 2609).
//!
//! A service URL names a service instance:
//! `service:printer:lpr://host:515/queue` — where `printer` is the abstract
//! type, `lpr` the concrete protocol, and the remainder the address spec.
//! The paper's Fig. 4 reply carries
//! `service:clock:soap://128.93.8.112:4005/service/timer/control`.

use std::fmt;

use crate::error::{SlpError, SlpResult};

/// A parsed SLP service type, e.g. `service:printer:lpr`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ServiceType {
    /// The abstract (or only) type name, lowercase by convention.
    pub abstract_type: String,
    /// Concrete protocol under an abstract type, if any.
    pub concrete: Option<String>,
}

impl ServiceType {
    /// Creates a simple (non-abstract) service type.
    pub fn simple(name: &str) -> Self {
        ServiceType { abstract_type: name.to_ascii_lowercase(), concrete: None }
    }

    /// Creates an abstract type with a concrete protocol.
    pub fn with_concrete(abstract_type: &str, concrete: &str) -> Self {
        ServiceType {
            abstract_type: abstract_type.to_ascii_lowercase(),
            concrete: Some(concrete.to_ascii_lowercase()),
        }
    }

    /// Parses the part after `service:`, e.g. `printer:lpr` or `clock`.
    pub fn parse(s: &str) -> SlpResult<ServiceType> {
        if s.is_empty() {
            return Err(SlpError::BadServiceUrl("empty service type".into()));
        }
        let mut parts = s.splitn(2, ':');
        let abstract_type = parts.next().expect("splitn yields at least one").to_owned();
        if abstract_type.is_empty() {
            return Err(SlpError::BadServiceUrl(format!("bad service type {s:?}")));
        }
        let concrete = parts.next().filter(|c| !c.is_empty()).map(str::to_owned);
        Ok(ServiceType {
            abstract_type: abstract_type.to_ascii_lowercase(),
            concrete: concrete.map(|c| c.to_ascii_lowercase()),
        })
    }

    /// True when a request for `self` matches an offered type `other`:
    /// equal abstract types, and if the request names a concrete type it
    /// must match too (a request for the abstract type matches all
    /// concrete instances, RFC 2608 §8.1).
    pub fn matches(&self, other: &ServiceType) -> bool {
        if self.abstract_type != other.abstract_type {
            return false;
        }
        match &self.concrete {
            None => true,
            Some(c) => other.concrete.as_deref() == Some(c.as_str()),
        }
    }
}

impl fmt::Display for ServiceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "service:{}", self.abstract_type)?;
        if let Some(c) = &self.concrete {
            write!(f, ":{c}")?;
        }
        Ok(())
    }
}

/// A parsed service URL.
///
/// # Examples
///
/// ```
/// use indiss_slp::ServiceUrl;
///
/// let url = ServiceUrl::parse("service:clock:soap://10.0.0.2:4005/service/timer/control")?;
/// assert_eq!(url.service_type.abstract_type, "clock");
/// assert_eq!(url.service_type.concrete.as_deref(), Some("soap"));
/// assert_eq!(url.host, "10.0.0.2");
/// assert_eq!(url.port, Some(4005));
/// assert_eq!(url.path, "/service/timer/control");
/// # Ok::<(), indiss_slp::SlpError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ServiceUrl {
    /// The service type.
    pub service_type: ServiceType,
    /// Host name or address.
    pub host: String,
    /// Optional port.
    pub port: Option<u16>,
    /// Path component, beginning with `/` when present, else empty.
    pub path: String,
}

impl ServiceUrl {
    /// Builds a service URL from parts.
    pub fn new(service_type: ServiceType, host: &str, port: Option<u16>, path: &str) -> Self {
        ServiceUrl { service_type, host: host.to_owned(), port, path: path.to_owned() }
    }

    /// Parses a `service:` URL.
    ///
    /// # Errors
    ///
    /// [`SlpError::BadServiceUrl`] when the scheme is missing, the
    /// authority separator is absent, or the port is not numeric.
    pub fn parse(s: &str) -> SlpResult<ServiceUrl> {
        let rest =
            s.strip_prefix("service:").ok_or_else(|| SlpError::BadServiceUrl(s.to_owned()))?;
        let sep = rest.find("://").ok_or_else(|| SlpError::BadServiceUrl(s.to_owned()))?;
        let service_type = ServiceType::parse(&rest[..sep])?;
        let after = &rest[sep + 3..];
        let (authority, path) = match after.find('/') {
            Some(i) => (&after[..i], &after[i..]),
            None => (after, ""),
        };
        if authority.is_empty() {
            return Err(SlpError::BadServiceUrl(s.to_owned()));
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p.parse().map_err(|_| SlpError::BadServiceUrl(s.to_owned()))?;
                (h.to_owned(), Some(port))
            }
            None => (authority.to_owned(), None),
        };
        if host.is_empty() {
            return Err(SlpError::BadServiceUrl(s.to_owned()));
        }
        Ok(ServiceUrl { service_type, host, port, path: path.to_owned() })
    }
}

impl fmt::Display for ServiceUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.service_type, self.host)?;
        if let Some(p) = self.port {
            write!(f, ":{p}")?;
        }
        f.write_str(&self.path)
    }
}

/// A URL entry as carried in replies and registrations (RFC 2608 §4.3):
/// a URL string plus its lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlEntry {
    /// Remaining lifetime in seconds.
    pub lifetime: u16,
    /// The service URL text (kept as a string on the wire; parse with
    /// [`ServiceUrl::parse`] when structure is needed).
    pub url: String,
}

impl UrlEntry {
    /// Creates an entry.
    pub fn new(url: impl Into<String>, lifetime: u16) -> Self {
        UrlEntry { lifetime, url: url.into() }
    }

    /// Encodes per RFC 2608 §4.3 (reserved byte, lifetime, URL, 0 auth blocks).
    pub fn encode(&self, w: &mut crate::wire::ByteWriter) -> SlpResult<()> {
        w.u8(0); // reserved
        w.u16(self.lifetime);
        w.string(&self.url)?;
        w.u8(0); // number of auth blocks
        Ok(())
    }

    /// Decodes a URL entry.
    ///
    /// # Errors
    ///
    /// [`SlpError::Truncated`] or [`SlpError::BadString`] on malformed
    /// input. Auth blocks are not supported and must be 0.
    pub fn decode(r: &mut crate::wire::ByteReader<'_>) -> SlpResult<UrlEntry> {
        let _reserved = r.u8()?;
        let lifetime = r.u16()?;
        let url = r.string()?;
        let auth_blocks = r.u8()?;
        if auth_blocks != 0 {
            return Err(SlpError::BadServiceUrl("auth blocks unsupported".into()));
        }
        Ok(UrlEntry { lifetime, url })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{ByteReader, ByteWriter};

    #[test]
    fn parse_simple_url() {
        let u = ServiceUrl::parse("service:printer://10.0.0.9:515").unwrap();
        assert_eq!(u.service_type, ServiceType::simple("printer"));
        assert_eq!(u.host, "10.0.0.9");
        assert_eq!(u.port, Some(515));
        assert_eq!(u.path, "");
    }

    #[test]
    fn parse_paper_clock_url() {
        let s = "service:clock:soap://128.93.8.112:4005/service/timer/control";
        let u = ServiceUrl::parse(s).unwrap();
        assert_eq!(u.to_string(), s);
    }

    #[test]
    fn parse_without_port() {
        let u = ServiceUrl::parse("service:tftp://files.example/path").unwrap();
        assert_eq!(u.port, None);
        assert_eq!(u.path, "/path");
    }

    #[test]
    fn display_roundtrips() {
        for s in ["service:printer://h", "service:printer:lpr://h:1/q", "service:a://h:65535"] {
            assert_eq!(ServiceUrl::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn rejects_malformed() {
        for s in [
            "http://x",
            "service:",
            "service:x",
            "service:x//missing-colon",
            "service:x://",
            "service:x://:5",
            "service:x://h:notaport",
        ] {
            assert!(ServiceUrl::parse(s).is_err(), "{s} should fail");
        }
    }

    #[test]
    fn type_matching_abstract_and_concrete() {
        let request_abstract = ServiceType::simple("printer");
        let request_concrete = ServiceType::with_concrete("printer", "lpr");
        let offer_lpr = ServiceType::with_concrete("printer", "lpr");
        let offer_ipp = ServiceType::with_concrete("printer", "ipp");
        assert!(request_abstract.matches(&offer_lpr));
        assert!(request_abstract.matches(&offer_ipp));
        assert!(request_concrete.matches(&offer_lpr));
        assert!(!request_concrete.matches(&offer_ipp));
        assert!(!ServiceType::simple("clock").matches(&offer_lpr));
    }

    #[test]
    fn type_parse_is_case_insensitive() {
        assert_eq!(
            ServiceType::parse("Printer:LPR").unwrap(),
            ServiceType::with_concrete("printer", "lpr")
        );
    }

    #[test]
    fn url_entry_roundtrip() {
        let e = UrlEntry::new("service:clock://10.0.0.2", 1800);
        let mut w = ByteWriter::new();
        e.encode(&mut w).unwrap();
        let buf = w.finish();
        let mut r = ByteReader::new(&buf, "test");
        assert_eq!(UrlEntry::decode(&mut r).unwrap(), e);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn url_entry_rejects_auth_blocks() {
        let mut w = ByteWriter::new();
        w.u8(0);
        w.u16(60);
        w.string("service:x://h").unwrap();
        w.u8(1); // one auth block — unsupported
        let buf = w.finish();
        let mut r = ByteReader::new(&buf, "test");
        assert!(UrlEntry::decode(&mut r).is_err());
    }
}
