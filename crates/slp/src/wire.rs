//! Binary reader/writer primitives and the SLPv2 common header.
//!
//! All multi-byte integers are big-endian (network order). Strings are
//! UTF-8 with a `u16` length prefix, per RFC 2608 §5.

use crate::consts::{FunctionId, SLP_VERSION};
use crate::error::{SlpError, SlpResult};

/// Cursor-based reader over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Context string included in truncation errors.
    context: &'static str,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader; `context` names the structure for error messages.
    pub fn new(buf: &'a [u8], context: &'static str) -> Self {
        ByteReader { buf, pos: 0, context }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> SlpResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(SlpError::Truncated { context: self.context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> SlpResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self) -> SlpResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian 24-bit unsigned value.
    pub fn u24(&mut self) -> SlpResult<u32> {
        let b = self.take(3)?;
        Ok(u32::from_be_bytes([0, b[0], b[1], b[2]]))
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> SlpResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u16`-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> SlpResult<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SlpError::BadString)
    }
}

/// Append-only writer producing wire bytes.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Writes a big-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes a big-endian 24-bit value (the high byte of `v` must be 0).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `v < 2^24`; release builds truncate.
    pub fn u24(&mut self, v: u32) -> &mut Self {
        debug_assert!(v < 1 << 24, "u24 overflow");
        let b = v.to_be_bytes();
        self.buf.extend_from_slice(&b[1..4]);
        self
    }

    /// Writes a big-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes a `u16`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SlpError::FieldOverflow`] if the string exceeds 65535 bytes.
    pub fn string(&mut self, s: &str) -> SlpResult<&mut Self> {
        let len =
            u16::try_from(s.len()).map_err(|_| SlpError::FieldOverflow { context: "string" })?;
        self.u16(len);
        self.buf.extend_from_slice(s.as_bytes());
        Ok(self)
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Overwrites bytes at an absolute position (used to back-patch the
    /// header's length field after the body is known).
    pub fn patch(&mut self, pos: usize, bytes: &[u8]) {
        self.buf[pos..pos + bytes.len()].copy_from_slice(bytes);
    }
}

/// The SLPv2 common header (RFC 2608 §8).
///
/// ```text
/// | Version | Function-ID |          Length           |
/// | Flags (O,F,R + reserved)  | Next Extension Offset |
/// |  XID  | Lang Tag Length | Lang Tag ...            |
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Message function.
    pub function: FunctionId,
    /// Flags word (`FLAG_OVERFLOW` / `FLAG_FRESH` / `FLAG_MCAST`).
    pub flags: u16,
    /// Transaction id correlating requests and replies.
    pub xid: u16,
    /// RFC 1766 language tag.
    pub lang: String,
}

impl Header {
    /// Fixed part length: everything before the language tag bytes.
    pub const FIXED_LEN: usize = 14;

    /// Creates a header with empty flags.
    pub fn new(function: FunctionId, xid: u16, lang: &str) -> Self {
        Header { function, flags: 0, xid, lang: lang.to_owned() }
    }

    /// Total encoded header length, including the language tag.
    pub fn encoded_len(&self) -> usize {
        Self::FIXED_LEN + self.lang.len()
    }

    /// Encodes the header followed by `body`, patching the total length.
    ///
    /// # Errors
    ///
    /// [`SlpError::FieldOverflow`] if the language tag exceeds a `u16` or
    /// the total message exceeds 2^24 bytes.
    pub fn encode_with_body(&self, body: &[u8]) -> SlpResult<Vec<u8>> {
        let total = self.encoded_len() + body.len();
        if total >= 1 << 24 {
            return Err(SlpError::FieldOverflow { context: "message length" });
        }
        let mut w = ByteWriter::new();
        w.u8(SLP_VERSION);
        w.u8(self.function as u8);
        w.u24(total as u32);
        w.u16(self.flags);
        w.u24(0); // next extension offset: unused
        w.u16(self.xid);
        w.string(&self.lang)?;
        let mut buf = w.finish();
        buf.extend_from_slice(body);
        Ok(buf)
    }

    /// Decodes a header; returns it plus the body slice.
    ///
    /// # Errors
    ///
    /// [`SlpError::BadVersion`], [`SlpError::UnknownFunction`],
    /// [`SlpError::LengthMismatch`] or [`SlpError::Truncated`].
    pub fn decode(buf: &[u8]) -> SlpResult<(Header, &[u8])> {
        let mut r = ByteReader::new(buf, "header");
        let version = r.u8()?;
        if version != SLP_VERSION {
            return Err(SlpError::BadVersion(version));
        }
        let function_byte = r.u8()?;
        let function =
            FunctionId::from_u8(function_byte).ok_or(SlpError::UnknownFunction(function_byte))?;
        let length = r.u24()? as usize;
        if length != buf.len() {
            return Err(SlpError::LengthMismatch { declared: length, actual: buf.len() });
        }
        let flags = r.u16()?;
        let _next_ext = r.u24()?;
        let xid = r.u16()?;
        let lang = r.string()?;
        let body_start = r.position();
        Ok((Header { function, flags, xid, lang }, &buf[body_start..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::{FLAG_FRESH, FLAG_MCAST};

    #[test]
    fn reader_primitives() {
        let data = [0x01, 0x00, 0x02, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, 0x04];
        let mut r = ByteReader::new(&data, "test");
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.u16().unwrap(), 2);
        assert_eq!(r.u24().unwrap(), 3);
        assert_eq!(r.u32().unwrap(), 4);
        assert_eq!(r.remaining(), 0);
        assert!(r.u8().is_err());
    }

    #[test]
    fn writer_reader_string_roundtrip() {
        let mut w = ByteWriter::new();
        w.string("service:printer").unwrap();
        w.string("").unwrap();
        let buf = w.finish();
        let mut r = ByteReader::new(&buf, "test");
        assert_eq!(r.string().unwrap(), "service:printer");
        assert_eq!(r.string().unwrap(), "");
    }

    #[test]
    fn header_roundtrip() {
        let h = Header {
            function: FunctionId::SrvRqst,
            flags: FLAG_MCAST | FLAG_FRESH,
            xid: 0xBEEF,
            lang: "en".into(),
        };
        let wire = h.encode_with_body(b"BODY").unwrap();
        let (back, body) = Header::decode(&wire).unwrap();
        assert_eq!(back, h);
        assert_eq!(body, b"BODY");
    }

    #[test]
    fn header_rejects_wrong_version() {
        let h = Header::new(FunctionId::SrvAck, 1, "en");
        let mut wire = h.encode_with_body(&[]).unwrap();
        wire[0] = 1;
        assert_eq!(Header::decode(&wire), Err(SlpError::BadVersion(1)));
    }

    #[test]
    fn header_rejects_bad_length() {
        let h = Header::new(FunctionId::SrvAck, 1, "en");
        let mut wire = h.encode_with_body(&[]).unwrap();
        wire.push(0); // extra byte not covered by the declared length
        assert!(matches!(Header::decode(&wire), Err(SlpError::LengthMismatch { .. })));
    }

    #[test]
    fn header_rejects_unknown_function() {
        let h = Header::new(FunctionId::SrvAck, 1, "en");
        let mut wire = h.encode_with_body(&[]).unwrap();
        wire[1] = 200;
        assert_eq!(Header::decode(&wire), Err(SlpError::UnknownFunction(200)));
    }

    #[test]
    fn truncated_header_is_detected() {
        // Too short to even read the length field.
        assert!(matches!(Header::decode(&[2, 1]), Err(SlpError::Truncated { .. })));
        // Length field present but wrong for the buffer.
        assert!(matches!(Header::decode(&[2, 1, 0, 0, 99]), Err(SlpError::LengthMismatch { .. })));
    }

    #[test]
    fn non_utf8_string_rejected() {
        let mut w = ByteWriter::new();
        w.u16(2);
        w.u8(0xFF);
        w.u8(0xFE);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf, "test");
        assert_eq!(r.string(), Err(SlpError::BadString));
    }

    #[test]
    fn patch_overwrites_in_place() {
        let mut w = ByteWriter::new();
        w.u32(0);
        w.patch(0, &7u32.to_be_bytes());
        assert_eq!(w.finish(), 7u32.to_be_bytes());
    }
}
