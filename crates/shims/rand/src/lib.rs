//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` 0.9 that `indiss-net`
//! actually uses: [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`] and
//! the [`Rng`] methods `random`, `random_range` and `random_bool`.
//!
//! The generator is SplitMix64 — tiny, fast, full 64-bit output, and (as
//! required by the simulator) a pure function of the seed. It is **not**
//! the same stream as upstream `SmallRng`, which is fine: the simulator
//! only promises determinism per seed, never a specific stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their full value range.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// The raw 64-bit source every other method is derived from.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 bits of mantissa give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

macro_rules! impl_uint_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }

        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_uint_sampling!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Maps a raw 64-bit draw onto `[0, span)`. Multiply-shift (Lemire)
/// rather than modulo, to keep the bias negligible without a loop.
fn reduce(raw: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(raw) * u128::from(span)) >> 64) as u64
}

/// Pre-seeded small generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(5u32..=5);
            assert_eq!(y, 5);
            let z = rng.random_range(0usize..=3);
            assert!(z <= 3);
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
