//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of the criterion API the `benches/` targets use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `measurement_time` / `bench_with_input`,
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is deliberately simple: each benchmark runs a warm-up pass
//! and then a fixed number of timed samples, reporting the median and
//! min/max per-iteration time as plain text. There is no statistical
//! regression analysis, plotting or HTML output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Collects and reports benchmarks.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30, measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Runs one benchmark under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.into();
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.measurement_time, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

/// Identifies a benchmark by function name and optional parameter.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: String::new(), parameter: Some(parameter.to_string()) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { function: name.to_owned(), parameter: None }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (name, Some(p)) => write!(f, "{name}/{p}"),
            (name, None) => write!(f, "{name}"),
        }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_budget: usize,
}

impl Bencher {
    /// Times `f`, running it enough times to fill the sample budget.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: also calibrates how many iterations fit a sample.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target_sample = Duration::from_millis(5);
        self.iters_per_sample =
            (target_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_budget {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            let total = start.elapsed();
            self.samples.push(total / u32::try_from(self.iters_per_sample).unwrap_or(1));
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, measurement_time: Duration, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher =
        Bencher { samples: Vec::new(), iters_per_sample: 1, sample_budget: sample_size };
    let started = Instant::now();
    f(&mut bencher);
    let _ = measurement_time; // fixed sample count keeps runs bounded
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = *bencher.samples.last().expect("non-empty");
    println!(
        "{label:<50} median {:>12?}  (min {:>12?}, max {:>12?}, {} samples, took {:?})",
        median,
        min,
        max,
        bencher.samples.len(),
        started.elapsed(),
    );
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).measurement_time(Duration::from_millis(10));
        group.bench_function("addition", |b| b.iter(|| std::hint::black_box(1u64 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
