//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of the criterion API the `benches/` targets use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `measurement_time` / `bench_with_input`,
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is deliberately simple: each benchmark runs a warm-up pass
//! and then a fixed number of timed samples, reporting the median, mean ±
//! standard deviation and min/max per-iteration time as plain text — and,
//! when the group declares a [`Throughput`], the derived rate
//! (elements or bytes per second). There is no statistical regression
//! analysis, plotting or HTML output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Collects and reports benchmarks.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30, measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Runs one benchmark under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }
}

/// How much work one benchmark iteration performs, for rate reporting
/// (API-compatible subset of `criterion::Throughput`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Each iteration processes this many elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares how much work one iteration performs; subsequent
    /// benchmarks in the group report a derived rate line.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.into();
        let label = format!("{}/{}", self.name, id);
        run_benchmark_with(
            &label,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark_with(
            &label,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finishes the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

/// Identifies a benchmark by function name and optional parameter.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: String::new(), parameter: Some(parameter.to_string()) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { function: name.to_owned(), parameter: None }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (name, Some(p)) => write!(f, "{name}/{p}"),
            (name, None) => write!(f, "{name}"),
        }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_budget: usize,
}

impl Bencher {
    /// Times `f`, running it enough times to fill the sample budget.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: also calibrates how many iterations fit a sample.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target_sample = Duration::from_millis(5);
        self.iters_per_sample =
            (target_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_budget {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            let total = start.elapsed();
            self.samples.push(total / u32::try_from(self.iters_per_sample).unwrap_or(1));
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, measurement_time: Duration, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    run_benchmark_with(label, sample_size, measurement_time, None, f);
}

/// Mean and (sample) standard deviation of per-iteration times, in
/// seconds. The std dev is the n−1 form; a single sample reports 0.
fn mean_and_std_dev(samples: &[Duration]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().map(Duration::as_secs_f64).sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|s| (s.as_secs_f64() - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Formats a rate with an SI-style unit prefix.
fn format_rate(per_second: f64, unit: &str) -> String {
    if per_second >= 1e9 {
        format!("{:.3} G{unit}/s", per_second / 1e9)
    } else if per_second >= 1e6 {
        format!("{:.3} M{unit}/s", per_second / 1e6)
    } else if per_second >= 1e3 {
        format!("{:.3} K{unit}/s", per_second / 1e3)
    } else {
        format!("{per_second:.3} {unit}/s")
    }
}

fn run_benchmark_with<F>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher =
        Bencher { samples: Vec::new(), iters_per_sample: 1, sample_budget: sample_size };
    let started = Instant::now();
    f(&mut bencher);
    let _ = measurement_time; // fixed sample count keeps runs bounded
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = *bencher.samples.last().expect("non-empty");
    let (mean, std_dev) = mean_and_std_dev(&bencher.samples);
    println!(
        "{label:<50} median {:>12?}  (min {:>12?}, max {:>12?}, {} samples, took {:?})",
        median,
        min,
        max,
        bencher.samples.len(),
        started.elapsed(),
    );
    println!(
        "{:<50} mean   {:>12?}  ± {:?}",
        "",
        Duration::from_secs_f64(mean),
        Duration::from_secs_f64(std_dev),
    );
    if let Some(throughput) = throughput {
        let (work, unit) = match throughput {
            Throughput::Elements(n) => (n as f64, "elem"),
            Throughput::Bytes(n) => (n as f64, "B"),
        };
        if mean > 0.0 {
            println!("{:<50} thrpt  {:>12}", "", format_rate(work / mean, unit));
        }
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).measurement_time(Duration::from_millis(10));
        group.throughput(Throughput::Elements(64));
        group.bench_function("addition", |b| b.iter(|| std::hint::black_box(1u64 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn mean_and_std_dev_match_hand_computation() {
        let samples = vec![Duration::from_secs(1), Duration::from_secs(2), Duration::from_secs(3)];
        let (mean, sd) = mean_and_std_dev(&samples);
        assert!((mean - 2.0).abs() < 1e-12);
        assert!((sd - 1.0).abs() < 1e-12, "sample std dev of 1,2,3 is 1: {sd}");
        let (m1, sd1) = mean_and_std_dev(&samples[..1]);
        assert!((m1 - 1.0).abs() < 1e-12);
        assert_eq!(sd1, 0.0, "single sample has no spread");
    }

    #[test]
    fn rates_format_with_si_prefixes() {
        assert_eq!(format_rate(12.0, "elem"), "12.000 elem/s");
        assert_eq!(format_rate(1_500.0, "elem"), "1.500 Kelem/s");
        assert_eq!(format_rate(2_000_000.0, "B"), "2.000 MB/s");
        assert_eq!(format_rate(3.2e9, "elem"), "3.200 Gelem/s");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
