//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest the `tests/prop.rs` suites use: the [`proptest!`]
//! macro, `prop_assert*`, [`prop_oneof!`], [`Strategy`] with `prop_map` /
//! `prop_recursive` / `boxed`, [`any`], [`Just`], integer-range and
//! regex-string strategies, [`collection::vec`] and [`option::of`].
//!
//! Differences from upstream: inputs are generated from a deterministic
//! per-test RNG (seeded from the test name) and failures are reported by
//! panicking with the failing inputs — there is **no shrinking**. That
//! trades minimal counterexamples for zero dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Number of cases generated per property.
pub const CASES: u32 = 96;

/// Deterministic RNG driving all generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG seeded from a test name (FNV-1a of the bytes).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample empty range");
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// A value generator (upstream: a strategy plus a shrink tree; here,
/// generation only).
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Rc::new(self) }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps a strategy for the inner case, up to `depth` levels deep.
    /// (`desired_size` / `expected_branch_size` are accepted for API
    /// compatibility; generation depth is bounded by `depth` alone.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union { options: vec![leaf.clone(), deeper] }.boxed();
        }
        strat
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: Rc::clone(&self.inner) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    /// The equally weighted alternatives.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Always generates a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-range strategy for a primitive type.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy { _marker: std::marker::PhantomData }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// See [`any`].
pub struct ArbitraryStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// `&str` regex-subset strategies: a pattern is a sequence of character
/// classes (`[a-z09_-]`) or literal characters, each optionally followed
/// by `{n}` or `{m,n}` repetition — the grammar the test suites use.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                + i;
            let set = parse_class(&chars[i + 1..close], pattern);
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("repetition min"),
                    n.trim().parse::<usize>().expect("repetition max"),
                ),
                None => {
                    let n = spec.trim().parse::<usize>().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            let idx = rng.below(alphabet.len() as u64) as usize;
            out.push(alphabet[idx]);
        }
    }
    out
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty class in pattern {pattern:?}");
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // `X-Y` is a range when both endpoints exist; a trailing or
        // leading `-` is a literal.
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "bad class range in pattern {pattern:?}");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else if i + 2 == body.len() && body[i + 1] == '-' {
            // e.g. `[!-]` — "!" then literal "-" … but `!-]` with a close
            // would have matched above; treat `X-` at the very end as the
            // literal pair.
            set.push(body[i]);
            set.push('-');
            i += 2;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    set
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Generates `Vec`s of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Generates `Some` values from `inner` about three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Defines property tests: each `fn` runs [`CASES`] times with fresh
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Skips the current generated case when its precondition does not hold.
/// (Expands to `continue` inside the [`proptest!`] case loop.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts a condition, reporting the property that failed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality, reporting both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Asserts inequality, reporting both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union {
            options: vec![$($crate::Strategy::boxed($strat)),+],
        }
    };
}

/// The glob-import surface the test suites use.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn patterns_generate_within_class_and_length() {
        let mut rng = TestRng::from_name("patterns");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c][0-9_-]{0,4}", &mut rng);
            let chars: Vec<char> = s.chars().collect();
            assert!((1..=5).contains(&chars.len()), "got {s:?}");
            assert!(('a'..='c').contains(&chars[0]));
            assert!(chars[1..].iter().all(|c| c.is_ascii_digit() || *c == '_' || *c == '-'));
        }
    }

    #[test]
    fn printable_ascii_class_spans_space_to_tilde() {
        let mut rng = TestRng::from_name("printable");
        for _ in 0..200 {
            let s = Strategy::generate(&"[ -~]{0,16}", &mut rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "got {s:?}");
        }
    }

    proptest! {
        #[test]
        fn macro_binds_multiple_args(x in 1u32..10, v in crate::collection::vec(0u8..3, 0..4)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 4);
            prop_assert!(v.iter().all(|b| *b < 3));
        }

        #[test]
        fn oneof_and_just_work(pick in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(pick == 1 || pick == 2);
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..=255).prop_map(Tree::Leaf).prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::from_name("recursion");
        for _ in 0..100 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 4 + 3, "runaway recursion: {t:?}");
        }
    }
}
