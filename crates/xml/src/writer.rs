//! XML serialization.

use crate::dom::{Element, XmlNode};
use crate::escape::{escape_attr, escape_text};

/// Streams elements into a compact XML string.
///
/// # Examples
///
/// ```
/// use indiss_xml::{Element, XmlWriter};
///
/// let elem = Element::new("a").with_attr("k", "v").with_text("x < y");
/// let mut w = XmlWriter::new();
/// w.write_element(&elem);
/// assert_eq!(w.finish(), "<a k=\"v\">x &lt; y</a>");
/// ```
#[derive(Debug, Default)]
pub struct XmlWriter {
    out: String,
}

impl XmlWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        XmlWriter::default()
    }

    /// Serializes one element tree (attributes escaped, text escaped,
    /// childless elements rendered self-closing).
    pub fn write_element(&mut self, elem: &Element) {
        self.out.push('<');
        self.out.push_str(elem.name());
        for (name, value) in elem.attributes() {
            self.out.push(' ');
            self.out.push_str(name);
            self.out.push_str("=\"");
            self.out.push_str(&escape_attr(value));
            self.out.push('"');
        }
        if elem.children().is_empty() {
            self.out.push_str("/>");
            return;
        }
        self.out.push('>');
        for child in elem.children() {
            match child {
                XmlNode::Element(e) => self.write_element(e),
                XmlNode::Text(t) => self.out.push_str(&escape_text(t)),
            }
        }
        self.out.push_str("</");
        self.out.push_str(elem.name());
        self.out.push('>');
    }

    /// Consumes the writer and returns the accumulated XML.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn childless_is_self_closing() {
        let mut w = XmlWriter::new();
        w.write_element(&Element::new("br"));
        assert_eq!(w.finish(), "<br/>");
    }

    #[test]
    fn escaping_applied_everywhere() {
        let elem = Element::new("e").with_attr("a", "x\"<y").with_text("1 & 2");
        let mut w = XmlWriter::new();
        w.write_element(&elem);
        let s = w.finish();
        assert!(s.contains("a=\"x&quot;&lt;y\""));
        assert!(s.contains("1 &amp; 2"));
    }

    #[test]
    fn nested_structure_preserved() {
        let elem = Element::new("outer")
            .with_child(Element::new("inner").with_text("t"))
            .with_child(Element::new("empty"));
        let mut w = XmlWriter::new();
        w.write_element(&elem);
        assert_eq!(w.finish(), "<outer><inner>t</inner><empty/></outer>");
    }
}
