//! DOM-lite: an owned element tree built from the pull parser.
//!
//! UPnP description documents are small (a few KB), so a simple owned tree
//! is the right trade-off; protocol code navigates with
//! [`Element::child`] / [`Element::descendant_text`].

use std::fmt;

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::parser::{XmlPullParser, XmlToken};
use crate::writer::XmlWriter;

/// A node in the tree: element or text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// A child element.
    Element(Element),
    /// A run of character data.
    Text(String),
}

/// An XML element with attributes and children.
///
/// # Examples
///
/// ```
/// use indiss_xml::Element;
///
/// let doc = Element::parse("<device><friendlyName>Clock</friendlyName></device>")?;
/// assert_eq!(doc.name(), "device");
/// assert_eq!(doc.child_text("friendlyName"), Some("Clock"));
/// # Ok::<(), indiss_xml::XmlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    name: String,
    attributes: Vec<(String, String)>,
    children: Vec<XmlNode>,
}

impl Element {
    /// Creates an empty element.
    pub fn new(name: impl Into<String>) -> Self {
        Element { name: name.into(), attributes: Vec::new(), children: Vec::new() }
    }

    /// Parses a complete document and returns its root element.
    ///
    /// # Errors
    ///
    /// Any [`XmlError`] for malformed input.
    pub fn parse(input: &str) -> XmlResult<Element> {
        let mut parser = XmlPullParser::new(input);
        let mut stack: Vec<Element> = Vec::new();
        let mut root: Option<Element> = None;
        while let Some(token) = parser.next_token()? {
            match token {
                XmlToken::StartElement { name, attributes, self_closing } => {
                    let elem = Element { name, attributes, children: Vec::new() };
                    if self_closing {
                        match stack.last_mut() {
                            Some(parent) => parent.children.push(XmlNode::Element(elem)),
                            None => root = Some(elem),
                        }
                    } else {
                        stack.push(elem);
                    }
                }
                XmlToken::EndElement { .. } => {
                    let elem = stack.pop().expect("parser guarantees balance");
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(XmlNode::Element(elem)),
                        None => root = Some(elem),
                    }
                }
                XmlToken::Text(text) => {
                    if let Some(parent) = stack.last_mut() {
                        // Whitespace-only runs between elements are layout,
                        // not data; drop them to simplify navigation.
                        if !text.trim().is_empty() {
                            parent.children.push(XmlNode::Text(text));
                        }
                    }
                }
            }
        }
        root.ok_or_else(|| XmlError::new(XmlErrorKind::NoRootElement, input.len()))
    }

    /// The element name (with any namespace prefix).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The element's *local* name: the part after any `:` prefix.
    pub fn local_name(&self) -> &str {
        self.name.rsplit(':').next().unwrap_or(&self.name)
    }

    /// Attributes in document order.
    pub fn attributes(&self) -> &[(String, String)] {
        &self.attributes
    }

    /// Looks up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Sets an attribute, replacing an existing one of the same name.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) -> &mut Self {
        let name = name.into();
        let value = value.into();
        match self.attributes.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = value,
            None => self.attributes.push((name, value)),
        }
        self
    }

    /// All child nodes.
    pub fn children(&self) -> &[XmlNode] {
        &self.children
    }

    /// Iterates over child *elements* only.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        })
    }

    /// First child element whose local name matches.
    pub fn child(&self, local_name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.local_name() == local_name)
    }

    /// All child elements whose local name matches.
    pub fn children_named<'a>(
        &'a self,
        local_name: &'a str,
    ) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.local_name() == local_name)
    }

    /// Concatenated text content of this element's direct text children.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for node in &self.children {
            if let XmlNode::Text(t) = node {
                out.push_str(t);
            }
        }
        out
    }

    /// Text of the first child element with this local name, trimmed.
    pub fn child_text(&self, local_name: &str) -> Option<&str> {
        self.child(local_name).and_then(|e| match e.children.as_slice() {
            [XmlNode::Text(t)] => Some(t.trim()),
            _ => None,
        })
    }

    /// Depth-first search for the first descendant element with this local
    /// name (not including `self`).
    pub fn descendant(&self, local_name: &str) -> Option<&Element> {
        for e in self.child_elements() {
            if e.local_name() == local_name {
                return Some(e);
            }
            if let Some(found) = e.descendant(local_name) {
                return Some(found);
            }
        }
        None
    }

    /// Trimmed text of the first descendant with this local name.
    pub fn descendant_text(&self, local_name: &str) -> Option<String> {
        self.descendant(local_name).map(|e| e.text().trim().to_owned())
    }

    /// Appends a child element, returning `self` for chaining.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Appends a text node, returning `self` for chaining.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// Appends an element `<name>text</name>`, the common leaf shape of
    /// UPnP descriptions, returning `self` for chaining.
    pub fn with_text_child(self, name: impl Into<String>, text: impl Into<String>) -> Self {
        self.with_child(Element::new(name).with_text(text))
    }

    /// Appends an attribute, returning `self` for chaining.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Appends a child element (mutating form).
    pub fn push_child(&mut self, child: Element) {
        self.children.push(XmlNode::Element(child));
    }

    /// Serializes to a compact document string (no XML declaration).
    pub fn to_xml(&self) -> String {
        let mut w = XmlWriter::new();
        w.write_element(self);
        w.finish()
    }

    /// Serializes with a leading `<?xml version="1.0"?>` declaration.
    pub fn to_document(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\"?>");
        out.push_str(&self.to_xml());
        out
    }
}

impl fmt::Display for Element {
    /// Renders the element as compact XML, identical to [`Element::to_xml`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESCRIPTION: &str = r#"<?xml version="1.0"?>
<root xmlns="urn:schemas-upnp-org:device-1-0">
  <specVersion><major>1</major><minor>0</minor></specVersion>
  <device>
    <deviceType>urn:schemas-upnp-org:device:clock:1</deviceType>
    <friendlyName>CyberGarage Clock Device</friendlyName>
    <serviceList>
      <service><serviceId>timer</serviceId></service>
      <service><serviceId>alarm</serviceId></service>
    </serviceList>
  </device>
</root>"#;

    #[test]
    fn parse_and_navigate_description() {
        let root = Element::parse(DESCRIPTION).unwrap();
        assert_eq!(root.name(), "root");
        let device = root.child("device").unwrap();
        assert_eq!(device.child_text("friendlyName"), Some("CyberGarage Clock Device"));
        let services: Vec<_> = device
            .child("serviceList")
            .unwrap()
            .children_named("service")
            .filter_map(|s| s.child_text("serviceId"))
            .collect();
        assert_eq!(services, vec!["timer", "alarm"]);
    }

    #[test]
    fn descendant_search() {
        let root = Element::parse(DESCRIPTION).unwrap();
        assert_eq!(
            root.descendant_text("deviceType"),
            Some("urn:schemas-upnp-org:device:clock:1".into())
        );
        assert!(root.descendant("nonexistent").is_none());
    }

    #[test]
    fn builder_roundtrips_through_parser() {
        let doc = Element::new("device")
            .with_attr("id", "d1")
            .with_text_child("name", "Printer & Scanner")
            .with_child(Element::new("empty"));
        let xml = doc.to_xml();
        let back = Element::parse(&xml).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn local_name_strips_prefix() {
        let e =
            Element::parse(r#"<s:Envelope xmlns:s="x"><s:Body>b</s:Body></s:Envelope>"#).unwrap();
        assert_eq!(e.local_name(), "Envelope");
        assert_eq!(e.child("Body").unwrap().text(), "b");
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("a");
        e.set_attr("k", "1");
        e.set_attr("k", "2");
        assert_eq!(e.attr("k"), Some("2"));
        assert_eq!(e.attributes().len(), 1);
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let e = Element::parse("<a>\n  <b>x</b>\n</a>").unwrap();
        assert_eq!(e.children().len(), 1);
    }

    #[test]
    fn mixed_content_text_is_kept() {
        let e = Element::parse("<a>hello <b>world</b></a>").unwrap();
        assert_eq!(e.children().len(), 2);
        assert_eq!(e.text(), "hello ");
    }

    #[test]
    fn display_matches_to_xml() {
        let e = Element::new("x").with_text("y");
        assert_eq!(e.to_string(), e.to_xml());
    }

    #[test]
    fn to_document_has_declaration() {
        let e = Element::new("x");
        assert!(e.to_document().starts_with("<?xml"));
        assert!(Element::parse(&e.to_document()).is_ok());
    }
}
