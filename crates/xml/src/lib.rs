//! # indiss-xml — minimal XML for UPnP descriptions
//!
//! A from-scratch XML 1.0 subset sufficient for the documents the INDISS
//! paper's UPnP unit must handle: device/service description documents
//! fetched from `LOCATION:` URLs (paper §2.4) and SOAP-lite envelopes.
//!
//! Three layers:
//!
//! * [`XmlPullParser`] — streaming tokens; this is what the INDISS UPnP
//!   unit's "XML parser" (the target of `SDP_C_PARSER_SWITCH`) consumes.
//! * [`Element`] — an owned DOM-lite tree for navigation.
//! * [`XmlWriter`] — compact serialization with correct escaping.
//!
//! Out of scope, deliberately: DTD validation, namespace resolution
//! (prefixes are preserved verbatim; lookups use local names), and
//! streaming from readers (documents are a few KB).
//!
//! ```
//! use indiss_xml::Element;
//!
//! let doc = Element::parse(r#"<root><device><friendlyName>Clock</friendlyName></device></root>"#)?;
//! assert_eq!(doc.descendant_text("friendlyName").as_deref(), Some("Clock"));
//! # Ok::<(), indiss_xml::XmlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dom;
mod error;
mod escape;
mod parser;
mod writer;

pub use dom::{Element, XmlNode};
pub use error::{XmlError, XmlErrorKind, XmlResult};
pub use escape::{escape_attr, escape_text, unescape};
pub use parser::{XmlPullParser, XmlToken};
pub use writer::XmlWriter;
