//! XML parse errors.

use std::fmt;

/// Error produced while parsing an XML document.
///
/// Carries the byte offset at which the problem was detected so callers can
/// point at the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    kind: XmlErrorKind,
    offset: usize,
}

/// The category of an [`XmlError`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmlErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A character that cannot start or continue the current construct.
    UnexpectedChar(char),
    /// `</a>` closed an element opened as `<b>`.
    MismatchedTag {
        /// The element that was open.
        expected: String,
        /// The closing tag that was found.
        found: String,
    },
    /// A closing tag with no matching open element.
    UnopenedTag(String),
    /// Input ended with unclosed elements.
    UnclosedTag(String),
    /// An entity reference that is not one of the predefined five or a
    /// valid character reference.
    InvalidEntity(String),
    /// An attribute appeared twice on the same element.
    DuplicateAttribute(String),
    /// The document contains no root element.
    NoRootElement,
    /// Content found after the document's root element closed.
    TrailingContent,
}

impl XmlError {
    pub(crate) fn new(kind: XmlErrorKind, offset: usize) -> Self {
        XmlError { kind, offset }
    }

    /// The category of the error.
    pub fn kind(&self) -> &XmlErrorKind {
        &self.kind
    }

    /// Byte offset into the input at which the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            XmlErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            XmlErrorKind::MismatchedTag { expected, found } => {
                write!(f, "mismatched closing tag: expected </{expected}>, found </{found}>")
            }
            XmlErrorKind::UnopenedTag(t) => write!(f, "closing tag </{t}> was never opened"),
            XmlErrorKind::UnclosedTag(t) => write!(f, "element <{t}> was never closed"),
            XmlErrorKind::InvalidEntity(e) => write!(f, "invalid entity reference &{e};"),
            XmlErrorKind::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}"),
            XmlErrorKind::NoRootElement => write!(f, "document has no root element"),
            XmlErrorKind::TrailingContent => write!(f, "content after the root element"),
        }?;
        write!(f, " at byte {}", self.offset)
    }
}

impl std::error::Error for XmlError {}

/// Convenience alias for XML parse results.
pub type XmlResult<T> = Result<T, XmlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offset() {
        let e = XmlError::new(XmlErrorKind::UnexpectedEof, 17);
        assert!(e.to_string().contains("byte 17"));
        assert_eq!(e.offset(), 17);
    }

    #[test]
    fn kind_is_inspectable() {
        let e = XmlError::new(XmlErrorKind::UnopenedTag("x".into()), 0);
        assert!(matches!(e.kind(), XmlErrorKind::UnopenedTag(t) if t == "x"));
    }
}
