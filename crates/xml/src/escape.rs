//! Entity escaping and unescaping.

use std::borrow::Cow;

use crate::error::{XmlError, XmlErrorKind, XmlResult};

/// Escapes text content: `&`, `<`, `>` become entity references.
///
/// Returns borrowed input when nothing needs escaping.
///
/// # Examples
///
/// ```
/// assert_eq!(indiss_xml::escape_text("a < b & c"), "a &lt; b &amp; c");
/// assert_eq!(indiss_xml::escape_text("plain"), "plain");
/// ```
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_with(s, false)
}

/// Escapes attribute values: like [`escape_text`] but also escapes `"`.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_with(s, true)
}

fn escape_with(s: &str, attr: bool) -> Cow<'_, str> {
    let needs = |c: char| matches!(c, '&' | '<' | '>') || (attr && c == '"');
    if !s.chars().any(needs) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// Resolves the predefined entities and numeric character references in `s`.
///
/// # Errors
///
/// [`XmlErrorKind::InvalidEntity`] for unknown entities, malformed numeric
/// references, or an unterminated `&...`. The `base` offset is added to
/// reported positions so errors point into the original document.
pub fn unescape(s: &str, base: usize) -> XmlResult<Cow<'_, str>> {
    if !s.contains('&') {
        return Ok(Cow::Borrowed(s));
    }
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Advance one whole UTF-8 character.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&s[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        let semi = s[i..].find(';').ok_or_else(|| {
            XmlError::new(XmlErrorKind::InvalidEntity(s[i + 1..].into()), base + i)
        })?;
        let name = &s[i + 1..i + semi];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if name.starts_with('#') => {
                let cp = parse_char_ref(name).ok_or_else(|| {
                    XmlError::new(XmlErrorKind::InvalidEntity(name.into()), base + i)
                })?;
                out.push(cp);
            }
            _ => {
                return Err(XmlError::new(XmlErrorKind::InvalidEntity(name.into()), base + i));
            }
        }
        i += semi + 1;
    }
    Ok(Cow::Owned(out))
}

fn parse_char_ref(name: &str) -> Option<char> {
    let digits = &name[1..];
    let cp = if let Some(hex) = digits.strip_prefix('x').or_else(|| digits.strip_prefix('X')) {
        u32::from_str_radix(hex, 16).ok()?
    } else {
        digits.parse::<u32>().ok()?
    };
    char::from_u32(cp)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrips() {
        let original = "a<b>&\"quoted\" 'single'";
        let escaped = escape_attr(original);
        assert_eq!(unescape(&escaped, 0).unwrap(), original);
    }

    #[test]
    fn text_escape_leaves_quotes() {
        assert_eq!(escape_text(r#"say "hi""#), r#"say "hi""#);
        assert_eq!(escape_attr(r#"say "hi""#), "say &quot;hi&quot;");
    }

    #[test]
    fn borrowed_when_clean() {
        assert!(matches!(escape_text("clean"), Cow::Borrowed(_)));
        assert!(matches!(unescape("clean", 0).unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", 0).unwrap(), "ABc");
        assert_eq!(unescape("&#x20AC;", 0).unwrap(), "\u{20AC}");
    }

    #[test]
    fn unknown_entity_is_error() {
        let err = unescape("&nbsp;", 5).unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::InvalidEntity(e) if e == "nbsp"));
        assert_eq!(err.offset(), 5);
    }

    #[test]
    fn unterminated_entity_is_error() {
        assert!(unescape("x &amp", 0).is_err());
    }

    #[test]
    fn invalid_codepoint_is_error() {
        assert!(unescape("&#xD800;", 0).is_err()); // surrogate
        assert!(unescape("&#zzz;", 0).is_err());
    }

    #[test]
    fn multibyte_passthrough() {
        assert_eq!(unescape("héllo &amp; wörld", 0).unwrap(), "héllo & wörld");
    }
}
