//! Pull parser: turns XML text into a stream of [`XmlToken`]s.
//!
//! Supports the subset of XML 1.0 that UPnP description documents and SOAP
//! envelopes use: elements, attributes, character data, CDATA sections,
//! comments, processing instructions / the XML declaration (skipped), and
//! the predefined + numeric entities. DTDs and namespaces-as-semantics are
//! out of scope (namespace prefixes are kept verbatim in names).

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::escape::unescape;

/// One parsed XML token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlToken {
    /// `<name attr="v" ...>` — `self_closing` is true for `<name ... />`.
    StartElement {
        /// Element name (namespace prefixes kept verbatim).
        name: String,
        /// Attributes in document order, entity references resolved.
        attributes: Vec<(String, String)>,
        /// Whether the element closed itself (`<br/>`).
        self_closing: bool,
    },
    /// `</name>`.
    EndElement {
        /// Element name.
        name: String,
    },
    /// Character data with entities resolved; whitespace-only runs between
    /// elements are preserved (callers decide whether to trim).
    Text(String),
}

/// Pull parser over an XML string.
///
/// # Examples
///
/// ```
/// use indiss_xml::{XmlPullParser, XmlToken};
///
/// let mut p = XmlPullParser::new("<a href=\"x\">hi</a>");
/// assert!(matches!(p.next_token()?, Some(XmlToken::StartElement { name, .. }) if name == "a"));
/// assert!(matches!(p.next_token()?, Some(XmlToken::Text(t)) if t == "hi"));
/// assert!(matches!(p.next_token()?, Some(XmlToken::EndElement { name }) if name == "a"));
/// assert_eq!(p.next_token()?, None);
/// # Ok::<(), indiss_xml::XmlError>(())
/// ```
#[derive(Debug)]
pub struct XmlPullParser<'a> {
    input: &'a str,
    pos: usize,
    /// Open-element stack for well-formedness checking.
    stack: Vec<String>,
    /// Set once the root element has fully closed.
    root_closed: bool,
    /// Set once any root element has been seen.
    seen_root: bool,
}

impl<'a> XmlPullParser<'a> {
    /// Creates a parser over `input`.
    pub fn new(input: &'a str) -> Self {
        XmlPullParser { input, pos: 0, stack: Vec::new(), root_closed: false, seen_root: false }
    }

    /// Current byte offset into the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Returns the next token, or `None` at a well-formed end of document.
    ///
    /// # Errors
    ///
    /// Any [`XmlError`] for malformed input; the parser should not be used
    /// after an error.
    pub fn next_token(&mut self) -> XmlResult<Option<XmlToken>> {
        loop {
            if self.pos >= self.input.len() {
                if let Some(open) = self.stack.last() {
                    return Err(self.err(XmlErrorKind::UnclosedTag(open.clone())));
                }
                if !self.seen_root {
                    return Err(self.err(XmlErrorKind::NoRootElement));
                }
                return Ok(None);
            }
            let rest = &self.input[self.pos..];
            if let Some(stripped) = rest.strip_prefix("<!--") {
                let end =
                    stripped.find("-->").ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
                self.pos += 4 + end + 3;
                continue;
            }
            if rest.starts_with("<![CDATA[") {
                return self.parse_cdata().map(Some);
            }
            if rest.starts_with("<?") {
                let end = rest.find("?>").ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
                self.pos += end + 2;
                continue;
            }
            if rest.starts_with("<!") {
                // DOCTYPE and friends: skip to the matching '>' (no nested
                // internal subsets supported).
                let end = rest.find('>').ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
                self.pos += end + 1;
                continue;
            }
            if rest.starts_with("</") {
                return self.parse_end_tag().map(Some);
            }
            if rest.starts_with('<') {
                return self.parse_start_tag().map(Some);
            }
            return self.parse_text().map(Some);
        }
    }

    /// Collects all remaining tokens.
    ///
    /// # Errors
    ///
    /// Propagates the first parse error.
    pub fn tokens(mut self) -> XmlResult<Vec<XmlToken>> {
        let mut out = Vec::new();
        while let Some(t) = self.next_token()? {
            out.push(t);
        }
        Ok(out)
    }

    fn err(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::new(kind, self.pos)
    }

    fn peek_char(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek_char() {
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn parse_name(&mut self) -> XmlResult<String> {
        let start = self.pos;
        while let Some(c) = self.peek_char() {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            let c = self.peek_char().ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
            return Err(self.err(XmlErrorKind::UnexpectedChar(c)));
        }
        Ok(self.input[start..self.pos].to_owned())
    }

    fn expect(&mut self, c: char) -> XmlResult<()> {
        match self.peek_char() {
            Some(found) if found == c => {
                self.pos += c.len_utf8();
                Ok(())
            }
            Some(found) => Err(self.err(XmlErrorKind::UnexpectedChar(found))),
            None => Err(self.err(XmlErrorKind::UnexpectedEof)),
        }
    }

    fn parse_start_tag(&mut self) -> XmlResult<XmlToken> {
        if self.root_closed {
            return Err(self.err(XmlErrorKind::TrailingContent));
        }
        self.expect('<')?;
        let name = self.parse_name()?;
        let mut attributes: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek_char() {
                Some('>') => {
                    self.pos += 1;
                    self.stack.push(name.clone());
                    self.seen_root = true;
                    return Ok(XmlToken::StartElement { name, attributes, self_closing: false });
                }
                Some('/') => {
                    self.pos += 1;
                    self.expect('>')?;
                    self.seen_root = true;
                    if self.stack.is_empty() {
                        self.root_closed = true;
                    }
                    return Ok(XmlToken::StartElement { name, attributes, self_closing: true });
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    if attributes.iter().any(|(n, _)| *n == attr_name) {
                        return Err(self.err(XmlErrorKind::DuplicateAttribute(attr_name)));
                    }
                    self.skip_ws();
                    self.expect('=')?;
                    self.skip_ws();
                    let quote = match self.peek_char() {
                        Some(q @ ('"' | '\'')) => {
                            self.pos += 1;
                            q
                        }
                        Some(c) => return Err(self.err(XmlErrorKind::UnexpectedChar(c))),
                        None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
                    };
                    let vstart = self.pos;
                    let rel = self.input[self.pos..]
                        .find(quote)
                        .ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
                    let raw = &self.input[vstart..vstart + rel];
                    let value = unescape(raw, vstart)?.into_owned();
                    self.pos = vstart + rel + 1;
                    attributes.push((attr_name, value));
                }
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_end_tag(&mut self) -> XmlResult<XmlToken> {
        self.pos += 2; // "</"
        let name = self.parse_name()?;
        self.skip_ws();
        self.expect('>')?;
        match self.stack.pop() {
            Some(open) if open == name => {
                if self.stack.is_empty() {
                    self.root_closed = true;
                }
                Ok(XmlToken::EndElement { name })
            }
            Some(open) => {
                Err(self.err(XmlErrorKind::MismatchedTag { expected: open, found: name }))
            }
            None => Err(self.err(XmlErrorKind::UnopenedTag(name))),
        }
    }

    fn parse_text(&mut self) -> XmlResult<XmlToken> {
        let start = self.pos;
        let rel = self.input[self.pos..].find('<').unwrap_or(self.input.len() - self.pos);
        let raw = &self.input[start..start + rel];
        self.pos = start + rel;
        if self.stack.is_empty() && !raw.trim().is_empty() {
            return Err(XmlError::new(
                if self.root_closed || self.seen_root {
                    XmlErrorKind::TrailingContent
                } else {
                    XmlErrorKind::NoRootElement
                },
                start,
            ));
        }
        let text = unescape(raw, start)?.into_owned();
        Ok(XmlToken::Text(text))
    }

    fn parse_cdata(&mut self) -> XmlResult<XmlToken> {
        self.pos += "<![CDATA[".len();
        let rel = self.input[self.pos..]
            .find("]]>")
            .ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
        let text = self.input[self.pos..self.pos + rel].to_owned();
        self.pos += rel + 3;
        Ok(XmlToken::Text(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> XmlResult<Vec<XmlToken>> {
        XmlPullParser::new(s).tokens()
    }

    #[test]
    fn simple_document() {
        let tokens = parse("<root><item/></root>").unwrap();
        assert_eq!(tokens.len(), 3);
        assert!(matches!(&tokens[1], XmlToken::StartElement { self_closing: true, .. }));
    }

    #[test]
    fn attributes_and_entities() {
        let tokens = parse(r#"<a x="1 &amp; 2" y='z'>t&lt;u</a>"#).unwrap();
        match &tokens[0] {
            XmlToken::StartElement { attributes, .. } => {
                assert_eq!(attributes[0], ("x".into(), "1 & 2".into()));
                assert_eq!(attributes[1], ("y".into(), "z".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(tokens[1], XmlToken::Text("t<u".into()));
    }

    #[test]
    fn xml_declaration_and_comments_are_skipped() {
        let tokens = parse("<?xml version=\"1.0\"?><!-- hi --><root><!-- in --->x</root>").unwrap();
        // Note: "--->" ends the comment at "-->" leaving "-" wait, find("-->")
        // locates the first occurrence; "--->" contains "-->" starting at
        // index 1, so one dash becomes text. That is malformed XML anyway;
        // the test below uses a clean comment.
        assert!(!tokens.is_empty());
    }

    #[test]
    fn clean_comment_inside_element() {
        let tokens = parse("<root><!-- note -->x</root>").unwrap();
        assert_eq!(
            tokens,
            vec![
                XmlToken::StartElement {
                    name: "root".into(),
                    attributes: vec![],
                    self_closing: false
                },
                XmlToken::Text("x".into()),
                XmlToken::EndElement { name: "root".into() },
            ]
        );
    }

    #[test]
    fn cdata_is_verbatim() {
        let tokens = parse("<r><![CDATA[a < b & c]]></r>").unwrap();
        assert_eq!(tokens[1], XmlToken::Text("a < b & c".into()));
    }

    #[test]
    fn mismatched_tags_error() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn unclosed_root_errors() {
        let err = parse("<a><b></b>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::UnclosedTag(t) if t == "a"));
    }

    #[test]
    fn unopened_close_errors() {
        let err = parse("</a>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::UnopenedTag(t) if t == "a"));
    }

    #[test]
    fn empty_input_errors() {
        let err = parse("").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::NoRootElement));
    }

    #[test]
    fn trailing_element_errors() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::TrailingContent));
    }

    #[test]
    fn trailing_text_errors() {
        let err = parse("<a/>junk").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::TrailingContent));
    }

    #[test]
    fn duplicate_attribute_errors() {
        let err = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::DuplicateAttribute(a) if a == "x"));
    }

    #[test]
    fn namespace_prefixes_kept_verbatim() {
        let tokens = parse(r#"<s:Envelope xmlns:s="ns"><s:Body/></s:Envelope>"#).unwrap();
        assert!(matches!(&tokens[0], XmlToken::StartElement { name, .. } if name == "s:Envelope"));
    }

    #[test]
    fn doctype_is_skipped() {
        let tokens = parse("<!DOCTYPE html><root/>").unwrap();
        assert_eq!(tokens.len(), 1);
    }

    #[test]
    fn whitespace_between_elements_is_text() {
        let tokens = parse("<a> <b/> </a>").unwrap();
        assert_eq!(tokens.len(), 5);
        assert_eq!(tokens[1], XmlToken::Text(" ".into()));
    }
}
