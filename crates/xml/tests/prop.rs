//! Property-based tests of the XML subset: escaping, tree round-trips and
//! parser totality.

use proptest::prelude::*;

use indiss_xml::{escape_attr, escape_text, unescape, Element, XmlPullParser};

fn xml_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_-]{0,12}"
}

/// Arbitrary text without control characters (the subset's documents are
/// protocol-generated, never binary).
fn xml_text() -> impl Strategy<Value = String> {
    "[ -~]{0,32}"
}

fn arb_element(depth: u32) -> BoxedStrategy<Element> {
    let leaf = (xml_name(), xml_text()).prop_map(|(name, text)| {
        let e = Element::new(name);
        if text.trim().is_empty() {
            e
        } else {
            e.with_text(text)
        }
    });
    leaf.prop_recursive(depth, 24, 4, move |inner| {
        (
            xml_name(),
            proptest::collection::vec((xml_name(), xml_text()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                let mut seen = std::collections::HashSet::new();
                for (n, v) in attrs {
                    if seen.insert(n.clone()) {
                        e.set_attr(n, v);
                    }
                }
                for c in children {
                    e.push_child(c);
                }
                e
            })
    })
    .boxed()
}

proptest! {
    /// escape → unescape is the identity for text and attribute contexts.
    #[test]
    fn escaping_roundtrips(s in xml_text()) {
        let text_escaped = escape_text(&s).into_owned();
        let attr_escaped = escape_attr(&s).into_owned();
        prop_assert_eq!(unescape(&text_escaped, 0).unwrap(), s.clone());
        prop_assert_eq!(unescape(&attr_escaped, 0).unwrap(), s);
    }

    /// Any built tree serializes to XML that parses back to the same tree
    /// (modulo whitespace-only text nodes, which the DOM drops — the
    /// generator never produces them).
    #[test]
    fn trees_roundtrip(elem in arb_element(3)) {
        let xml = elem.to_xml();
        let back = Element::parse(&xml).unwrap();
        prop_assert_eq!(back, elem);
    }

    /// The pull parser is total on arbitrary printable input: errors, not
    /// panics or hangs.
    #[test]
    fn parser_is_total(s in "[ -~]{0,128}") {
        let _ = XmlPullParser::new(&s).tokens();
    }

    /// The parser is total on inputs biased towards XML-ish shapes.
    #[test]
    fn parser_is_total_on_xmlish(s in "[<>/a-z \"=&;!-]{0,64}") {
        let _ = XmlPullParser::new(&s).tokens();
    }

    /// Document round-trips preserve attribute lookup.
    #[test]
    fn attributes_survive_roundtrip(name in xml_name(), key in xml_name(), value in xml_text()) {
        let elem = Element::new(name).with_attr(key.clone(), value.clone());
        let back = Element::parse(&elem.to_xml()).unwrap();
        prop_assert_eq!(back.attr(&key), Some(value.as_str()));
    }
}
