//! The batched I/O reactor: one thread, one epoll fd, every channel.
//!
//! Replaces the thread-per-channel blocking-recv model for the real
//! wire: channels register their nonblocking socket with the reactor's
//! epoll instance (edge-triggered), and a single `indiss-reactor`
//! thread drains readiness with `recvmmsg` into a pooled buffer slab —
//! up to [`RECV_BATCH`] datagrams per syscall, looping until `EAGAIN`
//! — then hands each batch to the channel's sink in one call. Replies
//! flow the other way without touching the reactor: workers flush them
//! with `sendmmsg` directly on the socket ([`crate::sys::send_batch`]),
//! so the reactor thread is receive-only and never blocks on sends.
//!
//! Shutdown is explicit: an [`sys::EventFd`] registered alongside the
//! sockets lets [`Reactor::shutdown`] (and channel registration) wake
//! `epoll_wait` immediately, so `drop` joins in microseconds instead
//! of waiting out a poll tick. The [`WAIT_POLL_MS`] timeout remains
//! only as a belt-and-braces re-check of the stop flag.

use std::collections::HashMap;
use std::net::SocketAddrV4;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::sys;
use crate::transport::{IoCounters, TransportBatchSink};
use crate::udp::Datagram;

/// Max datagrams drained per `recvmmsg` call (the slab size).
pub(crate) const RECV_BATCH: usize = 64;
/// Per-datagram buffer size; SDP discovery messages are far below an
/// Ethernet MTU, but descriptor payloads can approach it.
const RECV_BUF: usize = 2048;
/// `epoll_wait` timeout between stop-flag checks. Long, because the
/// wake eventfd — not this timeout — is what makes shutdown and
/// registration prompt; the timeout only bounds a lost wakeup.
const WAIT_POLL_MS: i32 = 500;
/// Reserved epoll token of the wake eventfd (no socket fd can be it).
const WAKE_TOKEN: u64 = u64::MAX;
/// Kernel queue size requested per socket: a loopback flood at 100k+
/// datagrams/s overruns the ~208 KiB default between wakeups.
pub(crate) const SOCKET_BUF: usize = 1 << 21;

struct ReactorChannel {
    socket: Arc<std::net::UdpSocket>,
    local: SocketAddrV4,
    sink: TransportBatchSink,
}

struct ReactorShared {
    stop: Arc<AtomicBool>,
    channels: Mutex<HashMap<u64, Arc<ReactorChannel>>>,
    /// Fds queued for registration; picked up at the top of each loop
    /// iteration so `epoll_ctl(ADD)` races nothing.
    pending: Mutex<Vec<RawFd>>,
    counters: Arc<IoCounters>,
    /// Wakes `epoll_wait` from any thread (shutdown, registration).
    wake: sys::EventFd,
}

/// Handle to the reactor thread. Registering a channel makes its
/// socket's readiness drive batch deliveries to the channel's sink.
pub(crate) struct Reactor {
    shared: Arc<ReactorShared>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Reactor {
    /// Spawns the reactor thread. `stop` is shared with the owning
    /// transport so its `Drop` can halt the thread without a handle.
    pub(crate) fn spawn(
        stop: Arc<AtomicBool>,
        counters: Arc<IoCounters>,
    ) -> std::io::Result<Reactor> {
        let wake = sys::EventFd::new()?;
        let epoll = sys::Epoll::new(64)?;
        epoll.add_edge_in(wake.raw(), WAKE_TOKEN)?;
        let shared = Arc::new(ReactorShared {
            stop,
            channels: Mutex::new(HashMap::new()),
            pending: Mutex::new(Vec::new()),
            counters,
            wake,
        });
        let run_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("indiss-reactor".into())
            .spawn(move || run(&run_shared, epoll))?;
        Ok(Reactor { shared, thread: Mutex::new(Some(thread)) })
    }

    /// Registers a nonblocking socket: batches of datagrams received on
    /// it are delivered to `sink` on the reactor thread.
    pub(crate) fn register(
        &self,
        socket: Arc<std::net::UdpSocket>,
        local: SocketAddrV4,
        sink: TransportBatchSink,
    ) -> std::io::Result<()> {
        socket.set_nonblocking(true)?;
        let _ = sys::set_buffer_sizes(socket.as_raw_fd(), SOCKET_BUF);
        let fd = socket.as_raw_fd();
        self.shared
            .channels
            .lock()
            .expect("reactor channels poisoned")
            .insert(fd as u64, Arc::new(ReactorChannel { socket, local, sink }));
        self.shared.pending.lock().expect("reactor pending poisoned").push(fd);
        // Wake the loop so the new channel is polled immediately
        // instead of after the current epoll_wait times out.
        self.shared.wake.signal();
        Ok(())
    }

    /// Raises the stop flag, wakes the loop and joins the reactor
    /// thread. Idempotent.
    pub(crate) fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.wake.signal();
        if let Some(handle) = self.thread.lock().expect("reactor thread poisoned").take() {
            let _ = handle.join();
        }
        // Sockets close when the channel map (and its Arcs) drop.
        self.shared.channels.lock().expect("reactor channels poisoned").clear();
    }
}

/// The reactor loop: poll, then for each ready channel drain
/// `recvmmsg` batches until `EAGAIN`, delivering one sink call per
/// batch.
fn run(shared: &ReactorShared, mut epoll: sys::Epoll) {
    let mut slab = sys::BatchIo::new(RECV_BATCH, RECV_BUF);
    let counters = &shared.counters;
    while !shared.stop.load(Ordering::Relaxed) {
        for fd in shared.pending.lock().expect("reactor pending poisoned").drain(..) {
            let _ = epoll.add_edge_in(fd, fd as u64);
        }
        let tokens: Vec<u64> = match epoll.wait(WAIT_POLL_MS) {
            Ok(tokens) => tokens.to_vec(),
            Err(_) => break,
        };
        if tokens.is_empty() {
            continue; // timeout: re-check stop flag
        }
        if tokens.contains(&WAKE_TOKEN) {
            // Reset the counter so the next signal's edge fires; the
            // stop flag / pending list carry the actual message.
            shared.wake.drain();
        }
        if tokens.iter().all(|&t| t == WAKE_TOKEN) {
            continue; // pure wake: no socket readiness to drain
        }
        counters.wakeups.fetch_add(1, Ordering::Relaxed);
        for token in tokens {
            if token == WAKE_TOKEN {
                continue;
            }
            let channel = {
                let map = shared.channels.lock().expect("reactor channels poisoned");
                match map.get(&token) {
                    Some(c) => Arc::clone(c),
                    None => continue,
                }
            };
            drain_channel(&channel, &mut slab, counters);
        }
    }
}

/// Edge-triggered drain: keep calling `recvmmsg` until the queue is
/// empty (`EAGAIN`) or a short batch signals it soon will be.
fn drain_channel(channel: &ReactorChannel, slab: &mut sys::BatchIo, counters: &IoCounters) {
    let fd = channel.socket.as_raw_fd();
    loop {
        match slab.recv(fd) {
            Ok(0) => break,
            Ok(n) => {
                let mut batch = Vec::with_capacity(n);
                for i in 0..n {
                    let (src, payload) = slab.datagram(i);
                    batch.push(Datagram { src, dst: channel.local, payload: payload.to_vec() });
                }
                counters.record_recv_batch(n as u64);
                (channel.sink)(batch);
                if n < RECV_BATCH {
                    // Short batch: the queue is (nearly) drained; one
                    // more recvmmsg would most likely just cost EAGAIN.
                    break;
                }
            }
            Err(e) if sys::is_would_block(&e) => {
                counters.recv_eagain.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(_) => break, // socket torn down
        }
    }
}
