//! # indiss-net — deterministic network simulator
//!
//! The substrate every other `indiss` crate runs on: a single-threaded
//! discrete-event simulation of an IPv4 LAN with UDP (unicast + multicast)
//! and a simplified TCP, calibrated to the testbed of the INDISS paper
//! (Bromberg & Issarny, Middleware 2005) — two hosts on a 10 Mb/s LAN.
//!
//! Key properties:
//!
//! * **Virtual time** ([`SimTime`]): no wall clock anywhere; a scenario
//!   that simulates minutes of protocol chatter runs in microseconds.
//! * **Determinism**: all jitter and loss derive from a seeded RNG, so any
//!   measurement is exactly reproducible, and the paper's
//!   median-of-30-trials methodology maps to 30 seeds.
//! * **Multicast groups**: first-class, since every service discovery
//!   protocol in the paper (SSDP, SLP, Jini) is built on administratively
//!   scoped multicast, and INDISS's *monitor component* detects protocols
//!   purely from group/port activity.
//! * **Observability**: a [`TrafficMeter`] (for the paper's bandwidth
//!   arguments, §4.2) and an optional [`PacketTrace`] (used by tests to
//!   assert exact message sequences, e.g. Fig. 4).
//!
//! ## Example
//!
//! ```
//! use indiss_net::{World, Completion};
//! use std::net::{Ipv4Addr, SocketAddrV4};
//!
//! let world = World::new(42);
//! let service = world.add_node("clock-device");
//! let client = world.add_node("slp-client");
//!
//! let ssdp = service.udp_bind(1900)?;
//! ssdp.join_multicast(Ipv4Addr::new(239, 255, 255, 250))?;
//! let heard = Completion::new();
//! let heard2 = heard.clone();
//! ssdp.on_receive(move |_, dgram| heard2.complete(dgram.payload));
//!
//! let sender = client.udp_bind_ephemeral()?;
//! sender.send_to(
//!     b"M-SEARCH * HTTP/1.1\r\n\r\n",
//!     SocketAddrV4::new(Ipv4Addr::new(239, 255, 255, 250), 1900),
//! )?;
//! world.run_until_idle();
//! assert!(heard.is_complete());
//! # Ok::<(), indiss_net::NetError>(())
//! ```

// `deny`, not `forbid`: the hand-written syscall layer in `sys` (the
// reactor's epoll/recvmmsg/sendmmsg FFI — no crates.io, so no `libc`)
// is the single module allowed to opt back in with `allow(unsafe_code)`.
// Everything else in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod batched;
mod completion;
mod error;
mod fault;
mod latency;
mod meter;
mod node;
mod peer;
#[cfg(all(target_os = "linux", feature = "epoll"))]
mod reactor;
#[cfg(all(target_os = "linux", feature = "epoll"))]
mod sys;
mod tcp;
mod time;
mod trace;
mod transport;
mod udp;
mod world;

pub use batched::BatchedTransport;
pub use completion::{Collector, Completion};
pub use error::{NetError, NetResult};
pub use fault::{FaultPlan, FaultTransport};
pub use latency::LinkConfig;
pub use meter::{MeterRecord, MeterTransport, TrafficMeter};
pub use node::{Node, NodeId};
pub use peer::PeerChannel;
pub use tcp::{TcpListener, TcpListenerId, TcpStream, TcpStreamId};
pub use time::SimTime;
pub use trace::{PacketTrace, TraceEntry, TraceOutcome};
pub use transport::{
    BindSpec, FaultStats, IoStats, SimTransport, Transport, TransportBatchSink, TransportKind,
    TransportSink, TransportSocket, UdpTransport,
};
pub use udp::{Datagram, UdpSocket, UdpSocketId};
pub use world::{World, WorldConfig};
