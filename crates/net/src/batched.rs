//! `BatchedTransport`: the reactor-backed real-socket transport.
//!
//! Same seam, same loopback confinement, same port-offset rules as
//! [`crate::UdpTransport`] — but instead of one blocking recv thread
//! per channel, every channel registers its nonblocking socket with a
//! single [`crate::reactor`] thread that drains readiness in
//! `recvmmsg` batches, and replies flush through `sendmmsg`
//! ([`TransportSocket::send_batch`]). On non-Linux targets, or when the
//! `epoll` feature is disabled, the same type degrades to a portable
//! one-at-a-time fallback: a recv thread per channel (exactly the
//! [`crate::UdpTransport`] shape) delivering singleton batches and
//! counting them into the same [`IoStats`], so callers observe one
//! behavior contract on every platform.

use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::{NetError, NetResult};
use crate::transport::{
    BindSpec, IoCounters, IoStats, Transport, TransportBatchSink, TransportKind, TransportSink,
    TransportSocket,
};
use crate::udp::Datagram;

#[cfg(all(target_os = "linux", feature = "epoll"))]
use crate::reactor::Reactor;
#[cfg(all(target_os = "linux", feature = "epoll"))]
use crate::sys;

/// How long a fallback recv thread blocks per `recv_from` before
/// re-checking the shutdown flag (mirrors `UdpTransport`).
#[cfg(not(all(target_os = "linux", feature = "epoll")))]
const RECV_POLL: std::time::Duration = std::time::Duration::from_millis(25);

struct BatchedShared {
    /// Shared with the reactor (or every fallback recv thread) so
    /// dropping the last transport handle stops them even without an
    /// explicit `shutdown()` call.
    stop: Arc<AtomicBool>,
    counters: Arc<IoCounters>,
    #[cfg(all(target_os = "linux", feature = "epoll"))]
    reactor: Mutex<Option<Reactor>>,
    #[cfg(not(all(target_os = "linux", feature = "epoll")))]
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for BatchedShared {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // On the reactor path a full shutdown is safe here (the reactor
        // thread holds no Arc to this block) and prompt: the wake
        // eventfd kicks `epoll_wait` instead of waiting out its
        // timeout. Fallback recv threads only watch the flag.
        #[cfg(all(target_os = "linux", feature = "epoll"))]
        if let Ok(mut guard) = self.reactor.lock() {
            if let Some(reactor) = guard.take() {
                reactor.shutdown();
            }
        }
    }
}

/// The batched real-socket transport. See the module docs.
#[derive(Clone)]
pub struct BatchedTransport {
    bind_ip: Ipv4Addr,
    port_offset: u16,
    shared: Arc<BatchedShared>,
}

impl BatchedTransport {
    /// A loopback-confined batched transport with no port offset.
    pub fn loopback() -> BatchedTransport {
        BatchedTransport::with_offset(0)
    }

    /// A loopback-confined batched transport whose protocol ports are
    /// shifted by `offset` (same rules as
    /// [`crate::UdpTransport::with_offset`]).
    pub fn with_offset(offset: u16) -> BatchedTransport {
        BatchedTransport::new(Ipv4Addr::LOCALHOST, offset)
    }

    /// A batched transport bound to `bind_ip` with protocol ports
    /// shifted by `offset`.
    pub fn new(bind_ip: Ipv4Addr, offset: u16) -> BatchedTransport {
        BatchedTransport {
            bind_ip,
            port_offset: offset,
            shared: Arc::new(BatchedShared {
                stop: Arc::new(AtomicBool::new(false)),
                counters: Arc::new(IoCounters::default()),
                #[cfg(all(target_os = "linux", feature = "epoll"))]
                reactor: Mutex::new(None),
                #[cfg(not(all(target_os = "linux", feature = "epoll")))]
                threads: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Binds the std socket and joins groups — identical policy to
    /// `UdpTransport::bind_socket` up to the recv mechanism.
    fn bind_std(
        &self,
        port: u16,
        groups: &[Ipv4Addr],
    ) -> NetResult<(Arc<std::net::UdpSocket>, SocketAddrV4, bool)> {
        let io_err =
            |op: &'static str| move |e: std::io::Error| NetError::Io { op, message: e.to_string() };
        let socket = std::net::UdpSocket::bind((self.bind_ip, port)).map_err(io_err("bind"))?;
        let local = match socket.local_addr().map_err(io_err("local_addr"))? {
            SocketAddr::V4(a) => a,
            SocketAddr::V6(a) => SocketAddrV4::new(Ipv4Addr::LOCALHOST, a.port()),
        };
        let mut joined_all = true;
        for group in groups {
            if socket.join_multicast_v4(group, &self.bind_ip).is_err() {
                joined_all = false;
            }
        }
        Ok((Arc::new(socket), local, joined_all))
    }

    #[cfg(all(target_os = "linux", feature = "epoll"))]
    fn attach(
        &self,
        socket: Arc<std::net::UdpSocket>,
        local: SocketAddrV4,
        sink: TransportBatchSink,
        _label: &str,
    ) -> NetResult<()> {
        let io_err =
            |op: &'static str| move |e: std::io::Error| NetError::Io { op, message: e.to_string() };
        let mut guard = self.shared.reactor.lock().expect("reactor slot poisoned");
        if guard.is_none() {
            *guard = Some(
                Reactor::spawn(Arc::clone(&self.shared.stop), Arc::clone(&self.shared.counters))
                    .map_err(io_err("reactor"))?,
            );
        }
        guard
            .as_ref()
            .expect("reactor just spawned")
            .register(socket, local, sink)
            .map_err(io_err("register"))
    }

    /// Portable fallback: one blocking recv thread per channel (the
    /// `UdpTransport` shape) delivering singleton batches and counting
    /// them into the shared [`IoCounters`].
    #[cfg(not(all(target_os = "linux", feature = "epoll")))]
    fn attach(
        &self,
        socket: Arc<std::net::UdpSocket>,
        local: SocketAddrV4,
        sink: TransportBatchSink,
        label: &str,
    ) -> NetResult<()> {
        let io_err =
            |op: &'static str| move |e: std::io::Error| NetError::Io { op, message: e.to_string() };
        socket.set_read_timeout(Some(RECV_POLL)).map_err(io_err("set_read_timeout"))?;
        let stop = Arc::clone(&self.shared.stop);
        let counters = Arc::clone(&self.shared.counters);
        let handle = std::thread::Builder::new()
            .name(format!("indiss-batched-{label}"))
            .spawn(move || {
                let mut buf = vec![0u8; 8192];
                while !stop.load(Ordering::Relaxed) {
                    match socket.recv_from(&mut buf) {
                        Ok((len, SocketAddr::V4(src))) => {
                            counters.wakeups.fetch_add(1, Ordering::Relaxed);
                            counters.record_recv_batch(1);
                            sink(vec![Datagram { src, dst: local, payload: buf[..len].to_vec() }]);
                        }
                        Ok((_, SocketAddr::V6(_))) => {} // v4-only seam
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock
                                    | std::io::ErrorKind::TimedOut
                                    | std::io::ErrorKind::Interrupted
                            ) => {}
                        Err(_) => break, // socket torn down
                    }
                }
            })
            .map_err(io_err("spawn"))?;
        self.shared.threads.lock().expect("batched thread list poisoned").push(handle);
        Ok(())
    }

    fn bind_socket_batched(
        &self,
        port: u16,
        groups: &[Ipv4Addr],
        sink: TransportBatchSink,
        label: &str,
    ) -> NetResult<Arc<dyn TransportSocket>> {
        let (socket, local, joined_all) = self.bind_std(port, groups)?;
        self.attach(Arc::clone(&socket), local, sink, label)?;
        Ok(Arc::new(BatchedSocketHandle {
            socket,
            local,
            joined_all,
            counters: Arc::clone(&self.shared.counters),
        }))
    }
}

struct BatchedSocketHandle {
    socket: Arc<std::net::UdpSocket>,
    local: SocketAddrV4,
    joined_all: bool,
    counters: Arc<IoCounters>,
}

impl TransportSocket for BatchedSocketHandle {
    fn send_to(&self, payload: &[u8], dst: SocketAddrV4) -> NetResult<usize> {
        // The socket is nonblocking under the reactor; a full send
        // queue surfaces as WouldBlock, which for UDP means "dropped" —
        // report it as sent 0 bytes worth of error like any send fault.
        self.socket
            .send_to(payload, SocketAddr::V4(dst))
            .map_err(|e| NetError::Io { op: "send_to", message: e.to_string() })
    }

    fn local_addr(&self) -> SocketAddrV4 {
        self.local
    }

    fn multicast_ready(&self) -> bool {
        self.joined_all
    }

    /// One `sendmmsg` flush per call on the native path.
    #[cfg(all(target_os = "linux", feature = "epoll"))]
    fn send_batch(&self, batch: &[(Vec<u8>, SocketAddrV4)]) -> usize {
        use std::os::fd::AsRawFd;
        let mut sent = 0;
        let mut remaining = batch;
        while !remaining.is_empty() {
            self.counters.batch_flushes.fetch_add(1, Ordering::Relaxed);
            match sys::send_batch(self.socket.as_raw_fd(), remaining) {
                Ok(0) => break,
                Ok(n) => {
                    sent += n;
                    remaining = &remaining[n..];
                }
                Err(e) if sys::is_would_block(&e) => {
                    // Kernel send queue full: yield once, then give the
                    // rest up — UDP replies are droppable by contract.
                    std::thread::yield_now();
                    if let Ok(n) = sys::send_batch(self.socket.as_raw_fd(), remaining) {
                        sent += n;
                    }
                    break;
                }
                Err(_) => break,
            }
        }
        sent
    }

    /// Fallback: a logical flush is one pass over the batch.
    #[cfg(not(all(target_os = "linux", feature = "epoll")))]
    fn send_batch(&self, batch: &[(Vec<u8>, SocketAddrV4)]) -> usize {
        self.counters.batch_flushes.fetch_add(1, Ordering::Relaxed);
        batch.iter().filter(|(payload, dst)| self.send_to(payload, *dst).is_ok()).count()
    }
}

impl Transport for BatchedTransport {
    fn kind(&self) -> TransportKind {
        // Same wire contract as `UdpTransport` — real loopback sockets
        // with offset ports — so callers that branch on kind (fetchers,
        // bench metadata) treat it identically.
        TransportKind::Udp
    }

    fn bind(&self, spec: &BindSpec, sink: TransportSink) -> NetResult<Arc<dyn TransportSocket>> {
        self.bind_batched(
            spec,
            Arc::new(move |batch: Vec<Datagram>| {
                for dgram in batch {
                    sink(dgram);
                }
            }),
        )
    }

    fn bind_batched(
        &self,
        spec: &BindSpec,
        sink: TransportBatchSink,
    ) -> NetResult<Arc<dyn TransportSocket>> {
        let port = self.map_port(spec.port);
        self.bind_socket_batched(port, &spec.groups, sink, &port.to_string())
    }

    fn bind_client(&self, sink: TransportSink) -> NetResult<Arc<dyn TransportSocket>> {
        self.bind_client_batched(Arc::new(move |batch: Vec<Datagram>| {
            for dgram in batch {
                sink(dgram);
            }
        }))
    }

    fn bind_client_batched(&self, sink: TransportBatchSink) -> NetResult<Arc<dyn TransportSocket>> {
        self.bind_socket_batched(0, &[], sink, "client")
    }

    fn map_port(&self, port: u16) -> u16 {
        port.wrapping_add(self.port_offset)
    }

    fn io_stats(&self) -> Option<IoStats> {
        Some(self.shared.counters.snapshot())
    }

    fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        #[cfg(all(target_os = "linux", feature = "epoll"))]
        {
            if let Some(reactor) = self.shared.reactor.lock().expect("reactor slot poisoned").take()
            {
                reactor.shutdown();
            }
        }
        #[cfg(not(all(target_os = "linux", feature = "epoll")))]
        {
            let threads: Vec<_> = std::mem::take(
                &mut *self.shared.threads.lock().expect("batched thread list poisoned"),
            );
            for handle in threads {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    fn batch_sink() -> (TransportBatchSink, mpsc::Receiver<Vec<Datagram>>) {
        let (tx, rx) = mpsc::channel();
        let sink: TransportBatchSink = Arc::new(move |batch| {
            let _ = tx.send(batch);
        });
        (sink, rx)
    }

    /// The batched transport round-trips datagrams over real loopback
    /// sockets and reports reactor activity in `io_stats`. Skipped (not
    /// failed) when the environment forbids binding.
    #[test]
    fn batched_round_trips_and_counts_batches() {
        let transport = BatchedTransport::with_offset(23_500);
        let (sink, rx) = batch_sink();
        let server = match transport.bind_batched(&BindSpec { port: 427, groups: vec![] }, sink) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("skipping batched_round_trips_and_counts_batches: {e}");
                return;
            }
        };
        assert_eq!(server.local_addr().port(), 23_927, "offset applied");
        let (client_sink, client_rx) = batch_sink();
        let client = transport.bind_client_batched(client_sink).unwrap();

        let burst = 12usize;
        let msgs: Vec<(Vec<u8>, SocketAddrV4)> = (0..burst)
            .map(|i| (format!("SRVRQST {i}").into_bytes(), server.local_addr()))
            .collect();
        let sent = client.send_batch(&msgs);
        assert_eq!(sent, burst, "loopback accepts the whole burst");

        let mut heard = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while heard.len() < burst && std::time::Instant::now() < deadline {
            if let Ok(batch) = rx.recv_timeout(Duration::from_millis(200)) {
                heard.extend(batch);
            }
        }
        assert_eq!(heard.len(), burst, "server heard the full burst");
        assert!(heard.iter().all(|d| d.src == client.local_addr()));

        // Reply path back through send_batch.
        let replies: Vec<(Vec<u8>, SocketAddrV4)> =
            heard.iter().map(|d| (b"SRVRPLY".to_vec(), d.src)).collect();
        assert_eq!(server.send_batch(&replies), burst);
        let mut got = 0;
        while got < burst && std::time::Instant::now() < deadline {
            if let Ok(batch) = client_rx.recv_timeout(Duration::from_millis(200)) {
                got += batch.len();
            }
        }
        assert_eq!(got, burst, "client heard every reply");

        let stats = transport.io_stats().expect("batched transport reports io stats");
        assert!(stats.reactor_wakeups >= 1, "at least one wakeup: {stats:?}");
        let batched: u64 = stats.recv_batches();
        assert!(batched >= 1, "at least one recv batch recorded: {stats:?}");
        assert!(stats.batch_sends_flushed >= 2, "both send_batch calls flushed: {stats:?}");
        transport.shutdown();
    }

    /// Dropping without `shutdown()` must stop the reactor (or the
    /// fallback threads) and release the bound ports.
    #[test]
    fn batched_drop_without_shutdown_releases_ports() {
        let offset = 23_600;
        {
            let transport = BatchedTransport::with_offset(offset);
            if transport
                .bind_batched(&BindSpec { port: 600, groups: vec![] }, Arc::new(|_| {}))
                .is_err()
            {
                eprintln!(
                    "skipping batched_drop_without_shutdown_releases_ports: no loopback bind"
                );
                return;
            }
            // Dropped here with no shutdown() call.
        }
        let retry = BatchedTransport::with_offset(offset);
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            match retry.bind_batched(&BindSpec { port: 600, groups: vec![] }, Arc::new(|_| {})) {
                Ok(_) => break,
                Err(e) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "port never released after drop-without-shutdown: {e}"
                    );
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
        retry.shutdown();
    }

    /// Shutdown must not wait out the reactor's poll timeout: the wake
    /// eventfd (or the fallback threads' short recv timeout) bounds the
    /// join far below the 500 ms `epoll_wait` tick.
    #[test]
    fn shutdown_joins_well_under_the_poll_tick() {
        let transport = BatchedTransport::with_offset(23_700);
        if transport
            .bind_batched(&BindSpec { port: 427, groups: vec![] }, Arc::new(|_| {}))
            .is_err()
        {
            eprintln!("skipping shutdown_joins_well_under_the_poll_tick: no loopback bind");
            return;
        }
        // Let the reactor (or fallback thread) settle into its wait.
        std::thread::sleep(Duration::from_millis(50));
        let started = std::time::Instant::now();
        transport.shutdown();
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_millis(250),
            "shutdown waited out the poll tick: {elapsed:?}"
        );
    }

    #[test]
    fn batched_transport_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BatchedTransport>();
    }
}
