//! Raw Linux syscall layer for the batched I/O reactor.
//!
//! No crates.io access means no `libc`/`mio`/`tokio`: the reactor owns
//! its syscall surface with hand-written FFI declarations. This module
//! is the **only** place in the workspace where `unsafe` is permitted
//! (the crate is `#![deny(unsafe_code)]`; everything else forbids it),
//! and every raw call is wrapped in a safe type before it leaves:
//!
//! * [`Epoll`] — `epoll_create1`/`epoll_ctl`/`epoll_wait` with a typed
//!   event buffer, used edge-triggered by the reactor.
//! * [`BatchIo`] — pooled receive slab (buffers + `iovec`/`mmsghdr`
//!   arrays rebuilt per call) driving `recvmmsg`, plus a `sendmmsg`
//!   flush over caller-owned payloads.
//! * [`set_buffer_sizes`] — `SO_RCVBUF`/`SO_SNDBUF`, because a batched
//!   loopback flood overruns the default 208 KiB receive queue long
//!   before the reactor saturates.
//!
//! Struct layouts are the x86-64 Linux ABI (`epoll_event` is packed on
//! x86-64; `msghdr` uses `size_t` lengths). The whole module is gated
//! on `target_os = "linux"` + the `epoll` feature; other builds use the
//! portable fallback in [`crate::transport`] and never compile this.

#![allow(unsafe_code)]

use std::io;
use std::net::{Ipv4Addr, SocketAddrV4};
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_uint, c_void};

// -- constants (uapi/linux) -------------------------------------------

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
/// Readable.
pub const EPOLLIN: u32 = 0x001;
/// Edge-triggered: one event per readiness transition, so the reactor
/// must drain to `EAGAIN` before the next `epoll_wait`.
pub const EPOLLET: u32 = 1 << 31;

const MSG_DONTWAIT: c_int = 0x40;
const SOL_SOCKET: c_int = 1;
const SO_SNDBUF: c_int = 7;
const SO_RCVBUF: c_int = 8;
const AF_INET: u16 = 2;

// -- ABI structs ------------------------------------------------------

/// `struct epoll_event` — packed on x86-64 (the kernel ABI; a natural
/// layout would mis-align `data` against what `epoll_wait` writes).
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct IoVec {
    iov_base: *mut c_void,
    iov_len: usize,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct MsgHdr {
    msg_name: *mut c_void,
    msg_namelen: u32,
    msg_iov: *mut IoVec,
    msg_iovlen: usize,
    msg_control: *mut c_void,
    msg_controllen: usize,
    msg_flags: c_int,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct MmsgHdr {
    msg_hdr: MsgHdr,
    msg_len: c_uint,
}

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct SockAddrIn {
    sin_family: u16,
    /// Big-endian port.
    sin_port: u16,
    /// Big-endian address.
    sin_addr: u32,
    sin_zero: [u8; 8],
}

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn recvmmsg(
        sockfd: c_int,
        msgvec: *mut MmsgHdr,
        vlen: c_uint,
        flags: c_int,
        timeout: *mut c_void,
    ) -> c_int;
    fn sendmmsg(sockfd: c_int, msgvec: *mut MmsgHdr, vlen: c_uint, flags: c_int) -> c_int;
    fn setsockopt(
        sockfd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
}

fn check(ret: c_int, _op: &'static str) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// True for the errno kinds that mean "nothing there, try later".
pub fn is_would_block(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted)
}

fn to_sockaddr(addr: SocketAddrV4) -> SockAddrIn {
    SockAddrIn {
        sin_family: AF_INET,
        sin_port: addr.port().to_be(),
        sin_addr: u32::from(*addr.ip()).to_be(),
        sin_zero: [0; 8],
    }
}

fn from_sockaddr(raw: &SockAddrIn) -> SocketAddrV4 {
    SocketAddrV4::new(Ipv4Addr::from(u32::from_be(raw.sin_addr)), u16::from_be(raw.sin_port))
}

// -- epoll ------------------------------------------------------------

/// An owned epoll instance. Tokens are caller-chosen `u64`s (the
/// reactor uses the registered socket's fd).
pub struct Epoll {
    fd: RawFd,
    /// Reused event buffer for [`Epoll::wait`].
    events: Vec<u64>,
    capacity: usize,
}

impl Epoll {
    /// Creates the epoll fd (`EPOLL_CLOEXEC`) with room for `capacity`
    /// events per wait.
    pub fn new(capacity: usize) -> io::Result<Epoll> {
        let fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) }, "epoll_create1")?;
        Ok(Epoll { fd, events: Vec::new(), capacity: capacity.max(1) })
    }

    /// Registers `fd` for edge-triggered readability with `token`.
    pub fn add_edge_in(&self, fd: RawFd, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: EPOLLIN | EPOLLET, data: token };
        check(unsafe { epoll_ctl(self.fd, EPOLL_CTL_ADD, fd, &mut ev) }, "epoll_ctl")?;
        Ok(())
    }

    /// Waits up to `timeout_ms` and returns the tokens of ready fds.
    /// An empty slice means the timeout elapsed.
    pub fn wait(&mut self, timeout_ms: i32) -> io::Result<&[u64]> {
        let mut raw = vec![EpollEvent { events: 0, data: 0 }; self.capacity];
        let n = loop {
            let r = unsafe {
                epoll_wait(self.fd, raw.as_mut_ptr(), self.capacity as c_int, timeout_ms)
            };
            if r >= 0 {
                break r as usize;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        };
        self.events.clear();
        self.events.extend(raw[..n].iter().map(|ev| ev.data));
        Ok(&self.events)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

// -- eventfd ----------------------------------------------------------

/// A kernel event counter the reactor registers alongside its sockets,
/// so a [`EventFd::signal`] from any thread wakes `epoll_wait`
/// immediately — shutdown and channel registration no longer wait out
/// the poll timeout.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// A nonblocking, close-on-exec eventfd with a zero counter.
    pub fn new() -> io::Result<EventFd> {
        let fd = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }, "eventfd")?;
        Ok(EventFd { fd })
    }

    /// The raw fd, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Adds 1 to the counter, marking the fd readable. Best-effort:
    /// a full counter (u64::MAX-1 pending signals) still wakes.
    pub fn signal(&self) {
        let one: u64 = 1;
        let _ = unsafe { write(self.fd, (&one as *const u64).cast::<c_void>(), 8) };
    }

    /// Resets the counter so the edge can fire again. Best-effort.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        let _ = unsafe { read(self.fd, (&mut buf as *mut u64).cast::<c_void>(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

// -- batched datagram I/O ---------------------------------------------

/// Pooled receive slab: `batch` fixed buffers plus the `sockaddr`
/// storage `recvmmsg` scatters into. Allocated once per reactor and
/// reused for every drain; payloads are copied out into `Vec`s at the
/// seam (the slab never leaves this module).
pub struct BatchIo {
    bufs: Vec<Vec<u8>>,
    addrs: Vec<SockAddrIn>,
    lens: Vec<usize>,
}

impl BatchIo {
    /// A slab of `batch` buffers of `buf_size` bytes each.
    pub fn new(batch: usize, buf_size: usize) -> BatchIo {
        let batch = batch.max(1);
        BatchIo {
            bufs: (0..batch).map(|_| vec![0u8; buf_size.max(64)]).collect(),
            addrs: vec![SockAddrIn::default(); batch],
            lens: vec![0; batch],
        }
    }

    /// One `recvmmsg` on nonblocking `fd`: up to the slab's batch size
    /// in a single syscall. Returns the number received; `WouldBlock`
    /// when the socket queue is empty (the edge-drain terminator).
    pub fn recv(&mut self, fd: RawFd) -> io::Result<usize> {
        let batch = self.bufs.len();
        let mut iovecs: Vec<IoVec> = self
            .bufs
            .iter_mut()
            .map(|b| IoVec { iov_base: b.as_mut_ptr().cast::<c_void>(), iov_len: b.len() })
            .collect();
        let mut hdrs: Vec<MmsgHdr> = (0..batch)
            .map(|i| MmsgHdr {
                msg_hdr: MsgHdr {
                    msg_name: (&mut self.addrs[i] as *mut SockAddrIn).cast::<c_void>(),
                    msg_namelen: std::mem::size_of::<SockAddrIn>() as u32,
                    msg_iov: &mut iovecs[i],
                    msg_iovlen: 1,
                    msg_control: std::ptr::null_mut(),
                    msg_controllen: 0,
                    msg_flags: 0,
                },
                msg_len: 0,
            })
            .collect();
        let n = check(
            unsafe {
                recvmmsg(fd, hdrs.as_mut_ptr(), batch as c_uint, MSG_DONTWAIT, std::ptr::null_mut())
            },
            "recvmmsg",
        )? as usize;
        for (i, hdr) in hdrs.iter().enumerate().take(n) {
            self.lens[i] = (hdr.msg_len as usize).min(self.bufs[i].len());
        }
        Ok(n)
    }

    /// The `i`-th received datagram of the last [`BatchIo::recv`]:
    /// source address and payload slice into the slab.
    pub fn datagram(&self, i: usize) -> (SocketAddrV4, &[u8]) {
        (from_sockaddr(&self.addrs[i]), &self.bufs[i][..self.lens[i]])
    }
}

/// One `sendmmsg` flush of `msgs` on `fd`. Returns how many of the
/// *leading* messages the kernel accepted (sendmmsg sends a prefix);
/// `WouldBlock` when the send queue is full and nothing went out.
pub fn send_batch(fd: RawFd, msgs: &[(Vec<u8>, SocketAddrV4)]) -> io::Result<usize> {
    if msgs.is_empty() {
        return Ok(0);
    }
    let mut addrs: Vec<SockAddrIn> = msgs.iter().map(|(_, dst)| to_sockaddr(*dst)).collect();
    let mut iovecs: Vec<IoVec> = msgs
        .iter()
        .map(|(payload, _)| IoVec {
            iov_base: payload.as_ptr().cast_mut().cast::<c_void>(),
            iov_len: payload.len(),
        })
        .collect();
    let mut hdrs: Vec<MmsgHdr> = (0..msgs.len())
        .map(|i| MmsgHdr {
            msg_hdr: MsgHdr {
                msg_name: (&mut addrs[i] as *mut SockAddrIn).cast::<c_void>(),
                msg_namelen: std::mem::size_of::<SockAddrIn>() as u32,
                msg_iov: &mut iovecs[i],
                msg_iovlen: 1,
                msg_control: std::ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            },
            msg_len: 0,
        })
        .collect();
    let n = check(
        unsafe { sendmmsg(fd, hdrs.as_mut_ptr(), msgs.len() as c_uint, MSG_DONTWAIT) },
        "sendmmsg",
    )?;
    Ok(n as usize)
}

/// Grows the socket's kernel queues (`SO_RCVBUF`/`SO_SNDBUF`) to
/// `bytes`. Best-effort: the kernel clamps to `net.core.*mem_max`.
pub fn set_buffer_sizes(fd: RawFd, bytes: usize) -> io::Result<()> {
    let val = bytes.min(c_int::MAX as usize) as c_int;
    for opt in [SO_RCVBUF, SO_SNDBUF] {
        check(
            unsafe {
                setsockopt(
                    fd,
                    SOL_SOCKET,
                    opt,
                    (&val as *const c_int).cast::<c_void>(),
                    std::mem::size_of::<c_int>() as u32,
                )
            },
            "setsockopt",
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::fd::AsRawFd;

    /// The slab round-trips real datagrams through the kernel: bind two
    /// loopback sockets, sendmmsg a burst one way, epoll-wait on the
    /// receiver, recvmmsg the burst back, and compare payload + source.
    #[test]
    fn mmsg_round_trip_over_loopback() {
        let a = match std::net::UdpSocket::bind("127.0.0.1:0") {
            Ok(s) => s,
            Err(e) => {
                eprintln!("skipping mmsg_round_trip_over_loopback: {e}");
                return;
            }
        };
        let b = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        b.set_nonblocking(true).unwrap();
        set_buffer_sizes(b.as_raw_fd(), 1 << 20).unwrap();
        let dst = match b.local_addr().unwrap() {
            std::net::SocketAddr::V4(v4) => v4,
            _ => unreachable!("bound v4"),
        };
        let src = match a.local_addr().unwrap() {
            std::net::SocketAddr::V4(v4) => v4,
            _ => unreachable!("bound v4"),
        };

        let msgs: Vec<(Vec<u8>, SocketAddrV4)> =
            (0..10u8).map(|i| (vec![i; (i as usize) + 1], dst)).collect();
        let sent = send_batch(a.as_raw_fd(), &msgs).unwrap();
        assert_eq!(sent, msgs.len(), "loopback accepts the whole burst");

        let mut epoll = Epoll::new(8).unwrap();
        epoll.add_edge_in(b.as_raw_fd(), 7).unwrap();
        let tokens = epoll.wait(2_000).unwrap();
        assert_eq!(tokens, &[7], "receiver readable");

        let mut slab = BatchIo::new(16, 2048);
        let mut got = Vec::new();
        loop {
            match slab.recv(b.as_raw_fd()) {
                Ok(n) => {
                    for i in 0..n {
                        let (from, payload) = slab.datagram(i);
                        assert_eq!(from, src);
                        got.push(payload.to_vec());
                    }
                    if got.len() >= msgs.len() {
                        break;
                    }
                }
                Err(e) if is_would_block(&e) => {
                    // Kernel may still be delivering; brief spin.
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(e) => panic!("recvmmsg failed: {e}"),
            }
        }
        let expected: Vec<Vec<u8>> = msgs.into_iter().map(|(p, _)| p).collect();
        assert_eq!(got, expected, "payloads arrive intact and in order");
    }
}
