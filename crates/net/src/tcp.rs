//! Simplified TCP: connection establishment, ordered reliable byte
//! delivery, and half-close — enough to carry HTTP for UPnP description
//! fetches (paper §2.4) without modelling congestion control.
//!
//! Connection setup costs one round trip (SYN out, accept at the server on
//! SYN arrival, connected callback at the client one RTT after `connect`).
//! Each `send` is delivered as one in-order segment after the link delay.

use std::fmt;
use std::net::SocketAddrV4;

use crate::error::NetResult;
use crate::world::World;

/// Identifier of a TCP listener within its world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcpListenerId(pub(crate) usize);

/// Identifier of one TCP stream endpoint within its world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcpStreamId(pub(crate) usize);

/// Handle to a listening TCP port.
#[derive(Clone)]
pub struct TcpListener {
    world: World,
    id: TcpListenerId,
}

impl TcpListener {
    pub(crate) fn from_parts(world: World, id: TcpListenerId) -> Self {
        TcpListener { world, id }
    }

    /// The listener's identifier.
    pub fn id(&self) -> TcpListenerId {
        self.id
    }

    /// Local address of the listener.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::SocketClosed`] if the listener was closed.
    pub fn local_addr(&self) -> NetResult<SocketAddrV4> {
        self.world.tcp_listener_addr(self.id)
    }

    /// Installs the accept callback; it runs once per inbound connection
    /// with the server-side stream.
    pub fn on_accept<F>(&self, f: F)
    where
        F: FnMut(&World, TcpStream) + 'static,
    {
        self.world.tcp_set_accept_handler(self.id, Box::new(f));
    }

    /// Stops listening. Established streams are unaffected.
    pub fn close(&self) {
        self.world.tcp_listener_close(self.id);
    }
}

impl fmt::Debug for TcpListener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpListener")
            .field("id", &self.id)
            .field("addr", &self.local_addr().ok())
            .finish()
    }
}

/// Handle to one endpoint of an established TCP connection.
///
/// Cloning clones the handle. The connection stays open until either side
/// calls [`TcpStream::close`].
#[derive(Clone)]
pub struct TcpStream {
    world: World,
    id: TcpStreamId,
}

impl TcpStream {
    pub(crate) fn from_parts(world: World, id: TcpStreamId) -> Self {
        TcpStream { world, id }
    }

    /// This endpoint's identifier.
    pub fn id(&self) -> TcpStreamId {
        self.id
    }

    /// Local address of this endpoint.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::ConnectionClosed`] if the stream is closed.
    pub fn local_addr(&self) -> NetResult<SocketAddrV4> {
        self.world.tcp_stream_local(self.id)
    }

    /// Remote peer's address.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::ConnectionClosed`] if the stream is closed.
    pub fn peer_addr(&self) -> NetResult<SocketAddrV4> {
        self.world.tcp_stream_peer(self.id)
    }

    /// Sends bytes to the peer; they arrive in order after the link delay.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::ConnectionClosed`] if either side closed.
    pub fn send(&self, bytes: &[u8]) -> NetResult<()> {
        self.world.tcp_send(self.id, bytes)
    }

    /// Installs the data callback, replacing any previous one. Runs once
    /// per delivered segment.
    pub fn on_receive<F>(&self, f: F)
    where
        F: FnMut(&World, Vec<u8>) + 'static,
    {
        self.world.tcp_set_recv_handler(self.id, Box::new(f));
    }

    /// Installs a callback invoked when the *peer* closes the connection.
    pub fn on_close<F>(&self, f: F)
    where
        F: FnMut(&World) + 'static,
    {
        self.world.tcp_set_close_handler(self.id, Box::new(f));
    }

    /// Closes this endpoint. In-flight segments are still delivered; the
    /// peer's close callback fires after the link delay.
    pub fn close(&self) {
        self.world.tcp_close(self.id);
    }
}

impl fmt::Debug for TcpStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpStream")
            .field("id", &self.id)
            .field("local", &self.local_addr().ok())
            .field("peer", &self.peer_addr().ok())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use crate::{Collector, Completion};

    #[test]
    fn connect_send_receive_roundtrip() {
        let world = World::new(9);
        let server = world.add_node("server");
        let client = world.add_node("client");
        let listener = server.tcp_listen(8080).unwrap();
        listener.on_accept(|_, stream| {
            let echo = stream.clone();
            stream.on_receive(move |_, bytes| {
                let mut reply = b"echo:".to_vec();
                reply.extend_from_slice(&bytes);
                echo.send(&reply).unwrap();
            });
        });

        let got: Completion<Vec<u8>> = Completion::new();
        let got2 = got.clone();
        let server_addr = SocketAddrV4::new(server.addr(), 8080);
        client.tcp_connect(server_addr, move |_, stream| {
            let stream = stream.expect("connected");
            let got3 = got2.clone();
            stream.on_receive(move |_, bytes| got3.complete(bytes));
            stream.send(b"hello").unwrap();
        });
        world.run_until_idle();
        assert_eq!(got.take().unwrap(), b"echo:hello");
    }

    #[test]
    fn connect_to_closed_port_is_refused() {
        let world = World::new(9);
        let server = world.add_node("server");
        let client = world.add_node("client");
        let result: Completion<bool> = Completion::new();
        let result2 = result.clone();
        client.tcp_connect(SocketAddrV4::new(server.addr(), 8080), move |_, stream| {
            result2.complete(stream.is_err());
        });
        world.run_until_idle();
        assert_eq!(result.take(), Some(true));
    }

    #[test]
    fn connect_to_unknown_host_fails() {
        let world = World::new(9);
        let client = world.add_node("client");
        let result: Completion<bool> = Completion::new();
        let result2 = result.clone();
        let bogus = SocketAddrV4::new(std::net::Ipv4Addr::new(10, 9, 9, 9), 80);
        client.tcp_connect(bogus, move |_, stream| result2.complete(stream.is_err()));
        world.run_until_idle();
        assert_eq!(result.take(), Some(true));
    }

    #[test]
    fn segments_arrive_in_order() {
        let world = World::new(9);
        let server = world.add_node("server");
        let client = world.add_node("client");
        let listener = server.tcp_listen(80).unwrap();
        let seen: Collector<Vec<u8>> = Collector::new();
        let seen2 = seen.clone();
        listener.on_accept(move |_, stream| {
            let seen3 = seen2.clone();
            stream.on_receive(move |_, bytes| seen3.push(bytes));
        });
        client.tcp_connect(SocketAddrV4::new(server.addr(), 80), |_, stream| {
            let stream = stream.unwrap();
            for i in 0..5u8 {
                stream.send(&[i]).unwrap();
            }
        });
        world.run_until_idle();
        assert_eq!(seen.snapshot(), vec![vec![0], vec![1], vec![2], vec![3], vec![4]]);
    }

    #[test]
    fn close_notifies_peer_and_stops_sends() {
        let world = World::new(9);
        let server = world.add_node("server");
        let client = world.add_node("client");
        let listener = server.tcp_listen(80).unwrap();
        let server_stream: Completion<TcpStream> = Completion::new();
        let ss2 = server_stream.clone();
        listener.on_accept(move |_, stream| ss2.complete(stream));
        let closed: Completion<()> = Completion::new();
        let closed2 = closed.clone();
        client.tcp_connect(SocketAddrV4::new(server.addr(), 80), move |_, stream| {
            let stream = stream.unwrap();
            let closed3 = closed2.clone();
            stream.on_close(move |_| closed3.complete(()));
        });
        world.run_until_idle();
        let ss = server_stream.take().expect("accepted");
        ss.close();
        world.run_until_idle();
        assert!(closed.is_complete(), "client saw the close");
        assert!(ss.send(b"x").is_err(), "closed endpoint rejects send");
    }

    #[test]
    fn peer_addresses_match_up() {
        let world = World::new(9);
        let server = world.add_node("server");
        let client = world.add_node("client");
        let listener = server.tcp_listen(80).unwrap();
        let pair: Completion<(SocketAddrV4, SocketAddrV4)> = Completion::new();
        let pair2 = pair.clone();
        listener.on_accept(move |_, stream| {
            pair2.complete((stream.local_addr().unwrap(), stream.peer_addr().unwrap()));
        });
        let caddr: Completion<SocketAddrV4> = Completion::new();
        let caddr2 = caddr.clone();
        client.tcp_connect(SocketAddrV4::new(server.addr(), 80), move |_, stream| {
            caddr2.complete(stream.unwrap().local_addr().unwrap());
        });
        world.run_until_idle();
        let (srv_local, srv_peer) = pair.take().unwrap();
        assert_eq!(srv_local.port(), 80);
        assert_eq!(srv_peer, caddr.take().unwrap());
    }
}
