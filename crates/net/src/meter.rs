//! Traffic metering.
//!
//! INDISS's self-adaptation (paper §4.2, Fig. 6) switches the system from
//! passive interception to active re-advertisement when network traffic
//! falls *below* a threshold. The paper also claims interoperability is
//! achieved "without generating additional traffic" in the common cases
//! (§4.3); our integration tests verify that claim with this meter.
//!
//! The meter records every delivered packet with its timestamp, so both
//! cumulative totals and sliding-window rates can be queried.

use std::net::SocketAddrV4;

use crate::time::SimTime;

/// Transport protocol of a metered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeterTransport {
    /// UDP datagram (unicast or multicast).
    Udp,
    /// One TCP segment's worth of application payload.
    Tcp,
}

/// One record of network activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeterRecord {
    /// Delivery time.
    pub at: SimTime,
    /// Transport protocol used.
    pub transport: MeterTransport,
    /// Source address.
    pub src: SocketAddrV4,
    /// Destination address (the multicast group for group traffic).
    pub dst: SocketAddrV4,
    /// Payload length in bytes.
    pub len: usize,
    /// True when the destination was a multicast group.
    pub multicast: bool,
}

/// Accumulates one [`MeterRecord`] per packet that crosses the network.
///
/// Loopback (same-node) traffic is *not* metered: the paper's bandwidth
/// argument concerns the shared medium, and a co-located INDISS exchanging
/// local messages with its host application does not occupy the LAN.
#[derive(Debug, Default, Clone)]
pub struct TrafficMeter {
    records: Vec<MeterRecord>,
}

impl TrafficMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        TrafficMeter::default()
    }

    /// Records one packet.
    pub fn record(&mut self, record: MeterRecord) {
        self.records.push(record);
    }

    /// All records so far, in delivery order.
    pub fn records(&self) -> &[MeterRecord] {
        &self.records
    }

    /// Total number of packets observed.
    pub fn packet_count(&self) -> usize {
        self.records.len()
    }

    /// Total bytes observed.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.len as u64).sum()
    }

    /// Bytes delivered in the half-open window `[from, to)`.
    pub fn bytes_between(&self, from: SimTime, to: SimTime) -> u64 {
        self.records.iter().filter(|r| r.at >= from && r.at < to).map(|r| r.len as u64).sum()
    }

    /// Packets delivered in the half-open window `[from, to)`.
    pub fn packets_between(&self, from: SimTime, to: SimTime) -> usize {
        self.records.iter().filter(|r| r.at >= from && r.at < to).count()
    }

    /// Average bytes/second over `[from, to)`; `None` if the window is empty.
    pub fn rate_between(&self, from: SimTime, to: SimTime) -> Option<f64> {
        if to <= from {
            return None;
        }
        let secs = (to - from).as_secs_f64();
        Some(self.bytes_between(from, to) as f64 / secs)
    }

    /// Bytes sent to a given destination port (any address).
    pub fn bytes_to_port(&self, port: u16) -> u64 {
        self.records.iter().filter(|r| r.dst.port() == port).map(|r| r.len as u64).sum()
    }

    /// Number of multicast packets observed.
    pub fn multicast_count(&self) -> usize {
        self.records.iter().filter(|r| r.multicast).count()
    }

    /// Clears all records.
    pub fn reset(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn rec(at_ms: u64, len: usize, port: u16, multicast: bool) -> MeterRecord {
        MeterRecord {
            at: SimTime::from_millis(at_ms),
            transport: MeterTransport::Udp,
            src: SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, 1), 5000),
            dst: SocketAddrV4::new(
                if multicast {
                    Ipv4Addr::new(239, 255, 255, 250)
                } else {
                    Ipv4Addr::new(10, 0, 0, 2)
                },
                port,
            ),
            len,
            multicast,
        }
    }

    #[test]
    fn totals_accumulate() {
        let mut m = TrafficMeter::new();
        m.record(rec(1, 100, 1900, true));
        m.record(rec(2, 50, 427, false));
        assert_eq!(m.packet_count(), 2);
        assert_eq!(m.total_bytes(), 150);
        assert_eq!(m.multicast_count(), 1);
    }

    #[test]
    fn window_queries_are_half_open() {
        let mut m = TrafficMeter::new();
        m.record(rec(10, 10, 427, false));
        m.record(rec(20, 20, 427, false));
        m.record(rec(30, 30, 427, false));
        assert_eq!(m.bytes_between(SimTime::from_millis(10), SimTime::from_millis(30)), 30);
        assert_eq!(m.packets_between(SimTime::from_millis(0), SimTime::from_millis(11)), 1);
    }

    #[test]
    fn rate_is_bytes_per_second() {
        let mut m = TrafficMeter::new();
        m.record(rec(0, 500, 1900, true));
        m.record(rec(500, 500, 1900, true));
        let rate = m.rate_between(SimTime::ZERO, SimTime::from_secs(1)).expect("nonempty window");
        assert!((rate - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_rate_is_none() {
        let m = TrafficMeter::new();
        assert_eq!(m.rate_between(SimTime::from_millis(5), SimTime::from_millis(5)), None);
    }

    #[test]
    fn per_port_filtering() {
        let mut m = TrafficMeter::new();
        m.record(rec(1, 11, 1900, true));
        m.record(rec(2, 22, 427, true));
        m.record(rec(3, 33, 1900, false));
        assert_eq!(m.bytes_to_port(1900), 44);
        assert_eq!(m.bytes_to_port(427), 22);
        assert_eq!(m.bytes_to_port(4160), 0);
    }

    #[test]
    fn reset_clears() {
        let mut m = TrafficMeter::new();
        m.record(rec(1, 1, 427, false));
        m.reset();
        assert_eq!(m.packet_count(), 0);
    }
}
