//! Virtual time for the discrete-event simulator.
//!
//! The simulator never consults the wall clock: every timestamp is a
//! [`SimTime`], a number of nanoseconds since the start of the simulation.
//! Durations are ordinary [`std::time::Duration`] values, so agent code
//! reads naturally (`world.schedule_in(Duration::from_millis(5), ..)`).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant of virtual time, counted in nanoseconds from simulation start.
///
/// `SimTime` is `Copy`, totally ordered and overflow-checked in debug
/// builds; a simulation would have to run for ~584 virtual years to wrap.
///
/// # Examples
///
/// ```
/// use indiss_net::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// assert_eq!(t - SimTime::ZERO, Duration::from_millis(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from microseconds since the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates a time from milliseconds since the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates a time from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional milliseconds since the epoch, for human-readable reports.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// The elapsed duration since `earlier`.
    ///
    /// Returns [`Duration::ZERO`] when `earlier` is in the future, mirroring
    /// [`std::time::Instant::saturating_duration_since`].
    pub fn saturating_duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at the representable maximum.
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(duration_to_nanos(d)))
    }
}

/// Converts a [`Duration`] to nanoseconds, saturating at `u64::MAX`.
///
/// Durations longer than ~584 years are clamped; no realistic simulation
/// schedules that far ahead.
pub(crate) fn duration_to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + duration_to_nanos(rhs))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction went negative");
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(1_500), SimTime::from_nanos(1_500_000));
        assert_eq!(SimTime::from_millis(2), SimTime::from_micros(2_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
    }

    #[test]
    fn add_duration_advances() {
        let t = SimTime::ZERO + Duration::from_millis(5) + Duration::from_micros(250);
        assert_eq!(t.as_nanos(), 5_250_000);
    }

    #[test]
    fn add_assign_matches_add() {
        let mut t = SimTime::from_millis(1);
        t += Duration::from_millis(2);
        assert_eq!(t, SimTime::from_millis(3));
    }

    #[test]
    fn subtraction_yields_duration() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a - b, Duration::from_millis(6));
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.saturating_duration_since(b), Duration::ZERO);
        assert_eq!(b.saturating_duration_since(a), Duration::from_millis(1));
    }

    #[test]
    fn display_is_millis() {
        assert_eq!(SimTime::from_micros(1_500).to_string(), "1.500ms");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::ZERO <= SimTime::ZERO);
    }
}
