//! One-shot completion cells.
//!
//! The simulator is callback-driven; agents deliver results asynchronously.
//! A [`Completion`] is a small shared cell: the producing side calls
//! [`Completion::complete`], observers either poll ([`Completion::take`] /
//! [`Completion::get`] after running the world) or chain continuations
//! with [`Completion::subscribe`].

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

type Waiter<T> = Box<dyn FnOnce(T)>;

struct CompletionInner<T> {
    value: Option<T>,
    waiters: Vec<Waiter<T>>,
}

/// A shared one-shot result cell.
///
/// Cloning produces another handle to the same cell.
///
/// # Examples
///
/// ```
/// use indiss_net::Completion;
///
/// let done: Completion<u32> = Completion::new();
/// let writer = done.clone();
/// writer.complete(7);
/// assert_eq!(done.get(), Some(7));
/// ```
pub struct Completion<T> {
    cell: Rc<RefCell<CompletionInner<T>>>,
}

impl<T> Completion<T> {
    /// Creates an empty completion.
    pub fn new() -> Self {
        Completion {
            cell: Rc::new(RefCell::new(CompletionInner { value: None, waiters: Vec::new() })),
        }
    }

    /// True once a value has been stored.
    pub fn is_complete(&self) -> bool {
        self.cell.borrow().value.is_some()
    }

    /// Removes and returns the value, leaving the completion empty.
    /// Subscribers that already fired are unaffected.
    pub fn take(&self) -> Option<T> {
        self.cell.borrow_mut().value.take()
    }
}

impl<T: Clone> Completion<T> {
    /// Stores a value and fires all subscribers. The first completion
    /// wins; later calls are ignored so duplicate network replies (e.g.
    /// two multicast responders) do not overwrite the measured first
    /// answer.
    pub fn complete(&self, value: T) {
        let waiters = {
            let mut inner = self.cell.borrow_mut();
            if inner.value.is_some() {
                return;
            }
            inner.value = Some(value.clone());
            std::mem::take(&mut inner.waiters)
        };
        // Borrow released: waiters may re-enter this completion freely.
        for w in waiters {
            w(value.clone());
        }
    }

    /// Returns a clone of the value, if any.
    pub fn get(&self) -> Option<T> {
        self.cell.borrow().value.clone()
    }

    /// Registers a continuation: runs immediately if already complete,
    /// otherwise when [`Completion::complete`] fires. Continuations run
    /// synchronously at completion time (i.e., at the same virtual time).
    pub fn subscribe<F>(&self, f: F)
    where
        F: FnOnce(T) + 'static,
    {
        let ready = {
            let mut inner = self.cell.borrow_mut();
            match &inner.value {
                Some(v) => Some(v.clone()),
                None => {
                    inner.waiters.push(Box::new(f));
                    return;
                }
            }
        };
        if let Some(v) = ready {
            f(v);
        }
    }
}

impl<T> Clone for Completion<T> {
    fn clone(&self) -> Self {
        Completion { cell: Rc::clone(&self.cell) }
    }
}

impl<T> Default for Completion<T> {
    fn default() -> Self {
        Completion::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for Completion<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.cell.borrow();
        f.debug_struct("Completion")
            .field("value", &inner.value)
            .field("waiters", &inner.waiters.len())
            .finish()
    }
}

impl<T: PartialEq> PartialEq for Completion<T> {
    /// Two completions are equal when their stored values are equal
    /// (waiters are not compared).
    fn eq(&self, other: &Self) -> bool {
        *self.cell.borrow().value() == *other.cell.borrow().value()
    }
}

impl<T> CompletionInner<T> {
    fn value(&self) -> &Option<T> {
        &self.value
    }
}

/// A shared append-only list, the many-shot sibling of [`Completion`].
///
/// Used by agents that collect multiple responses (e.g. every service
/// discovered during a multicast convergence round).
#[derive(Debug)]
pub struct Collector<T> {
    items: Rc<RefCell<Vec<T>>>,
}

impl<T> Collector<T> {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Collector { items: Rc::new(RefCell::new(Vec::new())) }
    }

    /// Appends an item.
    pub fn push(&self, item: T) {
        self.items.borrow_mut().push(item);
    }

    /// Number of collected items.
    pub fn len(&self) -> usize {
        self.items.borrow().len()
    }

    /// True if nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.items.borrow().is_empty()
    }

    /// Removes and returns all items collected so far.
    pub fn drain(&self) -> Vec<T> {
        std::mem::take(&mut *self.items.borrow_mut())
    }
}

impl<T: Clone> Collector<T> {
    /// Returns a snapshot of the items.
    pub fn snapshot(&self) -> Vec<T> {
        self.items.borrow().clone()
    }
}

impl<T> Clone for Collector<T> {
    fn clone(&self) -> Self {
        Collector { items: Rc::clone(&self.items) }
    }
}

impl<T> Default for Collector<T> {
    fn default() -> Self {
        Collector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_completion_wins() {
        let c = Completion::new();
        c.complete(1);
        c.complete(2);
        assert_eq!(c.get(), Some(1));
    }

    #[test]
    fn take_empties_the_cell() {
        let c = Completion::new();
        c.complete("x");
        assert_eq!(c.take(), Some("x"));
        assert_eq!(c.take(), None);
        assert!(!c.is_complete());
    }

    #[test]
    fn clones_share_state() {
        let a: Completion<u8> = Completion::new();
        let b = a.clone();
        b.complete(9);
        assert!(a.is_complete());
    }

    #[test]
    fn subscribe_before_completion_fires_once() {
        let c: Completion<u32> = Completion::new();
        let seen = Collector::new();
        let seen2 = seen.clone();
        c.subscribe(move |v| seen2.push(v));
        c.complete(5);
        c.complete(6);
        assert_eq!(seen.snapshot(), vec![5]);
    }

    #[test]
    fn subscribe_after_completion_fires_immediately() {
        let c: Completion<u32> = Completion::new();
        c.complete(3);
        let seen = Collector::new();
        let seen2 = seen.clone();
        c.subscribe(move |v| seen2.push(v));
        assert_eq!(seen.snapshot(), vec![3]);
    }

    #[test]
    fn multiple_subscribers_all_fire() {
        let c: Completion<u32> = Completion::new();
        let seen = Collector::new();
        for _ in 0..3 {
            let seen2 = seen.clone();
            c.subscribe(move |v| seen2.push(v));
        }
        c.complete(1);
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn subscriber_may_chain_subscriptions() {
        let c: Completion<u32> = Completion::new();
        let d: Completion<u32> = Completion::new();
        let d2 = d.clone();
        c.subscribe(move |v| d2.complete(v * 2));
        c.complete(4);
        assert_eq!(d.get(), Some(8));
    }

    #[test]
    fn equality_compares_values() {
        let a: Completion<u8> = Completion::new();
        let b: Completion<u8> = Completion::new();
        assert_eq!(a, b);
        a.complete(1);
        assert_ne!(a, b);
        b.complete(1);
        assert_eq!(a, b);
    }

    #[test]
    fn collector_accumulates_and_drains() {
        let c = Collector::new();
        c.push(1);
        c.push(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.snapshot(), vec![1, 2]);
        assert_eq!(c.drain(), vec![1, 2]);
        assert!(c.is_empty());
    }
}
