//! Packet tracing for debugging and assertions.
//!
//! When enabled on the [`crate::World`], every packet movement (delivery or
//! drop) is appended to a [`PacketTrace`]. Integration tests use this to
//! assert, e.g., that INDISS generated exactly the UPnP requests of the
//! paper's Fig. 4 and nothing else.

use std::fmt;
use std::net::SocketAddrV4;

use crate::meter::MeterTransport;
use crate::time::SimTime;

/// Outcome of one traced packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Delivered to at least one socket.
    Delivered,
    /// Dropped by the link loss model.
    Lost,
    /// No socket was listening at the destination.
    NoListener,
    /// The destination node was down.
    NodeDown,
}

/// One traced packet movement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Send time (the delivery time is send time plus link delay).
    pub at: SimTime,
    /// Transport protocol used.
    pub transport: MeterTransport,
    /// Source address.
    pub src: SocketAddrV4,
    /// Destination address (group address for multicast).
    pub dst: SocketAddrV4,
    /// Payload length.
    pub len: usize,
    /// What happened to the packet.
    pub outcome: TraceOutcome,
    /// Up to [`PacketTrace::SNIPPET_LEN`] bytes of payload, for debugging.
    pub snippet: Vec<u8>,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {:?} {} -> {} ({} bytes, {:?})",
            self.at, self.transport, self.src, self.dst, self.len, self.outcome
        )
    }
}

/// An append-only log of packet movements.
#[derive(Debug, Default, Clone)]
pub struct PacketTrace {
    entries: Vec<TraceEntry>,
}

impl PacketTrace {
    /// Maximum number of payload bytes kept per entry.
    pub const SNIPPET_LEN: usize = 64;

    /// Creates an empty trace.
    pub fn new() -> Self {
        PacketTrace::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// All entries in send order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been traced.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries whose destination port matches `port`.
    pub fn to_port(&self, port: u16) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.dst.port() == port)
    }

    /// Entries dropped by the loss model.
    pub fn lost(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(|e| e.outcome == TraceOutcome::Lost)
    }

    /// Renders the whole trace, one entry per line (for failing-test output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn entry(port: u16, outcome: TraceOutcome) -> TraceEntry {
        TraceEntry {
            at: SimTime::from_millis(1),
            transport: MeterTransport::Udp,
            src: SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, 1), 40000),
            dst: SocketAddrV4::new(Ipv4Addr::new(239, 255, 255, 253), port),
            len: 32,
            outcome,
            snippet: b"hello".to_vec(),
        }
    }

    #[test]
    fn filters_by_port_and_outcome() {
        let mut t = PacketTrace::new();
        t.push(entry(427, TraceOutcome::Delivered));
        t.push(entry(1900, TraceOutcome::Lost));
        t.push(entry(427, TraceOutcome::Lost));
        assert_eq!(t.len(), 3);
        assert_eq!(t.to_port(427).count(), 2);
        assert_eq!(t.lost().count(), 2);
    }

    #[test]
    fn render_contains_every_entry() {
        let mut t = PacketTrace::new();
        t.push(entry(427, TraceOutcome::Delivered));
        t.push(entry(1900, TraceOutcome::NoListener));
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("427"));
        assert!(s.contains("NoListener"));
    }

    #[test]
    fn empty_trace_reports_empty() {
        let t = PacketTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.render(), "");
    }
}
