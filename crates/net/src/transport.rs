//! The transport seam: one trait over "where datagrams come from".
//!
//! Everything above this module — the gateway's decode → parse →
//! classify → deliver warm path, the passive port-detection, the
//! composed replies — is transport-agnostic. A [`Transport`] hands out
//! [`TransportSocket`]s bound to a protocol's detection tag (UDP port +
//! multicast groups) and pushes every received datagram into the
//! caller's sink; the caller writes replies back through the same
//! socket. Two implementations exist:
//!
//! * [`SimTransport`] — a deterministic in-memory loopback bus. Sends
//!   are queued and delivered synchronously in FIFO order on the
//!   sending thread, so a scripted scenario produces the identical
//!   datagram sequence on every run. This is the transport the
//!   byte-for-byte seam tests pin the gateway's semantics with.
//! * [`UdpTransport`] — real `std::net::UdpSocket`s with one named recv
//!   thread per bound channel. Loopback-confined by default (binds
//!   `127.0.0.1`) so CI can exercise it without touching the LAN;
//!   multicast group joins are attempted and reported, not required
//!   (runners that forbid multicast degrade to unicast loopback). A
//!   configurable port offset shifts every *protocol* port so tests can
//!   run unprivileged (SLP's 427 needs root) and in parallel.
//!
//! The simulated [`crate::World`] is deliberately *not* behind this
//! trait: its virtual-time event loop, latency model and meter are a
//! measurement instrument, not a transport. `SimTransport` is the
//! seam-level twin the real-socket path is compared against.

use std::collections::VecDeque;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::error::{NetError, NetResult};
use crate::udp::Datagram;

/// Which transport a gateway front-end should run on (a configuration
/// knob; see `IndissConfig::transport` in `indiss-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// The deterministic in-memory bus ([`SimTransport`]).
    #[default]
    Sim,
    /// Real UDP sockets on loopback ([`UdpTransport`]).
    Udp,
}

/// Callback receiving every datagram a bound channel hears.
///
/// For [`UdpTransport`] the sink runs on the channel's recv thread, so
/// it must be cheap: hand the datagram off (e.g. enqueue it on a worker
/// lane) and return.
pub type TransportSink = Arc<dyn Fn(Datagram) + Send + Sync + 'static>;

/// Callback receiving a *batch* of datagrams a bound channel heard in
/// one reactor wakeup. For [`crate::BatchedTransport`] a batch is up to
/// one `recvmmsg`'s worth; transports without native batching deliver
/// singleton batches through the [`Transport::bind_batched`] default.
pub type TransportBatchSink = Arc<dyn Fn(Vec<Datagram>) + Send + Sync + 'static>;

/// Injected-fault counters, one per fault class a
/// [`crate::FaultTransport`] plan can apply. All-zero on transports
/// without an armed fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Datagrams silently discarded by the drop probability.
    pub dropped: u64,
    /// Extra copies delivered by the duplicate probability.
    pub duplicated: u64,
    /// Datagrams held back one arrival (swap-with-next reordering).
    pub reordered: u64,
    /// Datagrams delivered with injected byte corruption.
    pub corrupted: u64,
    /// Datagrams held back behind later arrivals (injected delay).
    pub delayed: u64,
    /// Datagrams discarded inside a scheduled partition window.
    pub partitioned: u64,
    /// Datagrams discarded inside a scheduled *virtual-time* partition
    /// window (see `FaultPlan::time_partitions`).
    pub time_partitioned: u64,
}

impl FaultStats {
    /// Total injected faults across every class.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.reordered
            + self.corrupted
            + self.delayed
            + self.partitioned
            + self.time_partitioned
    }
}

/// Reactor/batch-I/O observability counters, snapshot by
/// [`Transport::io_stats`]. Transports without a reactor report zeros
/// (the [`Transport::io_stats`] default returns `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Reactor wakeups that found at least one ready channel.
    pub reactor_wakeups: u64,
    /// Histogram of datagrams drained per `recvmmsg` batch:
    /// `[1, 2–7, 8–31, 32+]`.
    pub recv_batch_hist: [u64; 4],
    /// `sendmmsg` flushes issued (or logical flushes on the fallback).
    pub batch_sends_flushed: u64,
    /// `EAGAIN` results that terminated an edge-drain loop.
    pub recv_eagain: u64,
    /// Faults injected by an armed [`crate::FaultTransport`] plan
    /// (all-zero when no fault plan wraps this transport).
    pub faults: FaultStats,
}

impl IoStats {
    /// Total recv batches across all histogram buckets.
    pub fn recv_batches(&self) -> u64 {
        self.recv_batch_hist.iter().sum()
    }
}

/// Shared atomic backing for [`IoStats`]; written by the reactor (or
/// the fallback recv threads) and snapshot on demand.
#[derive(Default)]
pub(crate) struct IoCounters {
    pub(crate) wakeups: AtomicU64,
    pub(crate) recv_batch_hist: [AtomicU64; 4],
    pub(crate) batch_flushes: AtomicU64,
    pub(crate) recv_eagain: AtomicU64,
}

impl IoCounters {
    /// Buckets a recv batch of `n` datagrams into the histogram.
    pub(crate) fn record_recv_batch(&self, n: u64) {
        let idx = match n {
            0..=1 => 0,
            2..=7 => 1,
            8..=31 => 2,
            _ => 3,
        };
        self.recv_batch_hist[idx].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> IoStats {
        IoStats {
            reactor_wakeups: self.wakeups.load(Ordering::Relaxed),
            recv_batch_hist: [
                self.recv_batch_hist[0].load(Ordering::Relaxed),
                self.recv_batch_hist[1].load(Ordering::Relaxed),
                self.recv_batch_hist[2].load(Ordering::Relaxed),
                self.recv_batch_hist[3].load(Ordering::Relaxed),
            ],
            batch_sends_flushed: self.batch_flushes.load(Ordering::Relaxed),
            recv_eagain: self.recv_eagain.load(Ordering::Relaxed),
            faults: FaultStats::default(),
        }
    }
}

/// What to bind: a protocol's detection tag.
#[derive(Debug, Clone)]
pub struct BindSpec {
    /// The protocol's registered UDP port (pre-offset; see
    /// [`Transport::map_port`]).
    pub port: u16,
    /// Multicast groups to join. Joining is best-effort on
    /// [`UdpTransport`]; [`TransportSocket::multicast_ready`] reports
    /// the outcome.
    pub groups: Vec<Ipv4Addr>,
}

/// A bound, sendable channel handed out by a [`Transport`].
///
/// `Send + Sync`: worker threads compose replies and write them back
/// through the socket that heard the request.
pub trait TransportSocket: Send + Sync {
    /// Sends `payload` to `dst`. Destinations taken from received
    /// datagrams (a requester's source address) are used verbatim;
    /// protocol-port destinations must be pre-mapped with
    /// [`Transport::map_port`].
    ///
    /// # Errors
    ///
    /// Transport-level send failures ([`NetError::Io`] for real
    /// sockets, unreachable/closed errors for the in-memory bus).
    fn send_to(&self, payload: &[u8], dst: SocketAddrV4) -> NetResult<usize>;

    /// The local address datagrams sent from this socket carry.
    fn local_addr(&self) -> SocketAddrV4;

    /// True when every requested multicast group was joined. The
    /// loopback-confined UDP transport may legitimately report `false`
    /// (unicast-only degradation); callers that need multicast should
    /// log the skip instead of failing.
    fn multicast_ready(&self) -> bool {
        true
    }

    /// Sends a batch of replies, returning how many went out. The
    /// default loops [`TransportSocket::send_to`]; the batched
    /// transport overrides it with one `sendmmsg` flush per call.
    fn send_batch(&self, batch: &[(Vec<u8>, SocketAddrV4)]) -> usize {
        batch.iter().filter(|(payload, dst)| self.send_to(payload, *dst).is_ok()).count()
    }
}

/// A source of bound channels — the seam between the gateway front-end
/// and the wire. See the module docs for the two implementations.
pub trait Transport: Send + Sync {
    /// Which kind of transport this is (for logs and bench metadata).
    fn kind(&self) -> TransportKind;

    /// Binds a channel on `spec`'s (mapped) port, joining its groups,
    /// and delivers every received datagram to `sink`.
    ///
    /// # Errors
    ///
    /// Bind failures — a port already bound on this transport, or an OS
    /// error ([`NetError::Io`]) such as `EACCES` on a privileged port.
    fn bind(&self, spec: &BindSpec, sink: TransportSink) -> NetResult<Arc<dyn TransportSocket>>;

    /// Binds an ephemeral (client-side) channel: an OS-assigned port,
    /// no group joins. Used by test harnesses and native peers sharing
    /// the gateway's transport.
    ///
    /// # Errors
    ///
    /// Bind failures, as for [`Transport::bind`].
    fn bind_client(&self, sink: TransportSink) -> NetResult<Arc<dyn TransportSocket>>;

    /// Binds a channel like [`Transport::bind`], but delivers datagrams
    /// in batches: everything drained in one reactor wakeup arrives in
    /// a single sink call, so the caller can amortize per-batch work
    /// (one worker-lane job per batch instead of per datagram). The
    /// default wraps [`Transport::bind`] with singleton batches, which
    /// keeps [`SimTransport`]'s deterministic FIFO semantics unchanged.
    ///
    /// # Errors
    ///
    /// Bind failures, as for [`Transport::bind`].
    fn bind_batched(
        &self,
        spec: &BindSpec,
        sink: TransportBatchSink,
    ) -> NetResult<Arc<dyn TransportSocket>> {
        self.bind(spec, Arc::new(move |dgram| sink(vec![dgram])))
    }

    /// Client-side twin of [`Transport::bind_batched`]: an ephemeral
    /// port whose received datagrams arrive in batches.
    ///
    /// # Errors
    ///
    /// Bind failures, as for [`Transport::bind_client`].
    fn bind_client_batched(&self, sink: TransportBatchSink) -> NetResult<Arc<dyn TransportSocket>> {
        self.bind_client(Arc::new(move |dgram| sink(vec![dgram])))
    }

    /// Maps a protocol's registered port to the port this transport
    /// actually serves it on (identity except for [`UdpTransport`]'s
    /// port offset). Use for every protocol-port destination; never for
    /// source addresses taken from received datagrams.
    fn map_port(&self, port: u16) -> u16 {
        port
    }

    /// Snapshot of reactor/batch-I/O counters, when this transport has
    /// them. `None` for transports without a batching engine.
    fn io_stats(&self) -> Option<IoStats> {
        None
    }

    /// Stops every recv thread and closes every channel. Idempotent.
    fn shutdown(&self);
}

// ---------------------------------------------------------------------
// SimTransport: the deterministic in-memory bus
// ---------------------------------------------------------------------

struct SimChannel {
    addr: SocketAddrV4,
    groups: Vec<Ipv4Addr>,
    sink: TransportSink,
    open: bool,
}

struct SimBus {
    channels: Vec<SimChannel>,
    /// Pending datagrams, delivered FIFO by the draining thread.
    queue: VecDeque<Datagram>,
    /// Re-entrancy guard: a sink that sends enqueues instead of
    /// recursing, so causal order is preserved deterministically.
    draining: bool,
    next_ephemeral: u16,
}

/// The deterministic in-memory transport. See the module docs.
///
/// All channels share one bus; handing the same `SimTransport` to the
/// gateway and to scripted native peers puts them on one loopback
/// "network". Addresses are synthetic (`127.0.0.1:<port>`), matching
/// the loopback-confined [`UdpTransport`] so scripted scenarios can run
/// unchanged on either.
#[derive(Clone)]
pub struct SimTransport {
    bus: Arc<Mutex<SimBus>>,
}

impl Default for SimTransport {
    fn default() -> Self {
        SimTransport::new()
    }
}

impl SimTransport {
    /// A fresh, empty bus.
    pub fn new() -> SimTransport {
        SimTransport {
            bus: Arc::new(Mutex::new(SimBus {
                channels: Vec::new(),
                queue: VecDeque::new(),
                draining: false,
                next_ephemeral: 40_000,
            })),
        }
    }

    fn register(&self, addr: SocketAddrV4, groups: Vec<Ipv4Addr>, sink: TransportSink) -> usize {
        let mut bus = self.bus.lock().expect("sim bus poisoned");
        bus.channels.push(SimChannel { addr, groups, sink, open: true });
        bus.channels.len() - 1
    }

    /// Enqueues `dgram` and, unless a delivery loop is already running
    /// further up the stack, drains the queue in FIFO order.
    fn post(&self, dgram: Datagram) {
        {
            let mut bus = self.bus.lock().expect("sim bus poisoned");
            bus.queue.push_back(dgram);
            if bus.draining {
                return;
            }
            bus.draining = true;
        }
        loop {
            // Pop one datagram and snapshot its receivers under the
            // lock; run the sinks outside it (they may send, which
            // re-enters `post` and lands in the queue).
            let (dgram, sinks) = {
                let mut bus = self.bus.lock().expect("sim bus poisoned");
                let Some(dgram) = bus.queue.pop_front() else {
                    bus.draining = false;
                    return;
                };
                let sinks: Vec<TransportSink> = bus
                    .channels
                    .iter()
                    .filter(|c| c.open && c.receives(&dgram))
                    .map(|c| Arc::clone(&c.sink))
                    .collect();
                (dgram, sinks)
            };
            for sink in sinks {
                sink(dgram.clone());
            }
        }
    }
}

impl SimChannel {
    fn receives(&self, dgram: &Datagram) -> bool {
        if dgram.dst.port() != self.addr.port() {
            return false;
        }
        if dgram.dst.ip().is_multicast() {
            return self.groups.contains(dgram.dst.ip());
        }
        *dgram.dst.ip() == *self.addr.ip()
    }
}

struct SimSocket {
    transport: SimTransport,
    index: usize,
    addr: SocketAddrV4,
}

impl TransportSocket for SimSocket {
    fn send_to(&self, payload: &[u8], dst: SocketAddrV4) -> NetResult<usize> {
        {
            let bus = self.transport.bus.lock().expect("sim bus poisoned");
            if !bus.channels[self.index].open {
                return Err(NetError::SocketClosed);
            }
        }
        self.transport.post(Datagram { src: self.addr, dst, payload: payload.to_vec() });
        Ok(payload.len())
    }

    fn local_addr(&self) -> SocketAddrV4 {
        self.addr
    }
}

impl Transport for SimTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Sim
    }

    fn bind(&self, spec: &BindSpec, sink: TransportSink) -> NetResult<Arc<dyn TransportSocket>> {
        let addr = SocketAddrV4::new(Ipv4Addr::LOCALHOST, spec.port);
        {
            let bus = self.bus.lock().expect("sim bus poisoned");
            if bus.channels.iter().any(|c| c.open && c.addr == addr) {
                return Err(NetError::Io {
                    op: "bind",
                    message: format!("sim port {} already bound", spec.port),
                });
            }
        }
        let index = self.register(addr, spec.groups.clone(), sink);
        Ok(Arc::new(SimSocket { transport: self.clone(), index, addr }))
    }

    fn bind_client(&self, sink: TransportSink) -> NetResult<Arc<dyn TransportSocket>> {
        let port = {
            let mut bus = self.bus.lock().expect("sim bus poisoned");
            let port = bus.next_ephemeral;
            bus.next_ephemeral = bus.next_ephemeral.wrapping_add(1).max(40_000);
            port
        };
        let addr = SocketAddrV4::new(Ipv4Addr::LOCALHOST, port);
        let index = self.register(addr, Vec::new(), sink);
        Ok(Arc::new(SimSocket { transport: self.clone(), index, addr }))
    }

    fn shutdown(&self) {
        let mut bus = self.bus.lock().expect("sim bus poisoned");
        for channel in &mut bus.channels {
            channel.open = false;
        }
        bus.queue.clear();
    }
}

// ---------------------------------------------------------------------
// UdpTransport: real sockets, loopback-confined
// ---------------------------------------------------------------------

/// How long a UDP recv thread blocks per `recv_from` before re-checking
/// the shutdown flag.
const RECV_POLL: Duration = Duration::from_millis(25);

struct UdpShared {
    /// Shared with every recv thread (and only this — see
    /// `bind_socket`), so dropping the last transport handle raises it
    /// even when `shutdown()` was never called.
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// The real-socket transport. See the module docs.
#[derive(Clone)]
pub struct UdpTransport {
    bind_ip: Ipv4Addr,
    port_offset: u16,
    shared: Arc<UdpShared>,
}

impl UdpTransport {
    /// A loopback-confined transport with no port offset (protocol
    /// ports used verbatim; SLP's 427 then needs `CAP_NET_BIND_SERVICE`).
    pub fn loopback() -> UdpTransport {
        UdpTransport::with_offset(0)
    }

    /// A loopback-confined transport whose protocol ports are shifted
    /// by `offset` — lets unprivileged CI bind SLP (427 → 427+offset)
    /// and lets parallel tests avoid colliding on one port space.
    pub fn with_offset(offset: u16) -> UdpTransport {
        UdpTransport::new(Ipv4Addr::LOCALHOST, offset)
    }

    /// A transport bound to `bind_ip` with protocol ports shifted by
    /// `offset`. Binding a non-loopback interface takes the gateway
    /// onto the LAN — the deployment mode, not the CI mode.
    pub fn new(bind_ip: Ipv4Addr, offset: u16) -> UdpTransport {
        UdpTransport {
            bind_ip,
            port_offset: offset,
            shared: Arc::new(UdpShared {
                stop: Arc::new(AtomicBool::new(false)),
                threads: Mutex::new(Vec::new()),
            }),
        }
    }

    fn bind_socket(
        &self,
        port: u16,
        groups: &[Ipv4Addr],
        sink: TransportSink,
        label: &str,
    ) -> NetResult<Arc<dyn TransportSocket>> {
        let io_err =
            |op: &'static str| move |e: std::io::Error| NetError::Io { op, message: e.to_string() };
        let socket = std::net::UdpSocket::bind((self.bind_ip, port)).map_err(io_err("bind"))?;
        socket.set_read_timeout(Some(RECV_POLL)).map_err(io_err("set_read_timeout"))?;
        let local = match socket.local_addr().map_err(io_err("local_addr"))? {
            SocketAddr::V4(a) => a,
            SocketAddr::V6(a) => SocketAddrV4::new(Ipv4Addr::LOCALHOST, a.port()),
        };
        // Best-effort group joins: a loopback-confined runner commonly
        // refuses them, and unicast loopback is still a full test of
        // the datagram path.
        let mut joined_all = true;
        for group in groups {
            if socket.join_multicast_v4(group, &self.bind_ip).is_err() {
                joined_all = false;
            }
        }
        let socket = Arc::new(socket);
        let recv_socket = Arc::clone(&socket);
        // The thread captures only the stop flag, not `UdpShared`
        // itself: otherwise the shared block (whose Drop raises the
        // flag) could never drop while any thread was alive, and a
        // transport dropped without `shutdown()` would leak its recv
        // threads — and their bound ports — for the process lifetime.
        let stop = Arc::clone(&self.shared.stop);
        let handle = std::thread::Builder::new()
            .name(format!("indiss-net-{label}"))
            .spawn(move || {
                let mut buf = vec![0u8; 8192];
                while !stop.load(Ordering::Relaxed) {
                    match recv_socket.recv_from(&mut buf) {
                        Ok((len, SocketAddr::V4(src))) => {
                            sink(Datagram { src, dst: local, payload: buf[..len].to_vec() });
                        }
                        Ok((_, SocketAddr::V6(_))) => {} // v4-only seam
                        // Timeout/interrupt: loop to re-check the flag.
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock
                                    | std::io::ErrorKind::TimedOut
                                    | std::io::ErrorKind::Interrupted
                            ) => {}
                        Err(_) => break, // socket torn down
                    }
                }
            })
            .map_err(io_err("spawn"))?;
        self.shared.threads.lock().expect("udp thread list poisoned").push(handle);
        Ok(Arc::new(UdpSocketHandle { socket, local, joined_all }))
    }
}

struct UdpSocketHandle {
    socket: Arc<std::net::UdpSocket>,
    local: SocketAddrV4,
    joined_all: bool,
}

impl TransportSocket for UdpSocketHandle {
    fn send_to(&self, payload: &[u8], dst: SocketAddrV4) -> NetResult<usize> {
        self.socket
            .send_to(payload, SocketAddr::V4(dst))
            .map_err(|e| NetError::Io { op: "send_to", message: e.to_string() })
    }

    fn local_addr(&self) -> SocketAddrV4 {
        self.local
    }

    fn multicast_ready(&self) -> bool {
        self.joined_all
    }
}

impl Transport for UdpTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Udp
    }

    fn bind(&self, spec: &BindSpec, sink: TransportSink) -> NetResult<Arc<dyn TransportSocket>> {
        let port = self.map_port(spec.port);
        self.bind_socket(port, &spec.groups, sink, &port.to_string())
    }

    fn bind_client(&self, sink: TransportSink) -> NetResult<Arc<dyn TransportSocket>> {
        self.bind_socket(0, &[], sink, "client")
    }

    fn map_port(&self, port: u16) -> u16 {
        port.wrapping_add(self.port_offset)
    }

    fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        let threads: Vec<_> =
            std::mem::take(&mut *self.shared.threads.lock().expect("udp thread list poisoned"));
        for handle in threads {
            let _ = handle.join();
        }
    }
}

impl Drop for UdpShared {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn collecting_sink() -> (TransportSink, mpsc::Receiver<Datagram>) {
        let (tx, rx) = mpsc::channel();
        let sink: TransportSink = Arc::new(move |d| {
            let _ = tx.send(d);
        });
        (sink, rx)
    }

    #[test]
    fn sim_delivers_unicast_to_the_bound_port() {
        let bus = SimTransport::new();
        let (sink, rx) = collecting_sink();
        let server = bus.bind(&BindSpec { port: 4427, groups: vec![] }, sink).unwrap();
        let (client_sink, _client_rx) = collecting_sink();
        let client = bus.bind_client(client_sink).unwrap();
        client.send_to(b"hello", server.local_addr()).unwrap();
        let heard = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(heard.payload, b"hello");
        assert_eq!(heard.src, client.local_addr());
        assert!(!heard.is_multicast());
    }

    #[test]
    fn sim_multicast_reaches_joined_channels_only() {
        let bus = SimTransport::new();
        let group = Ipv4Addr::new(239, 255, 255, 250);
        let (joined_sink, joined_rx) = collecting_sink();
        bus.bind(&BindSpec { port: 5900, groups: vec![group] }, joined_sink).unwrap();
        let (lonely_sink, lonely_rx) = collecting_sink();
        bus.bind(&BindSpec { port: 5901, groups: vec![] }, lonely_sink).unwrap();
        let (client_sink, _r) = collecting_sink();
        let client = bus.bind_client(client_sink).unwrap();
        client.send_to(b"NOTIFY", SocketAddrV4::new(group, 5900)).unwrap();
        assert_eq!(joined_rx.recv_timeout(Duration::from_secs(1)).unwrap().payload, b"NOTIFY");
        assert!(lonely_rx.try_recv().is_err(), "unjoined channel hears nothing");
    }

    /// A sink that replies from inside the delivery does not recurse:
    /// the reply is queued and delivered after the current datagram,
    /// preserving FIFO causal order.
    #[test]
    fn sim_reentrant_send_is_fifo_not_recursive() {
        let bus = SimTransport::new();
        let (client_sink, client_rx) = collecting_sink();
        let client = bus.bind_client(client_sink).unwrap();
        let bus2 = bus.clone();
        let replier: Arc<Mutex<Option<Arc<dyn TransportSocket>>>> = Arc::new(Mutex::new(None));
        let replier2 = Arc::clone(&replier);
        let server = bus2
            .bind(
                &BindSpec { port: 6100, groups: vec![] },
                Arc::new(move |d: Datagram| {
                    let socket = replier2.lock().unwrap().as_ref().cloned().unwrap();
                    socket.send_to(b"pong", d.src).unwrap();
                }),
            )
            .unwrap();
        *replier.lock().unwrap() = Some(Arc::clone(&server));
        client.send_to(b"ping", server.local_addr()).unwrap();
        assert_eq!(client_rx.recv_timeout(Duration::from_secs(1)).unwrap().payload, b"pong");
    }

    #[test]
    fn sim_rejects_double_bind_and_closed_sends() {
        let bus = SimTransport::new();
        let (a, _ra) = collecting_sink();
        let (b, _rb) = collecting_sink();
        let spec = BindSpec { port: 6200, groups: vec![] };
        let socket = bus.bind(&spec, a).unwrap();
        assert!(bus.bind(&spec, b).is_err(), "port already bound");
        bus.shutdown();
        assert!(socket.send_to(b"x", SocketAddrV4::new(Ipv4Addr::LOCALHOST, 1)).is_err());
    }

    /// Real sockets over loopback: a datagram round-trips through the
    /// OS. Skipped (not failed) when the environment forbids binding.
    #[test]
    fn udp_round_trips_over_loopback() {
        let transport = UdpTransport::with_offset(21_000);
        let (sink, rx) = collecting_sink();
        let server = match transport.bind(&BindSpec { port: 427, groups: vec![] }, sink) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("skipping udp_round_trips_over_loopback: {e}");
                return;
            }
        };
        assert_eq!(server.local_addr().port(), 21_427, "offset applied");
        let (client_sink, client_rx) = collecting_sink();
        let client = transport.bind_client(client_sink).unwrap();
        client.send_to(b"SRVRQST", server.local_addr()).unwrap();
        let heard = rx.recv_timeout(Duration::from_secs(2)).expect("server heard the datagram");
        assert_eq!(heard.payload, b"SRVRQST");
        // And the reply path back to the client's ephemeral port.
        server.send_to(b"SRVRPLY", heard.src).unwrap();
        let reply = client_rx.recv_timeout(Duration::from_secs(2)).expect("client heard reply");
        assert_eq!(reply.payload, b"SRVRPLY");
        assert_eq!(reply.src, server.local_addr());
        transport.shutdown();
    }

    /// Dropping a `UdpTransport` without calling `shutdown()` must
    /// still stop its recv threads and release the bound ports — the
    /// regression here is a thread capturing the shared block whose
    /// `Drop` raises the stop flag, which could then never run.
    #[test]
    fn udp_drop_without_shutdown_releases_ports() {
        let offset = 21_500;
        {
            let transport = UdpTransport::with_offset(offset);
            if transport.bind(&BindSpec { port: 600, groups: vec![] }, Arc::new(|_| {})).is_err() {
                eprintln!("skipping udp_drop_without_shutdown_releases_ports: no loopback bind");
                return;
            }
            // Dropped here with no shutdown() call.
        }
        // The recv thread notices the flag within its poll interval and
        // closes the socket; the port must become bindable again.
        let retry = UdpTransport::with_offset(offset);
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            match retry.bind(&BindSpec { port: 600, groups: vec![] }, Arc::new(|_| {})) {
                Ok(_) => break,
                Err(e) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "port never released after drop-without-shutdown: {e}"
                    );
                    std::thread::sleep(RECV_POLL);
                }
            }
        }
        retry.shutdown();
    }

    #[test]
    fn transports_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimTransport>();
        assert_send_sync::<UdpTransport>();
        assert_send_sync::<Arc<dyn Transport>>();
        assert_send_sync::<Arc<dyn TransportSocket>>();
    }
}
