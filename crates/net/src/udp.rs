//! UDP sockets with multicast support.
//!
//! Multicast is the backbone of every SDP the paper considers: SSDP uses
//! `239.255.255.250:1900`, SLP `239.255.255.253:427`, Jini `224.0.1.84/85:
//! 4160`. A socket [joins](UdpSocket::join_multicast) any number of groups
//! and receives every datagram sent to a joined group on its bound port —
//! exactly the mechanism the INDISS monitor component exploits for SDP
//! detection (paper §2.1).

use std::fmt;
use std::net::SocketAddrV4;

use crate::error::NetResult;
use crate::world::World;

/// Identifier of a UDP socket within its world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdpSocketId(pub(crate) usize);

/// A received datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Sender address (node address + source port).
    pub src: SocketAddrV4,
    /// Destination the sender used — the group address for multicast
    /// traffic, which lets receivers distinguish which group was hit.
    pub dst: SocketAddrV4,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Datagram {
    /// True when this datagram was addressed to a multicast group.
    pub fn is_multicast(&self) -> bool {
        self.dst.ip().is_multicast()
    }
}

/// Handle to a bound UDP socket.
///
/// Cloning clones the handle; the socket closes when [`UdpSocket::close`]
/// is called (dropping handles does *not* close it, so handles can be moved
/// freely into callbacks).
#[derive(Clone)]
pub struct UdpSocket {
    world: World,
    id: UdpSocketId,
}

impl UdpSocket {
    pub(crate) fn from_parts(world: World, id: UdpSocketId) -> Self {
        UdpSocket { world, id }
    }

    /// The socket's identifier.
    pub fn id(&self) -> UdpSocketId {
        self.id
    }

    /// Local address this socket is bound to.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::SocketClosed`] if the socket was closed.
    pub fn local_addr(&self) -> NetResult<SocketAddrV4> {
        self.world.udp_local_addr(self.id)
    }

    /// Joins a multicast group.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::NotMulticast`] if `group` is not in `224.0.0.0/4`;
    /// [`crate::NetError::SocketClosed`] if the socket was closed.
    pub fn join_multicast(&self, group: std::net::Ipv4Addr) -> NetResult<()> {
        self.world.udp_join(self.id, group)
    }

    /// Leaves a multicast group (no-op if not joined).
    ///
    /// # Errors
    ///
    /// Same conditions as [`UdpSocket::join_multicast`].
    pub fn leave_multicast(&self, group: std::net::Ipv4Addr) -> NetResult<()> {
        self.world.udp_leave(self.id, group)
    }

    /// Sends a datagram to `dst` (unicast address or multicast group).
    ///
    /// Delivery is scheduled according to the link model; the call itself
    /// never blocks. Sending to a group the sender has joined does not loop
    /// the packet back to the *sending socket*, but does reach every other
    /// member, including other sockets on the same node.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::SocketClosed`] if this socket was closed;
    /// [`crate::NetError::NodeDown`] if the local node is down.
    pub fn send_to(&self, payload: &[u8], dst: SocketAddrV4) -> NetResult<()> {
        self.world.udp_send_to(self.id, payload, dst)
    }

    /// Installs the receive callback, replacing any previous one.
    ///
    /// The callback runs once per delivered datagram, at the virtual
    /// delivery time.
    pub fn on_receive<F>(&self, f: F)
    where
        F: FnMut(&World, Datagram) + 'static,
    {
        self.world.udp_set_handler(self.id, Box::new(f));
    }

    /// Closes the socket; subsequent operations fail with
    /// [`crate::NetError::SocketClosed`] and queued deliveries are dropped.
    pub fn close(&self) {
        self.world.udp_close(self.id);
    }
}

impl fmt::Debug for UdpSocket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdpSocket")
            .field("id", &self.id)
            .field("addr", &self.local_addr().ok())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use crate::Completion;
    use std::net::Ipv4Addr;

    const GROUP: Ipv4Addr = Ipv4Addr::new(239, 255, 255, 250);

    #[test]
    fn unicast_reaches_the_bound_socket() {
        let world = World::new(3);
        let a = world.add_node("a");
        let b = world.add_node("b");
        let sa = a.udp_bind(5000).unwrap();
        let sb = b.udp_bind(6000).unwrap();
        let got: Completion<Datagram> = Completion::new();
        let got2 = got.clone();
        sb.on_receive(move |_, d| got2.complete(d));
        sa.send_to(b"ping", SocketAddrV4::new(b.addr(), 6000)).unwrap();
        world.run_until_idle();
        let d = got.take().expect("datagram delivered");
        assert_eq!(d.payload, b"ping");
        assert_eq!(d.src, SocketAddrV4::new(a.addr(), 5000));
        assert!(!d.is_multicast());
    }

    #[test]
    fn multicast_reaches_all_members_except_sender() {
        let world = World::new(3);
        let a = world.add_node("a");
        let b = world.add_node("b");
        let c = world.add_node("c");
        let sa = a.udp_bind(1900).unwrap();
        let sb = b.udp_bind(1900).unwrap();
        let sc = c.udp_bind(1900).unwrap();
        for s in [&sa, &sb, &sc] {
            s.join_multicast(GROUP).unwrap();
        }
        let hits: crate::Collector<SocketAddrV4> = crate::Collector::new();
        for s in [&sb, &sc] {
            let hits = hits.clone();
            s.on_receive(move |_, d| hits.push(d.dst));
        }
        let self_hit: Completion<()> = Completion::new();
        {
            let self_hit = self_hit.clone();
            sa.on_receive(move |_, _| self_hit.complete(()));
        }
        sa.send_to(b"NOTIFY", SocketAddrV4::new(GROUP, 1900)).unwrap();
        world.run_until_idle();
        assert_eq!(hits.len(), 2, "both other members receive");
        assert!(!self_hit.is_complete(), "sender socket does not loop back");
    }

    #[test]
    fn multicast_requires_join() {
        let world = World::new(3);
        let a = world.add_node("a");
        let b = world.add_node("b");
        let sa = a.udp_bind(1900).unwrap();
        let sb = b.udp_bind(1900).unwrap();
        // b bound the right port but never joined the group.
        let got: Completion<()> = Completion::new();
        let got2 = got.clone();
        sb.on_receive(move |_, _| got2.complete(()));
        sa.join_multicast(GROUP).unwrap();
        sa.send_to(b"x", SocketAddrV4::new(GROUP, 1900)).unwrap();
        world.run_until_idle();
        assert!(!got.is_complete());
    }

    #[test]
    fn join_rejects_unicast_address() {
        let world = World::new(3);
        let a = world.add_node("a");
        let s = a.udp_bind(5000).unwrap();
        assert!(s.join_multicast(Ipv4Addr::new(10, 0, 0, 7)).is_err());
    }

    #[test]
    fn closed_socket_rejects_operations() {
        let world = World::new(3);
        let a = world.add_node("a");
        let s = a.udp_bind(5000).unwrap();
        s.close();
        assert!(s.local_addr().is_err());
        assert!(s.send_to(b"x", SocketAddrV4::new(a.addr(), 5000)).is_err());
    }

    #[test]
    fn closing_frees_the_port() {
        let world = World::new(3);
        let a = world.add_node("a");
        let s = a.udp_bind(5000).unwrap();
        s.close();
        assert!(a.udp_bind(5000).is_ok(), "port is reusable after close");
    }

    #[test]
    fn shared_binds_coexist_and_both_receive_multicast() {
        let world = World::new(3);
        let host = world.add_node("host");
        let sender_node = world.add_node("sender");
        let native = host.udp_bind_shared(1900).unwrap();
        let indiss = host.udp_bind_shared(1900).unwrap();
        assert!(host.udp_bind(1900).is_err(), "exclusive bind conflicts with shared");
        for s in [&native, &indiss] {
            s.join_multicast(GROUP).unwrap();
        }
        let hits: crate::Collector<&'static str> = crate::Collector::new();
        let h1 = hits.clone();
        native.on_receive(move |_, _| h1.push("native"));
        let h2 = hits.clone();
        indiss.on_receive(move |_, _| h2.push("indiss"));
        let tx = sender_node.udp_bind_ephemeral().unwrap();
        tx.send_to(b"NOTIFY", SocketAddrV4::new(GROUP, 1900)).unwrap();
        world.run_until_idle();
        let mut got = hits.snapshot();
        got.sort();
        assert_eq!(got, vec!["indiss", "native"]);
    }

    #[test]
    fn unicast_to_shared_port_reaches_all_sharers() {
        // A co-located passive monitor must observe unicast traffic to
        // the port without stealing it from the native stack.
        let world = World::new(3);
        let host = world.add_node("host");
        let other = world.add_node("other");
        let first = host.udp_bind_shared(1900).unwrap();
        let second = host.udp_bind_shared(1900).unwrap();
        let hits: crate::Collector<&'static str> = crate::Collector::new();
        let h1 = hits.clone();
        first.on_receive(move |_, _| h1.push("first"));
        let h2 = hits.clone();
        second.on_receive(move |_, _| h2.push("second"));
        let tx = other.udp_bind_ephemeral().unwrap();
        tx.send_to(b"x", SocketAddrV4::new(host.addr(), 1900)).unwrap();
        world.run_until_idle();
        let mut got = hits.snapshot();
        got.sort();
        assert_eq!(got, vec!["first", "second"]);
    }

    #[test]
    fn udp_and_tcp_ports_are_independent() {
        let world = World::new(3);
        let host = world.add_node("host");
        let _udp = host.udp_bind(427).unwrap();
        assert!(host.tcp_listen(427).is_ok(), "tcp 427 coexists with udp 427");
    }

    #[test]
    fn down_node_does_not_receive() {
        let world = World::new(3);
        let a = world.add_node("a");
        let b = world.add_node("b");
        let sa = a.udp_bind(5000).unwrap();
        let sb = b.udp_bind(6000).unwrap();
        let got: Completion<()> = Completion::new();
        let got2 = got.clone();
        sb.on_receive(move |_, _| got2.complete(()));
        b.set_up(false);
        sa.send_to(b"x", SocketAddrV4::new(b.addr(), 6000)).unwrap();
        world.run_until_idle();
        assert!(!got.is_complete());
    }
}
