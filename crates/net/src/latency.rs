//! Link latency and bandwidth model.
//!
//! Packet delivery time is `base_latency + len / bandwidth + jitter`, where
//! jitter is drawn uniformly from `[0, max_jitter]` with the world's seeded
//! RNG — runs are reproducible for a fixed seed.
//!
//! The defaults are calibrated to the INDISS paper's testbed (two hosts on
//! a 10 Mb/s LAN): see `DESIGN.md` §4. Same-node ("loopback") traffic uses a
//! separate, much cheaper link so that co-locating INDISS with a client or
//! service behaves as it did in the paper's §4.3 measurements.

use std::time::Duration;

use rand::Rng;

/// Parameters of one directed link class.
///
/// # Examples
///
/// ```
/// use indiss_net::LinkConfig;
/// use std::time::Duration;
///
/// let lan = LinkConfig::lan_10mbps();
/// // A 1 KB frame takes its serialization delay plus the base latency.
/// let d = lan.transfer_delay(1024);
/// assert!(d > lan.base_latency);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Fixed one-way propagation + switching delay.
    pub base_latency: Duration,
    /// Serialization rate in bytes per second; `None` models infinite capacity.
    pub bandwidth: Option<u64>,
    /// Upper bound of the uniform random jitter added per packet.
    pub max_jitter: Duration,
    /// Probability in `[0, 1]` that a packet is silently dropped
    /// (failure injection; 0 by default).
    pub loss_probability: f64,
}

impl LinkConfig {
    /// The paper's testbed: a 10 Mb/s LAN with ~0.25 ms one-way latency.
    pub fn lan_10mbps() -> Self {
        LinkConfig {
            base_latency: Duration::from_micros(250),
            bandwidth: Some(10_000_000 / 8),
            max_jitter: Duration::from_micros(40),
            loss_probability: 0.0,
        }
    }

    /// Same-host loopback: 20 µs, effectively infinite bandwidth.
    pub fn loopback() -> Self {
        LinkConfig {
            base_latency: Duration::from_micros(20),
            bandwidth: None,
            max_jitter: Duration::from_micros(2),
            loss_probability: 0.0,
        }
    }

    /// An ideal link with zero delay; useful in unit tests that only care
    /// about message routing, not timing.
    pub fn instant() -> Self {
        LinkConfig {
            base_latency: Duration::ZERO,
            bandwidth: None,
            max_jitter: Duration::ZERO,
            loss_probability: 0.0,
        }
    }

    /// Returns a copy with the given packet-loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0,1]");
        self.loss_probability = p;
        self
    }

    /// Returns a copy with the given base latency.
    pub fn with_base_latency(mut self, latency: Duration) -> Self {
        self.base_latency = latency;
        self
    }

    /// Deterministic part of the delivery delay for a packet of `len` bytes
    /// (base latency plus serialization time; excludes jitter).
    pub fn transfer_delay(&self, len: usize) -> Duration {
        let ser = match self.bandwidth {
            Some(bps) if bps > 0 => {
                Duration::from_nanos((len as u64).saturating_mul(1_000_000_000) / bps)
            }
            _ => Duration::ZERO,
        };
        self.base_latency + ser
    }

    /// Full delivery delay including a jitter sample drawn from `rng`.
    pub fn sample_delay<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> Duration {
        let jitter = if self.max_jitter.is_zero() {
            Duration::ZERO
        } else {
            let j = rng.random_range(0..=self.max_jitter.as_nanos() as u64);
            Duration::from_nanos(j)
        };
        self.transfer_delay(len) + jitter
    }

    /// Draws whether a packet on this link is lost.
    pub fn sample_loss<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.loss_probability > 0.0 && rng.random_bool(self.loss_probability)
    }
}

impl Default for LinkConfig {
    /// Defaults to [`LinkConfig::lan_10mbps`], the paper's testbed.
    fn default() -> Self {
        LinkConfig::lan_10mbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn transfer_delay_accounts_for_bandwidth() {
        let lan = LinkConfig::lan_10mbps();
        // 1250 bytes at 1.25 MB/s = 1 ms of serialization.
        let d = lan.transfer_delay(1250);
        assert_eq!(d, lan.base_latency + Duration::from_millis(1));
    }

    #[test]
    fn infinite_bandwidth_has_no_serialization_cost() {
        let lo = LinkConfig::loopback();
        assert_eq!(lo.transfer_delay(1_000_000), lo.base_latency);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let lan = LinkConfig::lan_10mbps();
        let mut rng = SmallRng::seed_from_u64(7);
        let d1 = lan.sample_delay(100, &mut rng);
        assert!(d1 >= lan.transfer_delay(100));
        assert!(d1 <= lan.transfer_delay(100) + lan.max_jitter);
        let mut rng2 = SmallRng::seed_from_u64(7);
        assert_eq!(lan.sample_delay(100, &mut rng2), d1);
    }

    #[test]
    fn zero_loss_never_drops() {
        let lan = LinkConfig::lan_10mbps();
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..1000).all(|_| !lan.sample_loss(&mut rng)));
    }

    #[test]
    fn full_loss_always_drops() {
        let lossy = LinkConfig::lan_10mbps().with_loss(1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..100).all(|_| lossy.sample_loss(&mut rng)));
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_panics() {
        let _ = LinkConfig::lan_10mbps().with_loss(1.5);
    }

    #[test]
    fn instant_link_is_free() {
        assert_eq!(LinkConfig::instant().transfer_delay(10_000), Duration::ZERO);
    }
}
