//! Gateway-to-gateway peer channels through the transport seam.
//!
//! The federated mesh (see `indiss-core`'s `mesh` module) exchanges
//! unicast frames between gateways. A [`PeerChannel`] is the thin
//! adapter it rides on: one bound channel per gateway, plus a send path
//! that resolves a peer's well-known port through
//! [`Transport::map_port`] so the same mesh code runs unchanged on the
//! deterministic [`SimTransport`](crate::transport::SimTransport) bus,
//! the loopback-confined [`UdpTransport`](crate::transport::UdpTransport)
//! (where each gateway binds at a different port offset), and the
//! batched engine — and composes with
//! [`FaultTransport`](crate::FaultTransport) for partition injection.
//!
//! Peer channels are unicast-only: no multicast groups are joined, so
//! binding never degrades and mesh traffic stays invisible to the SDP
//! front-ends sharing the transport.

use std::net::{Ipv4Addr, SocketAddrV4};
use std::sync::Arc;

use crate::error::NetResult;
use crate::transport::{BindSpec, Transport, TransportSink, TransportSocket};

/// One gateway's bound mesh endpoint: receives peer frames on its own
/// well-known port and sends to peers by *their* well-known port.
pub struct PeerChannel {
    transport: Arc<dyn Transport>,
    socket: Arc<dyn TransportSocket>,
}

impl PeerChannel {
    /// Binds the gateway's peer endpoint on `port` (pre-offset; the
    /// transport maps it), delivering every received frame to `sink`.
    ///
    /// # Errors
    ///
    /// Bind failures from the underlying transport (port already bound,
    /// OS errors on real sockets).
    pub fn bind(
        transport: Arc<dyn Transport>,
        port: u16,
        sink: TransportSink,
    ) -> NetResult<PeerChannel> {
        let spec = BindSpec { port, groups: Vec::new() };
        let socket = transport.bind(&spec, sink)?;
        Ok(PeerChannel { transport, socket })
    }

    /// Sends `payload` to the peer bound at well-known `peer_port`,
    /// mapping the port through the transport's offset first.
    ///
    /// # Errors
    ///
    /// Transport-level send failures, as for
    /// [`TransportSocket::send_to`].
    pub fn send(&self, payload: &[u8], peer_port: u16) -> NetResult<usize> {
        let dst = SocketAddrV4::new(Ipv4Addr::LOCALHOST, self.transport.map_port(peer_port));
        self.socket.send_to(payload, dst)
    }

    /// The local address frames sent from this channel carry.
    pub fn local_addr(&self) -> SocketAddrV4 {
        self.socket.local_addr()
    }
}

impl std::fmt::Debug for PeerChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerChannel").field("local_addr", &self.local_addr()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::SimTransport;
    use std::sync::Mutex;

    #[test]
    fn peers_exchange_unicast_frames_on_the_sim_bus() {
        let transport: Arc<dyn Transport> = Arc::new(SimTransport::new());
        let heard_a: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let heard_b: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_a = {
            let heard = Arc::clone(&heard_a);
            Arc::new(move |d: crate::Datagram| heard.lock().unwrap().push(d.payload))
        };
        let sink_b = {
            let heard = Arc::clone(&heard_b);
            Arc::new(move |d: crate::Datagram| heard.lock().unwrap().push(d.payload))
        };
        let a = PeerChannel::bind(Arc::clone(&transport), 7100, sink_a).expect("bind a");
        let b = PeerChannel::bind(Arc::clone(&transport), 7101, sink_b).expect("bind b");
        assert_eq!(a.local_addr().port(), 7100);
        a.send(b"ping", 7101).expect("send");
        b.send(b"pong", 7100).expect("send");
        assert_eq!(heard_b.lock().unwrap().as_slice(), &[b"ping".to_vec()]);
        assert_eq!(heard_a.lock().unwrap().as_slice(), &[b"pong".to_vec()]);
    }

    #[test]
    fn send_maps_the_peer_port_through_the_transport_offset() {
        use crate::transport::UdpTransport;
        let transport: Arc<dyn Transport> = Arc::new(UdpTransport::with_offset(31_000));
        let heard: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = {
            let heard = Arc::clone(&heard);
            Arc::new(move |d: crate::Datagram| heard.lock().unwrap().push(d.payload))
        };
        let a = PeerChannel::bind(Arc::clone(&transport), 711, sink).expect("bind");
        assert_eq!(a.local_addr().port(), 31_711, "bound at the mapped port");
        // Self-send through the well-known (pre-offset) port round-trips.
        a.send(b"loop", 711).expect("send");
        for _ in 0..200 {
            if !heard.lock().unwrap().is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        transport.shutdown();
        assert_eq!(heard.lock().unwrap().as_slice(), &[b"loop".to_vec()]);
    }
}
