//! `FaultTransport`: deterministic, seed-driven fault injection at the
//! transport seam.
//!
//! INDISS is pitched for lossy, dynamic networks (paper §2.4, §4), yet
//! every other transport in this crate delivers datagrams intact, in
//! order, exactly once. This decorator wraps any [`Transport`] and
//! applies a [`FaultPlan`] to **ingress** traffic — drop, duplicate,
//! swap-with-next reordering, hold-back delay, single-byte corruption
//! and scheduled partition windows — before the wrapped sink sees it.
//! Egress is untouched: a reply's loss is modeled by the fault lane of
//! the channel that would have received it, so wrapping both the
//! gateway and its clients in one `FaultTransport` exercises loss in
//! both directions.
//!
//! ## Determinism contract
//!
//! Every decision derives from a SplitMix64 stream seeded per *lane*
//! (bound channels key by their pre-offset protocol port; client
//! channels key by bind order), and every arrival consumes a **fixed
//! number of draws** whether or not any fault fires. A decision is
//! therefore a pure function of `(plan seed, lane key, arrival index)`
//! — independent of wall-clock timing, thread interleaving and the
//! transport underneath. The same scripted traffic through a faulted
//! [`crate::SimTransport`] and a faulted [`crate::BatchedTransport`]
//! meets the identical hostile world, which is what lets the
//! `request_storm --hostile` gate replay a run bit-for-bit from its
//! seed. Delay and reorder are expressed in *arrivals*, not time, for
//! the same reason: a held-back datagram is released when enough later
//! datagrams have arrived on its lane, never by a timer.
//!
//! Injected-fault counts surface through [`Transport::io_stats`]
//! (the [`FaultStats`] block), merged over whatever the wrapped
//! transport reports.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::NetResult;
use crate::time::SimTime;
use crate::transport::{
    BindSpec, FaultStats, IoStats, Transport, TransportBatchSink, TransportKind, TransportSink,
    TransportSocket,
};
use crate::udp::Datagram;

/// The seed-driven fault schedule a [`FaultTransport`] applies per
/// ingress lane. Probabilities are per-datagram in `[0, 1]`; see the
/// module docs for the determinism contract.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed of every lane's SplitMix64 decision stream.
    pub seed: u64,
    /// Probability a datagram is silently discarded.
    pub drop: f64,
    /// Probability a datagram is delivered twice.
    pub duplicate: f64,
    /// Probability a datagram is swapped with the lane's next arrival.
    pub reorder: f64,
    /// Probability one payload byte has one bit flipped.
    pub corrupt: f64,
    /// Probability a datagram is held back [`FaultPlan::delay_slots`]
    /// arrivals before delivery.
    pub delay: f64,
    /// How many later arrivals a delayed datagram waits behind.
    pub delay_slots: u64,
    /// Scheduled partition windows, as half-open `[start, end)` ranges
    /// of the per-lane arrival index: everything arriving inside a
    /// window is discarded, as if the network split.
    pub partitions: Vec<(u64, u64)>,
    /// Scheduled partition windows in *virtual time*, as half-open
    /// `[start, end)` instants: everything arriving while the
    /// transport's virtual clock sits inside a window is discarded.
    /// The clock only moves when the driving side calls
    /// [`FaultTransport::set_now`] — mobility scripts use this to cut a
    /// gateway for a scripted interval ("cut B from t=2s to t=5s"),
    /// and because the clock is virtual the outcome stays a pure
    /// function of `(seed, lane, window)`, never of wall-clock timing.
    /// The fixed per-arrival draw budget is consumed before the window
    /// check, so lanes stay aligned with an uncut replay.
    pub time_partitions: Vec<(SimTime, SimTime)>,
}

impl FaultPlan {
    /// A plan that injects nothing (probabilities all zero).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// The canonical hostile world of the `request_storm --hostile`
    /// gate: 10 % drop and 10 % swap-with-next reordering on every
    /// lane, both directions.
    pub fn hostile(seed: u64) -> FaultPlan {
        FaultPlan { seed, drop: 0.10, reorder: 0.10, ..FaultPlan::default() }
    }

    fn in_partition(&self, index: u64) -> bool {
        self.partitions.iter().any(|&(start, end)| index >= start && index < end)
    }

    fn in_time_partition(&self, now: SimTime) -> bool {
        self.time_partitions.iter().any(|&(start, end)| now >= start && now < end)
    }
}

#[derive(Default)]
struct FaultCounters {
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    corrupted: AtomicU64,
    delayed: AtomicU64,
    partitioned: AtomicU64,
    time_partitioned: AtomicU64,
}

impl FaultCounters {
    fn snapshot(&self) -> FaultStats {
        FaultStats {
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            partitioned: self.partitioned.load(Ordering::Relaxed),
            time_partitioned: self.time_partitioned.load(Ordering::Relaxed),
        }
    }
}

/// Per-channel fault state: the decision stream plus the in-flight
/// reorder/delay holdings. One mutex per lane — lanes never contend
/// with each other, and within a lane the underlying transport already
/// serializes arrivals.
struct Lane {
    state: Mutex<LaneState>,
}

struct LaneState {
    rng: u64,
    index: u64,
    /// Datagram stashed by a reorder decision, delivered after the
    /// lane's next deliverable arrival.
    swap: Option<Datagram>,
    /// Delayed datagrams with the arrival index that releases them.
    held: VecDeque<(u64, Datagram)>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a 64-bit draw onto `[0, 1)` and compares against `p`.
fn chance(draw: u64, p: f64) -> bool {
    p > 0.0 && ((draw >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
}

/// The fault-injecting transport decorator. See the module docs.
pub struct FaultTransport {
    inner: Arc<dyn Transport>,
    plan: FaultPlan,
    counters: Arc<FaultCounters>,
    /// Latest virtual time observed from the driving side (see
    /// [`FaultTransport::set_now`]); datagram handlers read it for the
    /// time-window partition check. Shared by every sink closure.
    now_nanos: Arc<AtomicU64>,
    /// Client lanes key by bind order so the key is identical across
    /// transports (ephemeral port numbers are not).
    client_seq: AtomicU64,
}

impl FaultTransport {
    /// Wraps `inner` so every channel bound through this handle runs
    /// under `plan`'s hostile world.
    pub fn wrap(inner: Arc<dyn Transport>, plan: FaultPlan) -> FaultTransport {
        FaultTransport {
            inner,
            plan,
            counters: Arc::new(FaultCounters::default()),
            now_nanos: Arc::new(AtomicU64::new(0)),
            client_seq: AtomicU64::new(0),
        }
    }

    /// Snapshot of the injected-fault counters (also available inside
    /// [`Transport::io_stats`]).
    pub fn fault_stats(&self) -> FaultStats {
        self.counters.snapshot()
    }

    /// Advances the transport's virtual clock (monotonic — a stale
    /// caller never moves it backwards). Only
    /// [`FaultPlan::time_partitions`] reads the clock; a plan without
    /// time windows never needs this called. Drive it from the same
    /// virtual-time loop that schedules the traffic and the partition
    /// outcome is deterministic by construction.
    pub fn set_now(&self, now: SimTime) {
        self.now_nanos.fetch_max(now.as_nanos(), Ordering::Relaxed);
    }

    fn lane(&self, key: u64) -> Arc<Lane> {
        let mut seed = self.plan.seed ^ key;
        // Burn one mix so lanes with nearby keys decorrelate.
        let rng = splitmix(&mut seed);
        Arc::new(Lane {
            state: Mutex::new(LaneState { rng, index: 0, swap: None, held: VecDeque::new() }),
        })
    }

    /// Runs one ingress datagram through the lane's fault schedule,
    /// appending everything deliverable *now* to `out`. Exactly six
    /// draws are consumed per arrival regardless of outcome.
    fn admit(&self, lane: &Lane, dgram: Datagram, out: &mut Vec<Datagram>) {
        let plan = &self.plan;
        let counters = &self.counters;
        let mut state = lane.state.lock().expect("fault lane poisoned");
        let index = state.index;
        state.index += 1;
        // Release any delayed datagram whose wait has elapsed.
        while state.held.front().is_some_and(|&(release, _)| release <= index) {
            let (_, held) = state.held.pop_front().expect("front checked");
            out.push(held);
        }
        let d_drop = splitmix(&mut state.rng);
        let d_dup = splitmix(&mut state.rng);
        let d_reorder = splitmix(&mut state.rng);
        let d_corrupt = splitmix(&mut state.rng);
        let d_delay = splitmix(&mut state.rng);
        let d_byte = splitmix(&mut state.rng);
        if plan.in_partition(index) {
            counters.partitioned.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if !plan.time_partitions.is_empty() {
            let now = SimTime::from_nanos(self.now_nanos.load(Ordering::Relaxed));
            if plan.in_time_partition(now) {
                counters.time_partitioned.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        if chance(d_drop, plan.drop) {
            counters.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut dgram = dgram;
        if chance(d_corrupt, plan.corrupt) && !dgram.payload.is_empty() {
            let pos = (d_byte as usize) % dgram.payload.len();
            dgram.payload[pos] ^= 1 << ((d_byte >> 32) % 8);
            counters.corrupted.fetch_add(1, Ordering::Relaxed);
        }
        if chance(d_delay, plan.delay) && plan.delay_slots > 0 {
            let release = index + plan.delay_slots;
            state.held.push_back((release, dgram));
            counters.delayed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if chance(d_reorder, plan.reorder) && state.swap.is_none() {
            state.swap = Some(dgram);
            counters.reordered.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if chance(d_dup, plan.duplicate) {
            out.push(dgram.clone());
            counters.duplicated.fetch_add(1, Ordering::Relaxed);
        }
        out.push(dgram);
        if let Some(swapped) = state.swap.take() {
            out.push(swapped);
        }
    }

    fn faulted_sink(&self, key: u64, sink: TransportSink) -> TransportSink {
        let lane = self.lane(key);
        let this = self.snapshot_handle();
        Arc::new(move |dgram| {
            let mut out = Vec::with_capacity(2);
            this.admit(&lane, dgram, &mut out);
            for dgram in out {
                sink(dgram);
            }
        })
    }

    fn faulted_batch_sink(&self, key: u64, sink: TransportBatchSink) -> TransportBatchSink {
        let lane = self.lane(key);
        let this = self.snapshot_handle();
        Arc::new(move |batch| {
            let mut out = Vec::with_capacity(batch.len());
            for dgram in batch {
                this.admit(&lane, dgram, &mut out);
            }
            if !out.is_empty() {
                sink(out);
            }
        })
    }

    /// A cheap clone carrying only what the sink closures need (the
    /// plan and counters — not another `Arc<dyn Transport>` cycle).
    fn snapshot_handle(&self) -> FaultTransport {
        FaultTransport {
            inner: Arc::clone(&self.inner),
            plan: self.plan.clone(),
            counters: Arc::clone(&self.counters),
            now_nanos: Arc::clone(&self.now_nanos),
            client_seq: AtomicU64::new(0),
        }
    }

    fn next_client_key(&self) -> u64 {
        // Client lanes live in a separate key space from protocol ports.
        (1 << 32) | self.client_seq.fetch_add(1, Ordering::Relaxed)
    }
}

impl Transport for FaultTransport {
    fn kind(&self) -> TransportKind {
        self.inner.kind()
    }

    fn bind(&self, spec: &BindSpec, sink: TransportSink) -> NetResult<Arc<dyn TransportSocket>> {
        self.inner.bind(spec, self.faulted_sink(u64::from(spec.port), sink))
    }

    fn bind_client(&self, sink: TransportSink) -> NetResult<Arc<dyn TransportSocket>> {
        self.inner.bind_client(self.faulted_sink(self.next_client_key(), sink))
    }

    fn bind_batched(
        &self,
        spec: &BindSpec,
        sink: TransportBatchSink,
    ) -> NetResult<Arc<dyn TransportSocket>> {
        self.inner.bind_batched(spec, self.faulted_batch_sink(u64::from(spec.port), sink))
    }

    fn bind_client_batched(&self, sink: TransportBatchSink) -> NetResult<Arc<dyn TransportSocket>> {
        self.inner.bind_client_batched(self.faulted_batch_sink(self.next_client_key(), sink))
    }

    fn map_port(&self, port: u16) -> u16 {
        self.inner.map_port(port)
    }

    fn io_stats(&self) -> Option<IoStats> {
        Some(IoStats {
            faults: self.counters.snapshot(),
            ..self.inner.io_stats().unwrap_or_default()
        })
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::SimTransport;
    use std::net::Ipv4Addr;

    fn run_stream(plan: FaultPlan, count: usize) -> (Vec<Vec<u8>>, FaultStats) {
        let faulty = FaultTransport::wrap(Arc::new(SimTransport::new()), plan);
        let heard = Arc::new(Mutex::new(Vec::new()));
        let heard2 = Arc::clone(&heard);
        let server = faulty
            .bind(
                &BindSpec { port: 4427, groups: vec![] },
                Arc::new(move |d: Datagram| heard2.lock().unwrap().push(d.payload)),
            )
            .unwrap();
        let client = faulty.bind_client(Arc::new(|_| {})).unwrap();
        for i in 0..count {
            client.send_to(&[i as u8, (i >> 8) as u8], server.local_addr()).unwrap();
        }
        let stats = faulty.fault_stats();
        let heard = heard.lock().unwrap().clone();
        (heard, stats)
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let (heard, stats) = run_stream(FaultPlan::quiet(7), 50);
        assert_eq!(heard.len(), 50);
        assert_eq!(stats, FaultStats::default());
        assert!(heard.iter().enumerate().all(|(i, p)| p[0] == i as u8), "order preserved");
    }

    #[test]
    fn same_seed_replays_identically() {
        let (a, stats_a) = run_stream(FaultPlan::hostile(42), 400);
        let (b, stats_b) = run_stream(FaultPlan::hostile(42), 400);
        assert_eq!(a, b, "identical hostile world for identical seed");
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.dropped > 0, "10% drop over 400 datagrams fires: {stats_a:?}");
        assert!(stats_a.reordered > 0, "10% reorder over 400 datagrams fires: {stats_a:?}");
        let (c, _) = run_stream(FaultPlan::hostile(43), 400);
        assert_ne!(a, c, "different seed, different world");
    }

    #[test]
    fn drop_rate_lands_near_the_plan() {
        let plan = FaultPlan { seed: 9, drop: 0.10, ..FaultPlan::default() };
        let (heard, stats) = run_stream(plan, 2000);
        assert_eq!(heard.len() as u64 + stats.dropped, 2000);
        let rate = stats.dropped as f64 / 2000.0;
        assert!((0.05..=0.15).contains(&rate), "drop rate ~10%, got {rate}");
    }

    #[test]
    fn duplicates_and_corruption_are_counted() {
        let plan = FaultPlan { seed: 5, duplicate: 0.2, corrupt: 0.2, ..FaultPlan::default() };
        let (heard, stats) = run_stream(plan, 500);
        assert_eq!(heard.len() as u64, 500 + stats.duplicated);
        assert!(stats.duplicated > 0);
        assert!(stats.corrupted > 0);
    }

    #[test]
    fn reorder_swaps_with_next_arrival() {
        // Force a reorder on every datagram: each arrival is stashed,
        // and (with the swap slot busy) the next one flushes it.
        let plan = FaultPlan { seed: 1, reorder: 1.0, ..FaultPlan::default() };
        let (heard, stats) = run_stream(plan, 10);
        assert!(stats.reordered > 0);
        // Nothing lost except a possible trailing stash.
        assert!(heard.len() >= 9, "at most the trailing stash outstanding: {}", heard.len());
        assert_ne!(heard[0][0], 0, "first delivery is not the first arrival");
    }

    #[test]
    fn delay_holds_back_behind_later_arrivals() {
        let plan = FaultPlan { seed: 3, delay: 0.5, delay_slots: 3, ..FaultPlan::default() };
        let (heard, stats) = run_stream(plan, 200);
        assert!(stats.delayed > 0);
        // Everything not still held at the end arrived.
        assert!(heard.len() as u64 >= 200 - stats.delayed);
        let order: Vec<u16> =
            heard.iter().map(|p| u16::from(p[0]) | (u16::from(p[1]) << 8)).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_ne!(order, sorted, "delays must visibly reorder the stream");
    }

    #[test]
    fn partition_window_discards_by_arrival_index() {
        let plan = FaultPlan { seed: 2, partitions: vec![(10, 20)], ..FaultPlan::default() };
        let (heard, stats) = run_stream(plan, 30);
        assert_eq!(stats.partitioned, 10);
        assert_eq!(heard.len(), 20);
        assert!(heard.iter().all(|p| p[0] < 10 || p[0] >= 20));
    }

    #[test]
    fn time_partition_window_discards_by_virtual_clock() {
        let plan = FaultPlan {
            seed: 4,
            time_partitions: vec![(SimTime::from_secs(2), SimTime::from_secs(5))],
            ..FaultPlan::default()
        };
        let faulty = FaultTransport::wrap(Arc::new(SimTransport::new()), plan);
        let heard = Arc::new(Mutex::new(Vec::new()));
        let heard2 = Arc::clone(&heard);
        let server = faulty
            .bind(
                &BindSpec { port: 4427, groups: vec![] },
                Arc::new(move |d: Datagram| heard2.lock().unwrap().push(d.payload)),
            )
            .unwrap();
        let client = faulty.bind_client(Arc::new(|_| {})).unwrap();
        // One datagram per virtual second 0..10: seconds 2, 3 and 4 sit
        // inside the cut window.
        for sec in 0u64..10 {
            faulty.set_now(SimTime::from_secs(sec));
            client.send_to(&[sec as u8], server.local_addr()).unwrap();
        }
        let stats = faulty.fault_stats();
        assert_eq!(stats.time_partitioned, 3);
        assert_eq!(stats.partitioned, 0, "the index-window counter is separate");
        let heard = heard.lock().unwrap().clone();
        assert_eq!(heard.len(), 7);
        assert!(heard.iter().all(|p| p[0] < 2 || p[0] >= 5), "window cut exactly [2s, 5s)");
    }

    #[test]
    fn time_partition_replays_identically_and_keeps_lanes_aligned() {
        let run = |cut: bool| -> (Vec<Vec<u8>>, FaultStats) {
            let mut plan = FaultPlan::hostile(77);
            if cut {
                plan.time_partitions = vec![(SimTime::from_millis(100), SimTime::from_millis(200))];
            }
            let faulty = FaultTransport::wrap(Arc::new(SimTransport::new()), plan);
            let heard = Arc::new(Mutex::new(Vec::new()));
            let heard2 = Arc::clone(&heard);
            let server = faulty
                .bind(
                    &BindSpec { port: 4427, groups: vec![] },
                    Arc::new(move |d: Datagram| heard2.lock().unwrap().push(d.payload)),
                )
                .unwrap();
            let client = faulty.bind_client(Arc::new(|_| {})).unwrap();
            for i in 0u64..300 {
                faulty.set_now(SimTime::from_millis(i));
                client.send_to(&[i as u8, (i >> 8) as u8], server.local_addr()).unwrap();
            }
            let delivered = heard.lock().unwrap().clone();
            (delivered, faulty.fault_stats())
        };
        let (a, stats_a) = run(true);
        let (b, stats_b) = run(true);
        assert_eq!(a, b, "same seed + same window = same world");
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.time_partitioned > 0, "the window discarded arrivals: {stats_a:?}");
        // The fixed draw budget is spent before the window check, so an
        // uncut run makes the same per-arrival decisions outside the
        // window — the cut is surgical, not a lane reshuffle.
        let (uncut, stats_uncut) = run(false);
        assert_eq!(stats_uncut.time_partitioned, 0);
        assert!(uncut.len() > a.len(), "lifting the cut can only add deliveries");
        let cut_set: std::collections::HashSet<&Vec<u8>> = a.iter().collect();
        let uncut_set: std::collections::HashSet<&Vec<u8>> = uncut.iter().collect();
        assert!(
            cut_set.is_subset(&uncut_set),
            "every payload surviving the cut also survives the uncut replay"
        );
    }

    #[test]
    fn io_stats_carries_the_fault_block() {
        let faulty = FaultTransport::wrap(
            Arc::new(SimTransport::new()),
            FaultPlan { seed: 11, drop: 1.0, ..FaultPlan::default() },
        );
        let server = faulty
            .bind(
                &BindSpec { port: 5000, groups: vec![Ipv4Addr::new(239, 1, 1, 1)] },
                Arc::new(|_| {}),
            )
            .unwrap();
        let client = faulty.bind_client(Arc::new(|_| {})).unwrap();
        client.send_to(b"x", server.local_addr()).unwrap();
        let io = faulty.io_stats().expect("fault transport always reports");
        assert_eq!(io.faults.dropped, 1);
        assert_eq!(io.reactor_wakeups, 0, "sim underneath has no reactor");
    }
}
