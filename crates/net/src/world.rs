//! The simulation world: virtual clock, event queue, nodes and transports.
//!
//! `World` is a cheaply-clonable handle (`Rc` internally); the simulator is
//! deliberately single-threaded and deterministic — identical seeds and
//! identical call sequences produce identical packet timings, which is what
//! lets the benchmark harness report reproducible medians (paper §4.3 runs
//! each measurement 30 times and reports the median).

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::net::{Ipv4Addr, SocketAddrV4};
use std::rc::Rc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::{NetError, NetResult};
use crate::latency::LinkConfig;
use crate::meter::{MeterRecord, MeterTransport, TrafficMeter};
use crate::node::{Node, NodeId};
use crate::tcp::{TcpListener, TcpListenerId, TcpStream, TcpStreamId};
use crate::time::SimTime;
use crate::trace::{PacketTrace, TraceEntry, TraceOutcome};
use crate::udp::{Datagram, UdpSocket, UdpSocketId};

/// First port handed out by [`Node::udp_bind_ephemeral`] and TCP connects.
const EPHEMERAL_BASE: u16 = 40_000;

type UdpHandler = Box<dyn FnMut(&World, Datagram)>;
type AcceptHandler = Box<dyn FnMut(&World, TcpStream)>;
type RecvHandler = Box<dyn FnMut(&World, Vec<u8>)>;
type CloseHandler = Box<dyn FnMut(&World)>;
type ConnectCallback = Box<dyn FnOnce(&World, NetResult<TcpStream>)>;
type TimerCallback = Box<dyn FnOnce(&World)>;

/// Configuration for a new [`World`].
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// RNG seed; fixes all jitter and loss draws.
    pub seed: u64,
    /// Link used between distinct nodes unless overridden per pair.
    pub default_link: LinkConfig,
    /// Link used for same-node (loopback) traffic.
    pub loopback_link: LinkConfig,
    /// Whether to record a packet trace from the start.
    pub trace: bool,
}

impl WorldConfig {
    /// Configuration with the given seed and paper-testbed links.
    pub fn with_seed(seed: u64) -> Self {
        WorldConfig {
            seed,
            default_link: LinkConfig::lan_10mbps(),
            loopback_link: LinkConfig::loopback(),
            trace: false,
        }
    }
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig::with_seed(0)
    }
}

struct Scheduled {
    at: SimTime,
    seq: u64,
    action: Action,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // Reversed so the BinaryHeap (a max-heap) pops the earliest event;
    // ties break by insertion order for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

enum Action {
    Timer(TimerCallback),
    UdpDeliver { socket: UdpSocketId, datagram: Datagram },
    TcpSynArrive { client_stream: TcpStreamId, dst: SocketAddrV4 },
    TcpConnectResolve { client_stream: TcpStreamId, result: Result<(), NetError> },
    TcpDeliver { stream: TcpStreamId, bytes: Vec<u8> },
    TcpFinArrive { stream: TcpStreamId },
}

struct NodeData {
    name: String,
    addr: Ipv4Addr,
    up: bool,
    next_ephemeral: u16,
}

struct UdpData {
    node: NodeId,
    port: u16,
    /// SO_REUSEADDR-style sharing: multiple shared sockets may bind the
    /// same (node, port); multicast is delivered to every member, unicast
    /// to the earliest-bound socket.
    shared: bool,
    groups: HashSet<Ipv4Addr>,
    handler: Option<Rc<RefCell<UdpHandler>>>,
}

struct ListenerData {
    node: NodeId,
    port: u16,
    handler: Option<Rc<RefCell<AcceptHandler>>>,
}

struct StreamData {
    node: NodeId,
    local: SocketAddrV4,
    peer_addr: SocketAddrV4,
    peer: Option<TcpStreamId>,
    recv: Option<Rc<RefCell<RecvHandler>>>,
    close: Option<Rc<RefCell<CloseHandler>>>,
    connect_cb: Option<ConnectCallback>,
    /// In-order delivery floor for segments arriving at this endpoint.
    next_delivery: SimTime,
    open: bool,
}

struct WorldInner {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    nodes: Vec<NodeData>,
    addr_to_node: HashMap<Ipv4Addr, NodeId>,
    udp: Vec<Option<UdpData>>,
    listeners: Vec<Option<ListenerData>>,
    streams: Vec<Option<StreamData>>,
    default_link: LinkConfig,
    loopback_link: LinkConfig,
    link_overrides: HashMap<(NodeId, NodeId), LinkConfig>,
    rng: SmallRng,
    meter: TrafficMeter,
    trace: Option<PacketTrace>,
}

impl WorldInner {
    fn link_for(&self, a: NodeId, b: NodeId) -> LinkConfig {
        if a == b {
            return self.loopback_link;
        }
        self.link_overrides.get(&(a, b)).copied().unwrap_or(self.default_link)
    }

    fn push(&mut self, at: SimTime, action: Action) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, action });
    }

    fn trace_packet(
        &mut self,
        transport: MeterTransport,
        src: SocketAddrV4,
        dst: SocketAddrV4,
        payload: &[u8],
        outcome: TraceOutcome,
    ) {
        if let Some(trace) = &mut self.trace {
            let snip = payload.len().min(PacketTrace::SNIPPET_LEN);
            trace.push(TraceEntry {
                at: self.now,
                transport,
                src,
                dst,
                len: payload.len(),
                outcome,
                snippet: payload[..snip].to_vec(),
            });
        }
    }

    fn meter_packet(
        &mut self,
        transport: MeterTransport,
        src: SocketAddrV4,
        dst: SocketAddrV4,
        len: usize,
        multicast: bool,
        at: SimTime,
    ) {
        self.meter.record(MeterRecord { at, transport, src, dst, len, multicast });
    }
}

/// Handle to a simulation world. Cloning is cheap and refers to the same
/// world.
///
/// # Examples
///
/// ```
/// use indiss_net::World;
/// use std::time::Duration;
///
/// let world = World::new(7);
/// let fired = indiss_net::Completion::new();
/// let fired2 = fired.clone();
/// world.schedule_in(Duration::from_millis(5), move |w| {
///     assert_eq!(w.now().as_millis(), 5);
///     fired2.complete(());
/// });
/// world.run_until_idle();
/// assert!(fired.is_complete());
/// ```
#[derive(Clone)]
pub struct World {
    inner: Rc<RefCell<WorldInner>>,
}

impl World {
    /// Creates a world with the paper-calibrated LAN links and this seed.
    pub fn new(seed: u64) -> Self {
        World::with_config(WorldConfig::with_seed(seed))
    }

    /// Creates a world from an explicit configuration.
    pub fn with_config(config: WorldConfig) -> Self {
        World {
            inner: Rc::new(RefCell::new(WorldInner {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                nodes: Vec::new(),
                addr_to_node: HashMap::new(),
                udp: Vec::new(),
                listeners: Vec::new(),
                streams: Vec::new(),
                default_link: config.default_link,
                loopback_link: config.loopback_link,
                link_overrides: HashMap::new(),
                rng: SmallRng::seed_from_u64(config.seed),
                meter: TrafficMeter::new(),
                trace: if config.trace { Some(PacketTrace::new()) } else { None },
            })),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.borrow().now
    }

    /// Adds a host named `name` with the next free `10.0.0.x` address.
    pub fn add_node(&self, name: &str) -> Node {
        let mut inner = self.inner.borrow_mut();
        let idx = inner.nodes.len() as u32;
        let addr = Ipv4Addr::new(10, 0, 0, (idx + 1).min(254) as u8 + ((idx / 254) as u8));
        // For worlds larger than 254 nodes spread across 10.0.x.y.
        let addr = if idx < 254 {
            addr
        } else {
            Ipv4Addr::new(10, 0, (idx / 254) as u8, (idx % 254 + 1) as u8)
        };
        let id = NodeId::new(idx);
        inner.nodes.push(NodeData {
            name: name.to_owned(),
            addr,
            up: true,
            next_ephemeral: EPHEMERAL_BASE,
        });
        inner.addr_to_node.insert(addr, id);
        drop(inner);
        Node::from_parts(self.clone(), id)
    }

    /// Returns a handle to an existing node.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownNode`] if no node has this id.
    pub fn node(&self, id: NodeId) -> NetResult<Node> {
        if (id.index() as usize) < self.inner.borrow().nodes.len() {
            Ok(Node::from_parts(self.clone(), id))
        } else {
            Err(NetError::UnknownNode { node: id })
        }
    }

    /// Number of nodes in the world.
    pub fn node_count(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Sets a symmetric link configuration between two nodes.
    pub fn set_link(&self, a: NodeId, b: NodeId, link: LinkConfig) {
        let mut inner = self.inner.borrow_mut();
        inner.link_overrides.insert((a, b), link);
        inner.link_overrides.insert((b, a), link);
    }

    /// Replaces the default inter-node link.
    pub fn set_default_link(&self, link: LinkConfig) {
        self.inner.borrow_mut().default_link = link;
    }

    /// Schedules `f` to run after `delay` of virtual time.
    pub fn schedule_in<F>(&self, delay: Duration, f: F)
    where
        F: FnOnce(&World) + 'static,
    {
        let mut inner = self.inner.borrow_mut();
        let at = inner.now + delay;
        inner.push(at, Action::Timer(Box::new(f)));
    }

    /// Schedules `f` at an absolute virtual time (clamped to now if past).
    pub fn schedule_at<F>(&self, at: SimTime, f: F)
    where
        F: FnOnce(&World) + 'static,
    {
        let mut inner = self.inner.borrow_mut();
        let at = at.max(inner.now);
        inner.push(at, Action::Timer(Box::new(f)));
    }

    /// Draws a uniformly random duration in `[0, max]` from the world RNG
    /// (for protocol jitter such as SSDP's MX back-off).
    pub fn sample_jitter(&self, max: Duration) -> Duration {
        if max.is_zero() {
            return Duration::ZERO;
        }
        let mut inner = self.inner.borrow_mut();
        let nanos = inner.rng.random_range(0..=crate::time::duration_to_nanos(max));
        Duration::from_nanos(nanos)
    }

    /// Draws a random `u64` from the world RNG.
    pub fn random_u64(&self) -> u64 {
        self.inner.borrow_mut().rng.random()
    }

    /// Executes the next scheduled event, if any; returns whether one ran.
    pub fn step(&self) -> bool {
        let (action, world) = {
            let mut inner = self.inner.borrow_mut();
            match inner.queue.pop() {
                Some(ev) => {
                    debug_assert!(ev.at >= inner.now, "time went backwards");
                    inner.now = ev.at;
                    (ev.action, self.clone())
                }
                None => return false,
            }
        };
        self.dispatch(action, &world);
        true
    }

    /// Runs until no events remain; returns the number executed.
    ///
    /// Prefer [`World::run_for`] in scenarios with periodic timers (e.g.
    /// recurring SSDP announcements), which never drain.
    pub fn run_until_idle(&self) -> usize {
        let mut n = 0;
        while self.step() {
            n += 1;
        }
        n
    }

    /// Runs events until virtual time would exceed `deadline`; the clock is
    /// left at `deadline` (or at the last event if the queue drained).
    pub fn run_until(&self, deadline: SimTime) -> usize {
        let mut n = 0;
        loop {
            let next_at = self.inner.borrow().queue.peek().map(|e| e.at);
            match next_at {
                Some(at) if at <= deadline => {
                    self.step();
                    n += 1;
                }
                _ => break,
            }
        }
        let mut inner = self.inner.borrow_mut();
        if inner.now < deadline {
            inner.now = deadline;
        }
        n
    }

    /// Runs for `d` of virtual time from now.
    pub fn run_for(&self, d: Duration) -> usize {
        let deadline = self.now() + d;
        self.run_until(deadline)
    }

    /// Runs until `pred` returns true or the queue drains; returns whether
    /// the predicate was satisfied.
    pub fn run_until_condition<F: FnMut() -> bool>(&self, mut pred: F) -> bool {
        loop {
            if pred() {
                return true;
            }
            if !self.step() {
                return pred();
            }
        }
    }

    /// Snapshot of the traffic meter.
    pub fn meter_snapshot(&self) -> TrafficMeter {
        self.inner.borrow().meter.clone()
    }

    /// Clears the traffic meter.
    pub fn meter_reset(&self) {
        self.inner.borrow_mut().meter.reset();
    }

    /// Starts (or restarts) packet tracing.
    pub fn enable_trace(&self) {
        self.inner.borrow_mut().trace = Some(PacketTrace::new());
    }

    /// Snapshot of the packet trace, if tracing is enabled.
    pub fn trace_snapshot(&self) -> Option<PacketTrace> {
        self.inner.borrow().trace.clone()
    }

    // ------------------------------------------------------------------
    // Node plumbing (called by `Node` handles)
    // ------------------------------------------------------------------

    pub(crate) fn node_addr(&self, id: NodeId) -> Ipv4Addr {
        self.inner.borrow().nodes[id.index() as usize].addr
    }

    pub(crate) fn node_name(&self, id: NodeId) -> String {
        self.inner.borrow().nodes[id.index() as usize].name.clone()
    }

    pub(crate) fn node_is_up(&self, id: NodeId) -> bool {
        self.inner.borrow().nodes[id.index() as usize].up
    }

    pub(crate) fn set_node_up(&self, id: NodeId, up: bool) {
        self.inner.borrow_mut().nodes[id.index() as usize].up = up;
    }

    pub(crate) fn alloc_ephemeral_port(&self, id: NodeId) -> u16 {
        let mut inner = self.inner.borrow_mut();
        let node = &mut inner.nodes[id.index() as usize];
        let port = node.next_ephemeral;
        node.next_ephemeral = node.next_ephemeral.wrapping_add(1).max(EPHEMERAL_BASE);
        port
    }

    fn tcp_port_in_use(inner: &WorldInner, node: NodeId, port: u16) -> bool {
        inner.listeners.iter().flatten().any(|l| l.node == node && l.port == port)
    }

    // ------------------------------------------------------------------
    // UDP plumbing
    // ------------------------------------------------------------------

    pub(crate) fn udp_bind(&self, node: NodeId, port: u16) -> NetResult<UdpSocket> {
        self.udp_bind_inner(node, port, false)
    }

    pub(crate) fn udp_bind_shared(&self, node: NodeId, port: u16) -> NetResult<UdpSocket> {
        self.udp_bind_inner(node, port, true)
    }

    fn udp_bind_inner(&self, node: NodeId, port: u16, shared: bool) -> NetResult<UdpSocket> {
        if port == 0 {
            return Err(NetError::InvalidPort);
        }
        let mut inner = self.inner.borrow_mut();
        // A shared bind coexists with other shared binds on the same port
        // (SO_REUSEADDR); any exclusive bind conflicts.
        // UDP and TCP port namespaces are independent, as on a real host.
        let conflict = inner
            .udp
            .iter()
            .flatten()
            .any(|s| s.node == node && s.port == port && !(shared && s.shared));
        if conflict {
            return Err(NetError::AddrInUse { node, port });
        }
        let id = UdpSocketId(inner.udp.len());
        inner.udp.push(Some(UdpData { node, port, shared, groups: HashSet::new(), handler: None }));
        drop(inner);
        Ok(UdpSocket::from_parts(self.clone(), id))
    }

    pub(crate) fn udp_local_addr(&self, id: UdpSocketId) -> NetResult<SocketAddrV4> {
        let inner = self.inner.borrow();
        let data = inner.udp.get(id.0).and_then(Option::as_ref).ok_or(NetError::SocketClosed)?;
        Ok(SocketAddrV4::new(inner.nodes[data.node.index() as usize].addr, data.port))
    }

    pub(crate) fn udp_join(&self, id: UdpSocketId, group: Ipv4Addr) -> NetResult<()> {
        if !group.is_multicast() {
            return Err(NetError::NotMulticast { addr: group });
        }
        let mut inner = self.inner.borrow_mut();
        let data =
            inner.udp.get_mut(id.0).and_then(Option::as_mut).ok_or(NetError::SocketClosed)?;
        data.groups.insert(group);
        Ok(())
    }

    pub(crate) fn udp_leave(&self, id: UdpSocketId, group: Ipv4Addr) -> NetResult<()> {
        if !group.is_multicast() {
            return Err(NetError::NotMulticast { addr: group });
        }
        let mut inner = self.inner.borrow_mut();
        let data =
            inner.udp.get_mut(id.0).and_then(Option::as_mut).ok_or(NetError::SocketClosed)?;
        data.groups.remove(&group);
        Ok(())
    }

    pub(crate) fn udp_set_handler(&self, id: UdpSocketId, handler: UdpHandler) {
        let mut inner = self.inner.borrow_mut();
        if let Some(data) = inner.udp.get_mut(id.0).and_then(Option::as_mut) {
            data.handler = Some(Rc::new(RefCell::new(handler)));
        }
    }

    pub(crate) fn udp_close(&self, id: UdpSocketId) {
        let mut inner = self.inner.borrow_mut();
        if let Some(slot) = inner.udp.get_mut(id.0) {
            *slot = None;
        }
    }

    pub(crate) fn udp_send_to(
        &self,
        id: UdpSocketId,
        payload: &[u8],
        dst: SocketAddrV4,
    ) -> NetResult<()> {
        let mut inner = self.inner.borrow_mut();
        let data = inner.udp.get(id.0).and_then(Option::as_ref).ok_or(NetError::SocketClosed)?;
        let src_node = data.node;
        let src_port = data.port;
        let src_addr = SocketAddrV4::new(inner.nodes[src_node.index() as usize].addr, src_port);
        if !inner.nodes[src_node.index() as usize].up {
            return Err(NetError::NodeDown { node: src_node });
        }

        if dst.ip().is_multicast() {
            // Collect members: any open socket on dst.port that joined the
            // group, on an up node, except the sending socket itself.
            let members: Vec<(UdpSocketId, NodeId)> = inner
                .udp
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.as_ref().map(|s| (UdpSocketId(i), s)))
                .filter(|(sid, s)| {
                    *sid != id
                        && s.port == dst.port()
                        && s.groups.contains(dst.ip())
                        && inner.nodes[s.node.index() as usize].up
                })
                .map(|(sid, s)| (sid, s.node))
                .collect();

            let outcome =
                if members.is_empty() { TraceOutcome::NoListener } else { TraceOutcome::Delivered };
            let now = inner.now;
            inner.trace_packet(MeterTransport::Udp, src_addr, dst, payload, outcome);
            // One packet on the wire regardless of member count; meter it
            // once if it crosses the network at all.
            if members.iter().any(|(_, n)| *n != src_node) {
                inner.meter_packet(MeterTransport::Udp, src_addr, dst, payload.len(), true, now);
            }
            for (sid, member_node) in members {
                let link = inner.link_for(src_node, member_node);
                if link.sample_loss(&mut inner.rng) {
                    inner.trace_packet(
                        MeterTransport::Udp,
                        src_addr,
                        dst,
                        payload,
                        TraceOutcome::Lost,
                    );
                    continue;
                }
                let delay = link.sample_delay(payload.len(), &mut inner.rng);
                let at = now + delay;
                inner.push(
                    at,
                    Action::UdpDeliver {
                        socket: sid,
                        datagram: Datagram { src: src_addr, dst, payload: payload.to_vec() },
                    },
                );
            }
            return Ok(());
        }

        // Unicast.
        let Some(&dst_node) = inner.addr_to_node.get(dst.ip()) else {
            inner.trace_packet(
                MeterTransport::Udp,
                src_addr,
                dst,
                payload,
                TraceOutcome::NoListener,
            );
            return Ok(()); // UDP is fire-and-forget: unreachable hosts drop silently.
        };
        if !inner.nodes[dst_node.index() as usize].up {
            inner.trace_packet(MeterTransport::Udp, src_addr, dst, payload, TraceOutcome::NodeDown);
            return Ok(());
        }
        // All sockets on the destination port. With SO_REUSEADDR-style
        // shared binds there may be several (e.g. a native stack and a
        // co-located INDISS monitor); the simulator delivers to each, so
        // a passive monitor sees unicast traffic without stealing it —
        // which is what the paper's §2.1 "listen to all their respective
        // ports" requires.
        let targets: Vec<UdpSocketId> = inner
            .udp
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (UdpSocketId(i), s)))
            .filter(|(sid, s)| *sid != id && s.node == dst_node && s.port == dst.port())
            .map(|(sid, _)| sid)
            .collect();
        if targets.is_empty() {
            inner.trace_packet(
                MeterTransport::Udp,
                src_addr,
                dst,
                payload,
                TraceOutcome::NoListener,
            );
            return Ok(());
        }
        let link = inner.link_for(src_node, dst_node);
        if link.sample_loss(&mut inner.rng) {
            inner.trace_packet(MeterTransport::Udp, src_addr, dst, payload, TraceOutcome::Lost);
            return Ok(());
        }
        let now = inner.now;
        inner.trace_packet(MeterTransport::Udp, src_addr, dst, payload, TraceOutcome::Delivered);
        if dst_node != src_node {
            inner.meter_packet(MeterTransport::Udp, src_addr, dst, payload.len(), false, now);
        }
        let delay = link.sample_delay(payload.len(), &mut inner.rng);
        let at = now + delay;
        for target in targets {
            inner.push(
                at,
                Action::UdpDeliver {
                    socket: target,
                    datagram: Datagram { src: src_addr, dst, payload: payload.to_vec() },
                },
            );
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // TCP plumbing
    // ------------------------------------------------------------------

    pub(crate) fn tcp_listen(&self, node: NodeId, port: u16) -> NetResult<TcpListener> {
        if port == 0 {
            return Err(NetError::InvalidPort);
        }
        let mut inner = self.inner.borrow_mut();
        if Self::tcp_port_in_use(&inner, node, port) {
            return Err(NetError::AddrInUse { node, port });
        }
        let id = TcpListenerId(inner.listeners.len());
        inner.listeners.push(Some(ListenerData { node, port, handler: None }));
        drop(inner);
        Ok(TcpListener::from_parts(self.clone(), id))
    }

    pub(crate) fn tcp_listener_addr(&self, id: TcpListenerId) -> NetResult<SocketAddrV4> {
        let inner = self.inner.borrow();
        let data =
            inner.listeners.get(id.0).and_then(Option::as_ref).ok_or(NetError::SocketClosed)?;
        Ok(SocketAddrV4::new(inner.nodes[data.node.index() as usize].addr, data.port))
    }

    pub(crate) fn tcp_set_accept_handler(&self, id: TcpListenerId, handler: AcceptHandler) {
        let mut inner = self.inner.borrow_mut();
        if let Some(data) = inner.listeners.get_mut(id.0).and_then(Option::as_mut) {
            data.handler = Some(Rc::new(RefCell::new(handler)));
        }
    }

    pub(crate) fn tcp_listener_close(&self, id: TcpListenerId) {
        let mut inner = self.inner.borrow_mut();
        if let Some(slot) = inner.listeners.get_mut(id.0) {
            *slot = None;
        }
    }

    pub(crate) fn tcp_connect(&self, node: NodeId, remote: SocketAddrV4, cb: ConnectCallback) {
        let mut inner = self.inner.borrow_mut();
        let local_port = {
            let nd = &mut inner.nodes[node.index() as usize];
            let p = nd.next_ephemeral;
            nd.next_ephemeral = nd.next_ephemeral.wrapping_add(1).max(EPHEMERAL_BASE);
            p
        };
        let local = SocketAddrV4::new(inner.nodes[node.index() as usize].addr, local_port);
        let id = TcpStreamId(inner.streams.len());
        inner.streams.push(Some(StreamData {
            node,
            local,
            peer_addr: remote,
            peer: None,
            recv: None,
            close: None,
            connect_cb: Some(cb),
            next_delivery: SimTime::ZERO,
            open: true,
        }));
        // Send the SYN: resolve the destination when it arrives.
        let dst_node = inner.addr_to_node.get(remote.ip()).copied();
        let now = inner.now;
        match dst_node {
            Some(dn) => {
                let link = inner.link_for(node, dn);
                let delay = link.sample_delay(40, &mut inner.rng);
                inner.push(now + delay, Action::TcpSynArrive { client_stream: id, dst: remote });
            }
            None => {
                // No such host: fail after one timeout-ish delay.
                let delay = inner.default_link.transfer_delay(40);
                inner.push(
                    now + delay,
                    Action::TcpConnectResolve {
                        client_stream: id,
                        result: Err(NetError::HostUnreachable { addr: remote }),
                    },
                );
            }
        }
    }

    pub(crate) fn tcp_stream_local(&self, id: TcpStreamId) -> NetResult<SocketAddrV4> {
        let inner = self.inner.borrow();
        let d = inner
            .streams
            .get(id.0)
            .and_then(Option::as_ref)
            .filter(|d| d.open)
            .ok_or(NetError::ConnectionClosed)?;
        Ok(d.local)
    }

    pub(crate) fn tcp_stream_peer(&self, id: TcpStreamId) -> NetResult<SocketAddrV4> {
        let inner = self.inner.borrow();
        let d = inner
            .streams
            .get(id.0)
            .and_then(Option::as_ref)
            .filter(|d| d.open)
            .ok_or(NetError::ConnectionClosed)?;
        Ok(d.peer_addr)
    }

    pub(crate) fn tcp_set_recv_handler(&self, id: TcpStreamId, handler: RecvHandler) {
        let mut inner = self.inner.borrow_mut();
        if let Some(d) = inner.streams.get_mut(id.0).and_then(Option::as_mut) {
            d.recv = Some(Rc::new(RefCell::new(handler)));
        }
    }

    pub(crate) fn tcp_set_close_handler(&self, id: TcpStreamId, handler: CloseHandler) {
        let mut inner = self.inner.borrow_mut();
        if let Some(d) = inner.streams.get_mut(id.0).and_then(Option::as_mut) {
            d.close = Some(Rc::new(RefCell::new(handler)));
        }
    }

    pub(crate) fn tcp_send(&self, id: TcpStreamId, bytes: &[u8]) -> NetResult<()> {
        let mut inner = self.inner.borrow_mut();
        let d = inner
            .streams
            .get(id.0)
            .and_then(Option::as_ref)
            .filter(|d| d.open)
            .ok_or(NetError::ConnectionClosed)?;
        let peer = d.peer.ok_or(NetError::ConnectionClosed)?;
        let (src_node, src_addr, dst_addr) = (d.node, d.local, d.peer_addr);
        let peer_node = inner
            .streams
            .get(peer.0)
            .and_then(Option::as_ref)
            .filter(|p| p.open)
            .ok_or(NetError::ConnectionClosed)?
            .node;
        if !inner.nodes[src_node.index() as usize].up {
            return Err(NetError::NodeDown { node: src_node });
        }
        if !inner.nodes[peer_node.index() as usize].up {
            return Err(NetError::NodeDown { node: peer_node });
        }
        let link = inner.link_for(src_node, peer_node);
        let now = inner.now;
        inner.trace_packet(MeterTransport::Tcp, src_addr, dst_addr, bytes, TraceOutcome::Delivered);
        if peer_node != src_node {
            inner.meter_packet(MeterTransport::Tcp, src_addr, dst_addr, bytes.len(), false, now);
        }
        let delay = link.sample_delay(bytes.len(), &mut inner.rng);
        let mut at = now + delay;
        // Enforce in-order delivery at the peer.
        if let Some(p) = inner.streams.get_mut(peer.0).and_then(Option::as_mut) {
            if at < p.next_delivery {
                at = p.next_delivery;
            }
            p.next_delivery = at;
        }
        inner.push(at, Action::TcpDeliver { stream: peer, bytes: bytes.to_vec() });
        Ok(())
    }

    pub(crate) fn tcp_close(&self, id: TcpStreamId) {
        let mut inner = self.inner.borrow_mut();
        let Some(d) = inner.streams.get_mut(id.0).and_then(Option::as_mut) else {
            return;
        };
        if !d.open {
            return;
        }
        d.open = false;
        let peer = d.peer;
        let node = d.node;
        if let Some(peer) = peer {
            let peer_node = inner.streams.get(peer.0).and_then(Option::as_ref).map(|p| p.node);
            if let Some(pn) = peer_node {
                let link = inner.link_for(node, pn);
                let delay = link.sample_delay(40, &mut inner.rng);
                let mut at = inner.now + delay;
                // The FIN must not overtake in-flight data segments.
                if let Some(p) = inner.streams.get_mut(peer.0).and_then(Option::as_mut) {
                    if at < p.next_delivery {
                        at = p.next_delivery;
                    }
                    p.next_delivery = at;
                }
                inner.push(at, Action::TcpFinArrive { stream: peer });
            }
        }
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn dispatch(&self, action: Action, world: &World) {
        match action {
            Action::Timer(f) => f(world),
            Action::UdpDeliver { socket, datagram } => {
                let handler = {
                    let inner = self.inner.borrow();
                    inner.udp.get(socket.0).and_then(Option::as_ref).and_then(|s| {
                        if inner.nodes[s.node.index() as usize].up {
                            s.handler.clone()
                        } else {
                            None
                        }
                    })
                };
                if let Some(h) = handler {
                    (h.borrow_mut())(world, datagram);
                }
            }
            Action::TcpSynArrive { client_stream, dst } => {
                self.handle_syn(client_stream, dst, world);
            }
            Action::TcpConnectResolve { client_stream, result } => {
                let cb = {
                    let mut inner = self.inner.borrow_mut();
                    match inner.streams.get_mut(client_stream.0).and_then(Option::as_mut) {
                        Some(d) => {
                            if result.is_err() {
                                d.open = false;
                            }
                            d.connect_cb.take()
                        }
                        None => None,
                    }
                };
                if let Some(cb) = cb {
                    let outcome =
                        result.map(|()| TcpStream::from_parts(self.clone(), client_stream));
                    cb(world, outcome);
                }
            }
            Action::TcpDeliver { stream, bytes } => {
                let handler = {
                    let inner = self.inner.borrow();
                    inner
                        .streams
                        .get(stream.0)
                        .and_then(Option::as_ref)
                        .filter(|d| d.open && inner.nodes[d.node.index() as usize].up)
                        .and_then(|d| d.recv.clone())
                };
                if let Some(h) = handler {
                    (h.borrow_mut())(world, bytes);
                }
            }
            Action::TcpFinArrive { stream } => {
                let handler = {
                    let mut inner = self.inner.borrow_mut();
                    match inner.streams.get_mut(stream.0).and_then(Option::as_mut) {
                        Some(d) if d.open => {
                            d.open = false;
                            d.close.clone()
                        }
                        _ => None,
                    }
                };
                if let Some(h) = handler {
                    (h.borrow_mut())(world);
                }
            }
        }
    }

    fn handle_syn(&self, client_stream: TcpStreamId, dst: SocketAddrV4, world: &World) {
        let (result, accept) = {
            let mut inner = self.inner.borrow_mut();
            let client_node = match inner.streams.get(client_stream.0).and_then(Option::as_ref) {
                Some(d) => d.node,
                None => return, // client vanished
            };
            let client_local =
                inner.streams[client_stream.0].as_ref().expect("checked above").local;
            let dst_node = inner.addr_to_node.get(dst.ip()).copied();
            let listener = dst_node.and_then(|dn| {
                if !inner.nodes[dn.index() as usize].up {
                    return None;
                }
                inner
                    .listeners
                    .iter()
                    .flatten()
                    .find(|l| l.node == dn && l.port == dst.port())
                    .map(|l| (dn, l.handler.clone()))
            });
            match listener {
                Some((dn, handler)) => {
                    // Create the server endpoint, link the pair.
                    let server_id = TcpStreamId(inner.streams.len());
                    inner.streams.push(Some(StreamData {
                        node: dn,
                        local: dst,
                        peer_addr: client_local,
                        peer: Some(client_stream),
                        recv: None,
                        close: None,
                        connect_cb: None,
                        next_delivery: SimTime::ZERO,
                        open: true,
                    }));
                    if let Some(c) = inner.streams.get_mut(client_stream.0).and_then(Option::as_mut)
                    {
                        c.peer = Some(server_id);
                    }
                    // SYN-ACK travels back: resolve the client connect then.
                    let link = inner.link_for(dn, client_node);
                    let delay = link.sample_delay(40, &mut inner.rng);
                    let at = inner.now + delay;
                    inner.push(at, Action::TcpConnectResolve { client_stream, result: Ok(()) });
                    (Ok(server_id), handler)
                }
                None => {
                    let client_node_link = dst_node
                        .map(|dn| inner.link_for(dn, client_node))
                        .unwrap_or(inner.default_link);
                    let delay = client_node_link.transfer_delay(40);
                    let at = inner.now + delay;
                    inner.push(
                        at,
                        Action::TcpConnectResolve {
                            client_stream,
                            result: Err(NetError::ConnectionRefused { addr: dst }),
                        },
                    );
                    (Err(()), None)
                }
            }
        };
        if let (Ok(server_id), Some(handler)) = (result, accept) {
            let stream = TcpStream::from_parts(self.clone(), server_id);
            (handler.borrow_mut())(world, stream);
        }
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("World")
            .field("now", &inner.now)
            .field("nodes", &inner.nodes.len())
            .field("pending_events", &inner.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collector, Completion};

    #[test]
    fn timers_fire_in_order_with_fifo_ties() {
        let world = World::new(0);
        let order: Collector<u32> = Collector::new();
        for (delay_ms, tag) in [(5u64, 2u32), (1, 1), (5, 3)] {
            let order = order.clone();
            world.schedule_in(Duration::from_millis(delay_ms), move |_| order.push(tag));
        }
        world.run_until_idle();
        assert_eq!(order.snapshot(), vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_to_event_times() {
        let world = World::new(0);
        let seen: Completion<SimTime> = Completion::new();
        let seen2 = seen.clone();
        world.schedule_in(Duration::from_millis(7), move |w| seen2.complete(w.now()));
        world.run_until_idle();
        assert_eq!(seen.take(), Some(SimTime::from_millis(7)));
    }

    #[test]
    fn run_until_respects_deadline() {
        let world = World::new(0);
        let fired: Completion<()> = Completion::new();
        let fired2 = fired.clone();
        world.schedule_in(Duration::from_millis(10), move |_| fired2.complete(()));
        world.run_until(SimTime::from_millis(5));
        assert!(!fired.is_complete());
        assert_eq!(world.now(), SimTime::from_millis(5));
        world.run_until(SimTime::from_millis(20));
        assert!(fired.is_complete());
    }

    #[test]
    fn run_for_advances_clock_even_when_idle() {
        let world = World::new(0);
        world.run_for(Duration::from_millis(3));
        assert_eq!(world.now(), SimTime::from_millis(3));
    }

    #[test]
    fn nested_scheduling_works() {
        let world = World::new(0);
        let order: Collector<&'static str> = Collector::new();
        let order2 = order.clone();
        world.schedule_in(Duration::from_millis(1), move |w| {
            order2.push("outer");
            let order3 = order2.clone();
            w.schedule_in(Duration::from_millis(1), move |_| order3.push("inner"));
        });
        world.run_until_idle();
        assert_eq!(order.snapshot(), vec!["outer", "inner"]);
    }

    #[test]
    fn identical_seeds_give_identical_timings() {
        fn run(seed: u64) -> SimTime {
            let world = World::new(seed);
            let a = world.add_node("a");
            let b = world.add_node("b");
            let sa = a.udp_bind(1000).unwrap();
            let sb = b.udp_bind(1000).unwrap();
            let at: Completion<SimTime> = Completion::new();
            let at2 = at.clone();
            sb.on_receive(move |w, _| at2.complete(w.now()));
            sa.send_to(&[0u8; 100], SocketAddrV4::new(b.addr(), 1000)).unwrap();
            world.run_until_idle();
            at.take().unwrap()
        }
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds give different jitter");
    }

    #[test]
    fn meter_counts_cross_node_but_not_loopback() {
        let world = World::new(0);
        let a = world.add_node("a");
        let b = world.add_node("b");
        let s1 = a.udp_bind(1000).unwrap();
        let _s2 = a.udp_bind(2000).unwrap();
        let _s3 = b.udp_bind(3000).unwrap();
        // loopback: a -> a
        s1.send_to(&[0u8; 10], SocketAddrV4::new(a.addr(), 2000)).unwrap();
        // cross: a -> b
        s1.send_to(&[0u8; 20], SocketAddrV4::new(b.addr(), 3000)).unwrap();
        world.run_until_idle();
        let m = world.meter_snapshot();
        assert_eq!(m.packet_count(), 1, "only the cross-node packet is metered");
        assert_eq!(m.total_bytes(), 20);
    }

    #[test]
    fn trace_records_no_listener() {
        let mut cfg = WorldConfig::with_seed(0);
        cfg.trace = true;
        let world = World::with_config(cfg);
        let a = world.add_node("a");
        let b = world.add_node("b");
        let s = a.udp_bind(1000).unwrap();
        s.send_to(b"x", SocketAddrV4::new(b.addr(), 9)).unwrap();
        world.run_until_idle();
        let trace = world.trace_snapshot().unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.entries()[0].outcome, TraceOutcome::NoListener);
    }

    #[test]
    fn lossy_link_drops_packets() {
        let mut cfg = WorldConfig::with_seed(0);
        cfg.default_link = LinkConfig::lan_10mbps().with_loss(1.0);
        cfg.trace = true;
        let world = World::with_config(cfg);
        let a = world.add_node("a");
        let b = world.add_node("b");
        let sa = a.udp_bind(1000).unwrap();
        let sb = b.udp_bind(1000).unwrap();
        let got: Completion<()> = Completion::new();
        let got2 = got.clone();
        sb.on_receive(move |_, _| got2.complete(()));
        sa.send_to(b"x", SocketAddrV4::new(b.addr(), 1000)).unwrap();
        world.run_until_idle();
        assert!(!got.is_complete());
        assert_eq!(world.trace_snapshot().unwrap().lost().count(), 1);
    }

    #[test]
    fn run_until_condition_stops_early() {
        let world = World::new(0);
        let count: Collector<u32> = Collector::new();
        for i in 0..10 {
            let count = count.clone();
            world.schedule_in(Duration::from_millis(i), move |_| count.push(i as u32));
        }
        let count2 = count.clone();
        let satisfied = world.run_until_condition(move || count2.len() >= 3);
        assert!(satisfied);
        assert_eq!(count.len(), 3);
    }
}
