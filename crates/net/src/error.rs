//! Error type for simulated network operations.

use std::fmt;
use std::net::SocketAddrV4;

use crate::node::NodeId;

/// Errors returned by the simulated network.
///
/// Mirrors the failures a real socket API can produce, restricted to the
/// subset this simulator models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The port is already bound on this node.
    AddrInUse {
        /// Node holding the port.
        node: NodeId,
        /// The contested port.
        port: u16,
    },
    /// A socket handle refers to a socket that has been closed or never existed.
    SocketClosed,
    /// A TCP stream handle refers to a connection that has been closed.
    ConnectionClosed,
    /// No node owns the destination address.
    HostUnreachable {
        /// The unreachable destination.
        addr: SocketAddrV4,
    },
    /// The destination node has no listener/socket on the target port.
    ConnectionRefused {
        /// The refusing destination.
        addr: SocketAddrV4,
    },
    /// A multicast operation was attempted with a non-multicast group address.
    NotMulticast {
        /// The offending address.
        addr: std::net::Ipv4Addr,
    },
    /// A unicast send was attempted to a multicast address, or vice versa.
    InvalidDestination {
        /// The offending destination.
        addr: SocketAddrV4,
    },
    /// The referenced node does not exist in this world.
    UnknownNode {
        /// The unknown node id.
        node: NodeId,
    },
    /// The node is administratively down (failure injection).
    NodeDown {
        /// The node that is down.
        node: NodeId,
    },
    /// Port 0 is not a valid concrete port in the simulator.
    InvalidPort,
    /// An operating-system I/O error from the real-socket transport
    /// (`std::io::Error` flattened to keep this type `Clone + Eq`).
    Io {
        /// The socket operation that failed (`bind`, `send_to`, …).
        op: &'static str,
        /// The OS error message.
        message: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::AddrInUse { node, port } => {
                write!(f, "port {port} already in use on node {node}")
            }
            NetError::SocketClosed => write!(f, "socket is closed"),
            NetError::ConnectionClosed => write!(f, "connection is closed"),
            NetError::HostUnreachable { addr } => write!(f, "host unreachable: {addr}"),
            NetError::ConnectionRefused { addr } => write!(f, "connection refused: {addr}"),
            NetError::NotMulticast { addr } => {
                write!(f, "address {addr} is not a multicast group")
            }
            NetError::InvalidDestination { addr } => {
                write!(f, "invalid destination address {addr}")
            }
            NetError::UnknownNode { node } => write!(f, "unknown node {node}"),
            NetError::NodeDown { node } => write!(f, "node {node} is down"),
            NetError::InvalidPort => write!(f, "port 0 is not valid"),
            NetError::Io { op, message } => write!(f, "io error during {op}: {message}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Convenience alias for results of simulated network operations.
pub type NetResult<T> = Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<NetError> = vec![
            NetError::AddrInUse { node: NodeId::new(1), port: 427 },
            NetError::SocketClosed,
            NetError::ConnectionClosed,
            NetError::HostUnreachable { addr: SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, 9), 80) },
            NetError::ConnectionRefused {
                addr: SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, 1), 5000),
            },
            NetError::NotMulticast { addr: Ipv4Addr::new(10, 0, 0, 1) },
            NetError::InvalidDestination {
                addr: SocketAddrV4::new(Ipv4Addr::new(239, 255, 255, 250), 1900),
            },
            NetError::UnknownNode { node: NodeId::new(42) },
            NetError::NodeDown { node: NodeId::new(3) },
            NetError::InvalidPort,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<NetError>();
    }
}
