//! Simulated hosts.
//!
//! A [`Node`] is a handle to one host in the [`crate::World`]: it owns an
//! IPv4 address, can bind UDP sockets, listen for and open TCP connections,
//! and can be taken down for failure-injection tests.

use std::fmt;
use std::net::{Ipv4Addr, SocketAddrV4};

use crate::error::NetResult;
use crate::tcp::{TcpListener, TcpStream};
use crate::udp::UdpSocket;
use crate::world::World;

/// Identifier of a node within its world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its raw index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Handle to one simulated host.
///
/// Cloning a `Node` clones the handle, not the host.
///
/// # Examples
///
/// ```
/// use indiss_net::World;
///
/// let world = World::new(42);
/// let host = world.add_node("printer");
/// assert_eq!(host.name(), "printer");
/// let sock = host.udp_bind(427)?;
/// assert_eq!(sock.local_addr()?.port(), 427);
/// # Ok::<(), indiss_net::NetError>(())
/// ```
#[derive(Clone)]
pub struct Node {
    world: World,
    id: NodeId,
}

impl Node {
    pub(crate) fn from_parts(world: World, id: NodeId) -> Self {
        Node { world, id }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The world this node belongs to.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The node's IPv4 address.
    pub fn addr(&self) -> Ipv4Addr {
        self.world.node_addr(self.id)
    }

    /// The node's human-readable name.
    pub fn name(&self) -> String {
        self.world.node_name(self.id)
    }

    /// Whether the node is up (reachable).
    pub fn is_up(&self) -> bool {
        self.world.node_is_up(self.id)
    }

    /// Brings the node up or down. While down, all packets destined to the
    /// node are dropped — used for failure injection.
    pub fn set_up(&self, up: bool) {
        self.world.set_node_up(self.id, up);
    }

    /// Binds a UDP socket on the given port.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::AddrInUse`] if the port is taken on this node,
    /// [`crate::NetError::InvalidPort`] for port 0 (use
    /// [`Node::udp_bind_ephemeral`] instead).
    pub fn udp_bind(&self, port: u16) -> NetResult<UdpSocket> {
        self.world.udp_bind(self.id, port)
    }

    /// Binds a UDP socket on a fresh ephemeral port (≥ 40000).
    pub fn udp_bind_ephemeral(&self) -> NetResult<UdpSocket> {
        let port = self.world.alloc_ephemeral_port(self.id);
        self.world.udp_bind(self.id, port)
    }

    /// Binds a UDP socket with `SO_REUSEADDR` semantics: multiple *shared*
    /// sockets may bind the same port on one node. Multicast datagrams are
    /// delivered to every sharing socket that joined the group; unicast
    /// goes to the earliest-bound one. This mirrors how a co-located
    /// INDISS instance and a native SSDP/SLP stack share the IANA port on
    /// a real host.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::AddrInUse`] if an *exclusive* socket holds the
    /// port; [`crate::NetError::InvalidPort`] for port 0.
    pub fn udp_bind_shared(&self, port: u16) -> NetResult<UdpSocket> {
        self.world.udp_bind_shared(self.id, port)
    }

    /// Starts listening for TCP connections on the given port.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Node::udp_bind`].
    pub fn tcp_listen(&self, port: u16) -> NetResult<TcpListener> {
        self.world.tcp_listen(self.id, port)
    }

    /// Opens a TCP connection to `remote`. The callback fires one round-trip
    /// later with the connected stream, or with an error if the remote
    /// refused (no listener) or was unreachable.
    pub fn tcp_connect<F>(&self, remote: SocketAddrV4, on_connect: F)
    where
        F: FnOnce(&World, NetResult<TcpStream>) + 'static,
    {
        self.world.tcp_connect(self.id, remote, Box::new(on_connect));
    }
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("name", &self.name())
            .field("addr", &self.addr())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::world::World;

    #[test]
    fn nodes_get_distinct_addresses() {
        let world = World::new(1);
        let a = world.add_node("a");
        let b = world.add_node("b");
        assert_ne!(a.addr(), b.addr());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn binding_same_port_twice_fails() {
        let world = World::new(1);
        let a = world.add_node("a");
        let _s = a.udp_bind(427).unwrap();
        assert!(a.udp_bind(427).is_err());
    }

    #[test]
    fn same_port_on_different_nodes_is_fine() {
        let world = World::new(1);
        let a = world.add_node("a");
        let b = world.add_node("b");
        assert!(a.udp_bind(1900).is_ok());
        assert!(b.udp_bind(1900).is_ok());
    }

    #[test]
    fn ephemeral_ports_are_distinct() {
        let world = World::new(1);
        let a = world.add_node("a");
        let s1 = a.udp_bind_ephemeral().unwrap();
        let s2 = a.udp_bind_ephemeral().unwrap();
        assert_ne!(s1.local_addr().unwrap().port(), s2.local_addr().unwrap().port());
    }

    #[test]
    fn nodes_start_up_and_can_go_down() {
        let world = World::new(1);
        let a = world.add_node("a");
        assert!(a.is_up());
        a.set_up(false);
        assert!(!a.is_up());
    }
}
