//! Property-based tests of the simulator's core invariants.

use proptest::prelude::*;
use std::net::SocketAddrV4;
use std::time::Duration;

use indiss_net::{Collector, LinkConfig, SimTime, World};

proptest! {
    /// Virtual time is monotone regardless of how timers are scheduled.
    #[test]
    fn time_is_monotone(delays in proptest::collection::vec(0u64..10_000, 1..32)) {
        let world = World::new(0);
        let stamps: Collector<SimTime> = Collector::new();
        for d in delays {
            let stamps = stamps.clone();
            world.schedule_in(Duration::from_micros(d), move |w| stamps.push(w.now()));
        }
        world.run_until_idle();
        let seen = stamps.snapshot();
        prop_assert!(seen.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Identical seeds give identical delivery times; the simulation is a
    /// pure function of (seed, program).
    #[test]
    fn determinism(seed in any::<u64>(), len in 1usize..512) {
        fn run(seed: u64, len: usize) -> u64 {
            let world = World::new(seed);
            let a = world.add_node("a");
            let b = world.add_node("b");
            let tx = a.udp_bind(1000).unwrap();
            let rx = b.udp_bind(1000).unwrap();
            let at: Collector<SimTime> = Collector::new();
            let at2 = at.clone();
            rx.on_receive(move |w, _| at2.push(w.now()));
            tx.send_to(&vec![0u8; len], SocketAddrV4::new(b.addr(), 1000)).unwrap();
            world.run_until_idle();
            at.snapshot()[0].as_nanos()
        }
        prop_assert_eq!(run(seed, len), run(seed, len));
    }

    /// Delivery delay grows monotonically with payload size on a
    /// bandwidth-limited link (serialization dominates jitter for large
    /// differences).
    #[test]
    fn bigger_payloads_take_longer(small in 1usize..100, extra in 2_000usize..20_000) {
        let link = LinkConfig::lan_10mbps();
        let d_small = link.transfer_delay(small);
        let d_big = link.transfer_delay(small + extra);
        prop_assert!(d_big > d_small);
    }

    /// TCP preserves ordering for any segment schedule.
    #[test]
    fn tcp_is_fifo(segments in proptest::collection::vec(1usize..200, 1..16)) {
        let world = World::new(7);
        let server = world.add_node("server");
        let client = world.add_node("client");
        let listener = server.tcp_listen(80).unwrap();
        let got: Collector<usize> = Collector::new();
        let got2 = got.clone();
        listener.on_accept(move |_, stream| {
            let got3 = got2.clone();
            stream.on_receive(move |_, bytes| got3.push(bytes.len()));
        });
        let segs = segments.clone();
        client.tcp_connect(SocketAddrV4::new(server.addr(), 80), move |_, stream| {
            let stream = stream.unwrap();
            for len in &segs {
                stream.send(&vec![0u8; *len]).unwrap();
            }
        });
        world.run_until_idle();
        prop_assert_eq!(got.snapshot(), segments);
    }

    /// The traffic meter's window queries partition correctly: bytes in
    /// [a,b) + bytes in [b,c) = bytes in [a,c).
    #[test]
    fn meter_windows_partition(
        sends in proptest::collection::vec((0u64..1000, 1usize..100), 1..16),
        split in 0u64..1000,
    ) {
        let world = World::new(1);
        let a = world.add_node("a");
        let b = world.add_node("b");
        let tx = a.udp_bind(1000).unwrap();
        let _rx = b.udp_bind(1000).unwrap();
        for (at_ms, len) in &sends {
            let tx = tx.clone();
            let dst = SocketAddrV4::new(b.addr(), 1000);
            let len = *len;
            world.schedule_in(Duration::from_millis(*at_ms), move |_| {
                let _ = tx.send_to(&vec![0u8; len], dst);
            });
        }
        world.run_until_idle();
        let meter = world.meter_snapshot();
        let t0 = SimTime::ZERO;
        let tm = SimTime::from_millis(split);
        let t1 = SimTime::from_secs(10);
        prop_assert_eq!(
            meter.bytes_between(t0, tm) + meter.bytes_between(tm, t1),
            meter.bytes_between(t0, t1)
        );
    }
}
