#!/usr/bin/env bash
# Fails when docs/ARCHITECTURE.md (or the README) references a source
# path that no longer exists — the docs gate that keeps the
# architecture book honest as modules move.
#
# A "reference" is any backtick-quoted repo-relative path starting with
# crates/, src/, examples/, tests/, docs/ or ci/. Directory references
# may end with '/'.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for doc in docs/ARCHITECTURE.md README.md; do
    [ -f "$doc" ] || { echo "missing $doc"; fail=1; continue; }
    while IFS= read -r path; do
        if [ ! -e "$path" ]; then
            echo "dangling reference in $doc: $path"
            fail=1
        fi
    done < <(grep -oE '`(crates|src|examples|tests|docs|ci)/[A-Za-z0-9_./-]+`' "$doc" \
             | tr -d '\`' | sort -u)
done

if [ "$fail" -ne 0 ]; then
    echo "architecture docs reference files that do not exist; update the docs"
    exit 1
fi
echo "architecture doc references OK"
